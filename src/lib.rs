//! # server-chiplet-networking
//!
//! A comprehensive Rust reproduction of *Server Chiplet Networking*
//! (HotNets '25): a deterministic, transaction-level simulator of
//! chiplet-based server SoCs (AMD EPYC 7302 / 9634 presets), the
//! characterization utility the paper built, and the chiplet networking
//! stack the paper proposes — flow abstraction, global traffic manager,
//! BDP monitoring, telemetry, traffic-matrix estimation, and sketch-based
//! profiling.
//!
//! This crate is the workspace facade: it re-exports every member crate
//! under one roof and hosts the runnable examples and the cross-crate
//! integration suite.
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`sim`] | discrete-event core: time, event queue, RNG, statistics |
//! | [`topology`] | SoC graph, platform presets, `chiplet-net` descriptor |
//! | [`noc`] | flit-level I/O-die NoC (mesh/torus, buffered/deflection) |
//! | [`fabric`] | FIFO bandwidth servers, token limiters, CXL framing |
//! | [`mem`] | cache hierarchy, access semantics, DRAM/CXL variability |
//! | [`net`] | the engine + the paper's proposed networking stack |
//! | [`fluid`] | flow-level engine for second-scale sharing dynamics |
//! | [`membench`] | the paper's micro-benchmark utility, reimplemented |
//!
//! ## Quickstart
//!
//! ```
//! use server_chiplet_networking::net::engine::{Engine, EngineConfig};
//! use server_chiplet_networking::net::flow::{FlowSpec, Target};
//! use server_chiplet_networking::topology::{CoreId, PlatformSpec, Topology};
//! use server_chiplet_networking::sim::SimTime;
//!
//! let topo = Topology::build(&PlatformSpec::epyc_9634());
//! let mut engine = Engine::new(&topo, EngineConfig::default());
//! engine.add_flow(
//!     FlowSpec::reads("probe", vec![CoreId(0)], Target::all_dimms(&topo)).build(&topo),
//! );
//! let result = engine.run(SimTime::from_micros(30));
//! println!("{}", result.telemetry.to_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use chiplet_fabric as fabric;
pub use chiplet_fluid as fluid;
pub use chiplet_mem as mem;
pub use chiplet_membench as membench;
pub use chiplet_net as net;
pub use chiplet_noc as noc;
pub use chiplet_sim as sim;
pub use chiplet_topology as topology;
