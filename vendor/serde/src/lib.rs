//! Offline stand-in for the slice of `serde` this workspace uses.
//!
//! The container image has no network access, so instead of the real serde
//! the workspace ships this minimal value-tree model: [`Serialize`] lowers a
//! type to a [`Value`], [`Deserialize`] rebuilds it, and `serde_json`
//! (also vendored) renders/parses the tree as JSON. The derive macros in the
//! vendored `serde_derive` follow upstream serde's conventions: structs as
//! maps, newtype structs transparently, enums externally tagged, `Option`
//! fields tolerating absence, and `#[serde(default)]` honored.

use std::collections::VecDeque;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model all (de)serialization goes through.
///
/// Maps preserve insertion order so struct fields serialize in declaration
/// order and output is byte-stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    /// Numeric coercion: any number reads as `f64` (JSON doesn't distinguish).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(v) => Some(v),
            _ => None,
        }
    }

    /// Alias for [`Value::as_seq`], matching `serde_json::Value::as_array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        self.as_seq()
    }

    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Map lookup by key (first match), or sequence lookup via `get_index`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| __map_get(m, key))
    }

    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        self.as_seq().and_then(|s| s.get(idx))
    }
}

/// First value under `key` in an insertion-ordered map body.
pub fn __map_get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// (De)serialization error: a message, optionally with a path-ish context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    pub fn missing_field(name: &str) -> Self {
        Error(format!("missing field `{name}`"))
    }

    pub fn message(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Lowers `self` into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Hook for absent struct fields: `Option` (and types wrapped by
    /// `#[serde(default)]`, which never reaches here) tolerate absence,
    /// everything else errors. Called by derived impls.
    fn missing(field: &str) -> Result<Self, Error> {
        Err(Error::missing_field(field))
    }
}

// ---- primitive impls ----------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    /// JSON numbers top out at `u64` here; wider values fall back to a
    /// decimal string (lossless either way).
    fn to_value(&self) -> Value {
        if let Ok(n) = u64::try_from(*self) {
            Value::U64(n)
        } else {
            Value::Str(self.to_string())
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::U64(n) => Ok(*n as u128),
            Value::I64(n) if *n >= 0 => Ok(*n as u128),
            Value::Str(s) => s
                .parse::<u128>()
                .map_err(|_| Error::custom("invalid u128 string")),
            _ => Err(Error::custom("expected u128")),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        if let Ok(n) = i64::try_from(*self) {
            i64::to_value(&n)
        } else {
            Value::Str(self.to_string())
        }
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::U64(n) => Ok(*n as i128),
            Value::I64(n) => Ok(*n as i128),
            Value::Str(s) => s
                .parse::<i128>()
                .map_err(|_| Error::custom("invalid i128 string")),
            _ => Err(Error::custom("expected i128")),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            // Real serde_json writes non-finite floats as null; accept the
            // same on the way back in.
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| Error::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

// ---- containers ---------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::custom("expected tuple"))?;
                let want = [$($n),+].len();
                if s.len() != want {
                    return Err(Error::custom("tuple length mismatch"));
                }
                Ok(($($t::from_value(&s[$n])?,)+))
            }
        }
    )*};
}
ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(())
        } else {
            Err(Error::custom("expected null"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_handles_absence_and_null() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::missing("x").unwrap(), None);
        assert!(u32::missing("x").is_err());
        assert_eq!(
            Option::<u32>::from_value(&Value::U64(4)).unwrap(),
            Some(4u32)
        );
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(f64::from_value(&Value::U64(3)).unwrap(), 3.0);
        assert_eq!(u32::from_value(&Value::I64(7)).unwrap(), 7);
        assert!(u32::from_value(&Value::I64(-1)).is_err());
        assert!(u8::from_value(&Value::U64(256)).is_err());
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn u128_wide_values_round_trip_via_string() {
        let big = u128::MAX - 5;
        let v = big.to_value();
        assert_eq!(u128::from_value(&v).unwrap(), big);
        let small = 42u128;
        assert_eq!(small.to_value(), Value::U64(42));
    }

    #[test]
    fn map_get_finds_first() {
        let m = vec![
            ("a".to_string(), Value::U64(1)),
            ("b".to_string(), Value::U64(2)),
        ];
        assert_eq!(__map_get(&m, "b"), Some(&Value::U64(2)));
        assert_eq!(__map_get(&m, "c"), None);
    }
}
