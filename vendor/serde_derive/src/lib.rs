//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! subset, written against `proc_macro` directly (no syn/quote — the build
//! environment is fully offline).
//!
//! The generated code follows upstream serde's data-model conventions:
//! named structs as maps (fields in declaration order), newtype structs
//! transparently as their inner value, tuple structs as sequences, unit
//! structs as null, and enums externally tagged (`"Variant"` for unit
//! variants, `{"Variant": payload}` otherwise). Supported attributes:
//! `#[serde(default)]` on named fields. Generic parameters get a
//! `T: ::serde::Serialize` / `T: ::serde::Deserialize` bound per type param.
//!
//! Parsing only needs item/field *names* — field types never have to be
//! understood because the generated code dispatches through the traits and
//! lets inference resolve them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// --------------------------------------------------------------------------
// item model

struct Input {
    name: String,
    /// Raw generic parameter list with bounds, e.g. `<T: Clone>` ("" if none).
    generics_decl: String,
    /// Generic arguments by name, e.g. `<T>` ("" if none).
    generics_args: String,
    /// Type parameter names (for trait bounds in the where clause).
    type_params: Vec<String>,
    /// Raw `where` clause predicates from the item, without the keyword.
    where_raw: String,
    kind: Kind,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Field {
    name: String,
    /// `#[serde(default)]` present.
    default: bool,
}

struct Variant {
    name: String,
    fields: Fields,
}

// --------------------------------------------------------------------------
// parsing

/// Skips leading attributes; returns whether any was `#[serde(... default ...)]`.
fn take_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut default = false;
    while *i < toks.len() {
        let is_hash = matches!(&toks[*i], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_hash {
            break;
        }
        // Outer attribute: `#` `[ ... ]`. (Inner `#![...]` never appears on
        // fields or variants.)
        let Some(TokenTree::Group(g)) = toks.get(*i + 1) else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    for t in args.stream() {
                        if matches!(&t, TokenTree::Ident(a) if a.to_string() == "default") {
                            default = true;
                        }
                    }
                }
            }
        }
        *i += 2;
    }
    default
}

fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(&toks[*i], TokenTree::Ident(id) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Advances past one type (or any token run) up to a top-level `,`, tracking
/// `<`/`>` nesting. The comma is consumed. Handles `->` inside fn types.
fn skip_past_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    let mut prev_dash = false;
    while *i < toks.len() {
        let mut dash = false;
        if let TokenTree::Punct(p) = &toks[*i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' if !prev_dash => angle -= 1,
                ',' if angle == 0 => {
                    *i += 1;
                    return;
                }
                '-' => dash = true,
                _ => {}
            }
        }
        prev_dash = dash;
        *i += 1;
    }
}

fn parse_named_fields(group_tokens: Vec<TokenTree>) -> Vec<Field> {
    let toks = group_tokens;
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let default = take_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_vis(&toks, &mut i);
        let TokenTree::Ident(name) = &toks[i] else {
            panic!(
                "serde derive: expected field name, got {:?}",
                toks[i].to_string()
            );
        };
        let name = name.to_string();
        i += 1;
        // `:`
        i += 1;
        skip_past_type(&toks, &mut i);
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(group_tokens: Vec<TokenTree>) -> usize {
    let toks = group_tokens;
    let mut i = 0;
    let mut count = 0;
    while i < toks.len() {
        take_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_past_type(&toks, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(group_tokens: Vec<TokenTree>) -> Vec<Variant> {
    let toks = group_tokens;
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        take_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let TokenTree::Ident(name) = &toks[i] else {
            panic!(
                "serde derive: expected variant name, got {:?}",
                toks[i].to_string()
            );
        };
        let name = name.to_string();
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream().into_iter().collect());
                i += 1;
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream().into_iter().collect());
                i += 1;
                Fields::Named(f)
            }
            _ => Fields::Unit,
        };
        // Skip to (and past) the separating comma; tolerates discriminants.
        skip_past_type(&toks, &mut i);
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    take_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);

    let is_enum = match &toks[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" => false,
        TokenTree::Ident(id) if id.to_string() == "enum" => true,
        other => panic!(
            "serde derive supports structs and enums, got {:?}",
            other.to_string()
        ),
    };
    i += 1;

    let TokenTree::Ident(name) = &toks[i] else {
        panic!("serde derive: expected item name");
    };
    let name = name.to_string();
    i += 1;

    // Generic parameter list.
    let mut generics_decl = String::new();
    let mut generics_args = String::new();
    let mut type_params = Vec::new();
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1;
        let mut inner: Vec<TokenTree> = Vec::new();
        while depth > 0 {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            inner.push(toks[i].clone());
            i += 1;
        }
        // Split params at top-level commas to pull out their names.
        let mut arg_names: Vec<String> = Vec::new();
        let mut j = 0;
        while j < inner.len() {
            // One parameter starts here.
            match &inner[j] {
                TokenTree::Punct(p) if p.as_char() == '\'' => {
                    // Lifetime parameter: `'a` (+ optional bounds).
                    if let Some(TokenTree::Ident(lt)) = inner.get(j + 1) {
                        arg_names.push(format!("'{lt}"));
                    }
                    j += 2;
                }
                TokenTree::Ident(id) if id.to_string() == "const" => {
                    if let Some(TokenTree::Ident(n)) = inner.get(j + 1) {
                        arg_names.push(n.to_string());
                    }
                    j += 2;
                }
                TokenTree::Ident(id) => {
                    let n = id.to_string();
                    arg_names.push(n.clone());
                    type_params.push(n);
                    j += 1;
                }
                _ => {
                    j += 1;
                    continue;
                }
            }
            skip_past_type(&inner, &mut j);
        }
        let decl: TokenStream = inner.into_iter().collect();
        generics_decl = format!("<{}>", decl);
        generics_args = format!("<{}>", arg_names.join(", "));
    }

    // Optional where clause, then the body.
    let mut where_raw = String::new();
    let kind = loop {
        match &toks[i] {
            TokenTree::Ident(id) if id.to_string() == "where" => {
                i += 1;
                let mut preds: Vec<TokenTree> = Vec::new();
                while i < toks.len() {
                    match &toks[i] {
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break,
                        TokenTree::Punct(p) if p.as_char() == ';' => break,
                        t => {
                            preds.push(t.clone());
                            i += 1;
                        }
                    }
                }
                let ts: TokenStream = preds.into_iter().collect();
                where_raw = ts.to_string();
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                break if is_enum {
                    Kind::Enum(parse_variants(body))
                } else {
                    Kind::Struct(Fields::Named(parse_named_fields(body)))
                };
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream().into_iter().collect());
                i += 1;
                // Tuple structs may carry `where` between `)` and `;`.
                continue_tuple(&toks, &mut i, &mut where_raw);
                break Kind::Struct(Fields::Tuple(n));
            }
            TokenTree::Punct(p) if p.as_char() == ';' => {
                break Kind::Struct(Fields::Unit);
            }
            other => panic!("serde derive: unexpected token {:?}", other.to_string()),
        }
    };

    Input {
        name,
        generics_decl,
        generics_args,
        type_params,
        where_raw,
        kind,
    }
}

fn continue_tuple(toks: &[TokenTree], i: &mut usize, where_raw: &mut String) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        *i += 1;
        let mut preds: Vec<TokenTree> = Vec::new();
        while *i < toks.len() {
            if matches!(&toks[*i], TokenTree::Punct(p) if p.as_char() == ';') {
                break;
            }
            preds.push(toks[*i].clone());
            *i += 1;
        }
        let ts: TokenStream = preds.into_iter().collect();
        *where_raw = ts.to_string();
    }
}

// --------------------------------------------------------------------------
// codegen

/// `impl<...> ::serde::Trait for Name<...> where ...` — bounds each type
/// parameter by the trait being derived.
fn impl_header(input: &Input, trait_name: &str) -> String {
    let mut preds: Vec<String> = Vec::new();
    if !input.where_raw.is_empty() {
        preds.push(input.where_raw.clone());
    }
    for p in &input.type_params {
        preds.push(format!("{p}: ::serde::{trait_name}"));
    }
    let where_clause = if preds.is_empty() {
        String::new()
    } else {
        format!(" where {}", preds.join(", "))
    };
    format!(
        "impl{} ::serde::{} for {}{}{}",
        input.generics_decl, trait_name, input.name, input.generics_args, where_clause
    )
}

fn named_to_map(fields: &[Field], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&{1}{0}))",
                f.name, access_prefix
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

/// `match` arm body deserializing named fields into `ctor { ... }` from a
/// map slice named `__m`.
fn named_from_map(ctor: &str, fields: &[Field]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let absent = if f.default {
                "::std::default::Default::default()".to_string()
            } else {
                format!("::serde::Deserialize::missing(\"{}\")?", f.name)
            };
            format!(
                "{0}: match ::serde::__map_get(__m, \"{0}\") {{ \
                   ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?, \
                   ::std::option::Option::None => {1}, \
                 }}",
                f.name, absent
            )
        })
        .collect();
    format!(
        "::std::result::Result::Ok({} {{ {} }})",
        ctor,
        inits.join(", ")
    )
}

fn gen_serialize(input: &Input) -> String {
    let body = match &input.kind {
        Kind::Struct(Fields::Named(fields)) => named_to_map(fields, "self."),
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Kind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let name = &input.name;
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|k| format!("__f{k}")).collect();
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Seq(::std::vec![{}]))]),",
                                binders.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binders: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0}))",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Map(::std::vec![{}]))]),",
                                binders.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "{} {{ fn to_value(&self) -> ::serde::Value {{ {} }} }}",
        impl_header(input, "Serialize"),
        body
    )
}

fn tuple_from_seq(ctor: &str, n: usize, seq_expr: &str, what: &str) -> String {
    let items: Vec<String> = (0..n)
        .map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?"))
        .collect();
    format!(
        "{{ let __s = match ({seq_expr}).as_seq() {{ \
             ::std::option::Option::Some(__s) => __s, \
             ::std::option::Option::None => return ::std::result::Result::Err(::serde::Error::custom(\"expected sequence for {what}\")), \
           }}; \
           if __s.len() != {n} {{ \
             return ::std::result::Result::Err(::serde::Error::custom(\"wrong tuple length for {what}\")); \
           }} \
           ::std::result::Result::Ok({ctor}({items})) }}",
        items = items.join(", ")
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Named(fields)) => format!(
            "let __m = match v.as_map() {{ \
               ::std::option::Option::Some(__m) => __m, \
               ::std::option::Option::None => return ::std::result::Result::Err(::serde::Error::custom(\"expected map for struct {name}\")), \
             }}; \
             {}",
            named_from_map(name, fields)
        ),
        Kind::Struct(Fields::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
        ),
        Kind::Struct(Fields::Tuple(n)) => tuple_from_seq(name, *n, "v", name),
        Kind::Struct(Fields::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        // Accept `{"Unit": null}` too.
                        Fields::Unit => format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                        ),
                        Fields::Tuple(1) => format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?)),"
                        ),
                        Fields::Tuple(n) => format!(
                            "\"{vn}\" => {},",
                            tuple_from_seq(&format!("{name}::{vn}"), *n, "__payload", &format!("{name}::{vn}"))
                        ),
                        Fields::Named(fields) => format!(
                            "\"{vn}\" => {{ \
                               let __m = match __payload.as_map() {{ \
                                 ::std::option::Option::Some(__m) => __m, \
                                 ::std::option::Option::None => return ::std::result::Result::Err(::serde::Error::custom(\"expected map for variant {name}::{vn}\")), \
                               }}; \
                               {} \
                             }},",
                            named_from_map(&format!("{name}::{vn}"), fields)
                        ),
                    }
                })
                .collect();
            format!(
                "match v {{ \
                   ::serde::Value::Str(__s) => match __s.as_str() {{ \
                     {} \
                     __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{}}` of {name}\", __other))), \
                   }}, \
                   ::serde::Value::Map(__entries) if __entries.len() == 1 => {{ \
                     let (__k, __payload) = &__entries[0]; \
                     match __k.as_str() {{ \
                       {} \
                       __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{}}` of {name}\", __other))), \
                     }} \
                   }}, \
                   _ => ::std::result::Result::Err(::serde::Error::custom(\"expected enum {name}\")), \
                 }}",
                unit_arms.join(" "),
                payload_arms.join(" ")
            )
        }
    };
    format!(
        "{} {{ fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {} }} }}",
        impl_header(input, "Deserialize"),
        body
    )
}

// --------------------------------------------------------------------------
// entry points

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde derive: generated Deserialize impl failed to parse")
}
