//! Offline stand-in for the parts of `rand` 0.8 this workspace uses.
//!
//! The container image has no network access and no vendored registry, so the
//! workspace ships this minimal, API-compatible subset instead: `StdRng`
//! (xoshiro256++ seeded via SplitMix64), `SeedableRng::seed_from_u64`, and the
//! `Rng` range/`gen` methods that `chiplet_sim::DetRng` calls. The stream is
//! deterministic per seed — the repo only relies on self-consistency, never on
//! matching upstream rand's byte stream.

/// Low-level source of 64-bit randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`rng.gen::<T>()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (upstream rand's layout).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` via 128-bit widening multiply.
///
/// Bias is at most `bound / 2^64`, far below anything the simulator's
/// statistical tests can resolve.
fn below_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

impl SampleRange<u64> for core::ops::Range<u64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let width = self.end - self.start;
        self.start + below_u64(rng, width)
    }
}

impl SampleRange<u64> for core::ops::RangeInclusive<u64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from an empty range");
        if lo == 0 && hi == u64::MAX {
            return rng.next_u64();
        }
        lo + below_u64(rng, hi - lo + 1)
    }
}

impl SampleRange<usize> for core::ops::Range<usize> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        (self.start as u64..self.end as u64).sample_from(rng) as usize
    }
}

impl SampleRange<usize> for core::ops::RangeInclusive<usize> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        (*self.start() as u64..=*self.end() as u64).sample_from(rng) as usize
    }
}

impl SampleRange<u32> for core::ops::Range<u32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u32 {
        (self.start as u64..self.end as u64).sample_from(rng) as u32
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against landing exactly on `end` through rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid; the standard
    /// generator of this stub.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..256 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(r.gen_range(0u64..17) < 17);
            let v = r.gen_range(5u64..10);
            assert!((5..10).contains(&v));
            let i = r.gen_range(0usize..=7);
            assert!(i <= 7);
            let f = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
            let u = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn full_width_inclusive_range() {
        let mut r = StdRng::seed_from_u64(2);
        // Must not overflow.
        let _ = r.gen_range(0u64..=u64::MAX);
        let _ = r.gen_range(0u64..u64::MAX);
    }

    #[test]
    fn float_distribution_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
