//! Offline stand-in for the slice of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and [`Error`], all over
//! the vendored serde's [`Value`] tree.
//!
//! Formatting mirrors upstream closely enough for this repo's needs: maps in
//! insertion order, floats via Rust's shortest round-trip `Display` (with a
//! `.0` appended to integral values, as upstream prints `1.0`), non-finite
//! floats as `null` (upstream behavior), and 2-space pretty indentation.
//! Output is deterministic, which the engine's byte-identical-trace
//! guarantee relies on.

use std::fmt;

pub use serde::Value;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.message())
    }
}

// --------------------------------------------------------------------------
// serialization

/// Compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Pretty JSON, 2-space indent.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Lowers any serializable value to the [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v).map_err(Error::from)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_str(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_str(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        // Upstream serde_json writes non-finite floats as null.
        out.push_str("null");
        return;
    }
    let s = format!("{x}");
    out.push_str(&s);
    // `1` → `1.0` so floats stay floats on re-parse (upstream prints `1.0`).
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------------------
// parsing

/// Parses a typed value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&v).map_err(Error::from)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at offset {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected '{'")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    let code = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            s.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(
            to_string("hi \"there\"\n").unwrap(),
            "\"hi \\\"there\\\"\\n\""
        );
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<String>("\"a\\u0041\\n\"").unwrap(), "aA\n");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);

        let o: Option<f64> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::U64(1)),
            (
                "b".to_string(),
                Value::Seq(vec![Value::U64(1), Value::U64(2)]),
            ),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    1,\n    2\n  ]\n}");
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("42 junk").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
    }
}
