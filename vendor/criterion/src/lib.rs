//! Offline stand-in for the slice of `criterion` 0.5 this workspace uses:
//! `Criterion::bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Methodology is deliberately simple: a short warm-up, then timed batches
//! until a wall-clock budget is exhausted; the report prints min / mean /
//! max ns per iteration. Invoking the binary with `--test` (as `cargo test`
//! does for `harness = false` bench targets) runs each body once and skips
//! measurement, so test runs stay fast.
//!
//! Two environment variables drive CI integration:
//!
//! * `CRITERION_QUICK=1` shrinks the warm-up and measurement budget for
//!   smoke jobs (noisier numbers, ~6× faster walls);
//! * `CRITERION_JSON=<path>` appends one JSON line per benchmark —
//!   `{"id":…,"min_ns":…,"mean_ns":…,"max_ns":…,"iterations":…}` — for
//!   the `bench-check` regression comparator.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    mode: Mode,
    /// Filled in by [`Bencher::iter`]: (iterations, total elapsed).
    samples: Vec<(u64, Duration)>,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Warm up, then measure batches until the budget is spent.
    Measure { warmup: Duration, budget: Duration },
    /// One iteration, no timing (`--test`).
    Smoke,
}

impl Bencher {
    /// Times `routine`, storing samples for the caller to report.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            Mode::Smoke => {
                black_box(routine());
            }
            Mode::Measure { warmup, budget } => {
                // Warm-up: also estimates a batch size targeting ~10ms/batch.
                let start = Instant::now();
                let mut warm_iters: u64 = 0;
                while start.elapsed() < warmup {
                    black_box(routine());
                    warm_iters += 1;
                }
                let per_iter = start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
                let batch = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);

                let all = Instant::now();
                while all.elapsed() < budget {
                    let t0 = Instant::now();
                    for _ in 0..batch {
                        black_box(routine());
                    }
                    self.samples.push((batch, t0.elapsed()));
                }
            }
        }
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--test");
        let quick = std::env::var_os("CRITERION_QUICK").is_some_and(|v| v != "0");
        let (warmup, budget) = if quick {
            (Duration::from_millis(20), Duration::from_millis(60))
        } else {
            (Duration::from_millis(100), Duration::from_millis(400))
        };
        Criterion {
            mode: if smoke {
                Mode::Smoke
            } else {
                Mode::Measure { warmup, budget }
            },
        }
    }
}

/// One JSON line for the `CRITERION_JSON` sidecar file.
fn json_line(id: &str, min_ns: f64, mean_ns: f64, max_ns: f64, iterations: u64) -> String {
    format!(
        "{{\"id\":\"{id}\",\"min_ns\":{min_ns:.1},\"mean_ns\":{mean_ns:.1},\
         \"max_ns\":{max_ns:.1},\"iterations\":{iterations}}}"
    )
}

impl Criterion {
    /// Runs one named benchmark and prints its timing line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            mode: self.mode,
            samples: Vec::new(),
        };
        f(&mut b);
        if self.mode == Mode::Smoke {
            println!("{id}: ok (smoke)");
            return self;
        }
        let (mut iters, mut total) = (0u64, Duration::ZERO);
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        for &(n, d) in &b.samples {
            iters += n;
            total += d;
            let per = d.as_secs_f64() * 1e9 / n as f64;
            lo = lo.min(per);
            hi = hi.max(per);
        }
        if iters == 0 {
            println!("{id}: no samples");
        } else {
            let mean = total.as_secs_f64() * 1e9 / iters as f64;
            println!(
                "{id}: [{:.1} ns {:.1} ns {:.1} ns] ({} iterations)",
                lo, mean, hi, iters
            );
            if let Some(path) = std::env::var_os("CRITERION_JSON") {
                use std::io::Write;
                if let Ok(mut f) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                {
                    let _ = writeln!(f, "{}", json_line(id, lo, mean, hi, iters));
                }
            }
        }
        self
    }
}

/// Mirror of criterion's `criterion_group!`: defines a function that runs
/// each target against a fresh `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of criterion's `criterion_main!`: the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut b = Bencher {
            mode: Mode::Smoke,
            samples: Vec::new(),
        };
        let mut count = 0u32;
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        assert!(b.samples.is_empty());
    }

    #[test]
    fn json_line_shape() {
        let line = json_line("engine/foo", 10.26, 11.5, 13.71, 42);
        assert_eq!(
            line,
            "{\"id\":\"engine/foo\",\"min_ns\":10.3,\"mean_ns\":11.5,\
             \"max_ns\":13.7,\"iterations\":42}"
        );
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut b = Bencher {
            mode: Mode::Measure {
                warmup: Duration::from_millis(1),
                budget: Duration::from_millis(5),
            },
            samples: Vec::new(),
        };
        b.iter(|| black_box(3u64.wrapping_mul(7)));
        assert!(!b.samples.is_empty());
    }
}
