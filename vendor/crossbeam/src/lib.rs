//! Offline stand-in for the `crossbeam::thread::scope` API, implemented on
//! top of `std::thread::scope` (stable since Rust 1.63).
//!
//! Differences from real crossbeam, acceptable for this workspace's call
//! sites: the spawn closure receives `()` instead of a scope reference
//! (callers all write `move |_| ...`), and the outer `scope` never returns
//! `Err` — panics surface through each handle's `join()` instead.

pub mod thread {
    use std::any::Any;

    /// Mirror of `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Mirror of `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread; `Err` carries the panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure's argument is a placeholder
        /// for crossbeam's nested-scope handle, which this stub doesn't
        /// support (no call site uses it).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("thread"))
                .sum::<u64>()
        })
        .expect("scope");
        assert_eq!(total, 100);
    }
}
