//! Offline stand-in for the slice of `proptest` this workspace uses.
//!
//! Strategies are plain samplers: each test case draws fresh inputs from a
//! deterministic RNG seeded from the test's name, so failures are
//! reproducible run-to-run. There is no shrinking — a failing case panics
//! with the assertion message directly (the drawn values can be printed by
//! the assertion itself).
//!
//! Supported surface: `proptest! { ... }` with an optional
//! `#![proptest_config(ProptestConfig::with_cases(N))]`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assert_ne!`, range strategies over the primitive
//! numeric types, tuples up to 6 elements, `prop::bool::ANY`,
//! `prop::option::of`, `proptest::collection::vec`, and `.prop_map`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test deterministic RNG.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds from the test name so each test has a stable, independent
    /// stream.
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.gen::<u64>()
    }
}

/// Test-runner configuration (`cases` is the number of sampled inputs).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u64) - (self.start as u64);
                let off = ((rng.next_u64() as u128 * width as u128) >> 64) as u64;
                ((self.start as u64) + off) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                if lo as u64 == 0 && hi as u64 == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let width = (hi as u64) - (lo as u64) + 1;
                let off = ((rng.next_u64() as u128 * width as u128) >> 64) as u64;
                ((lo as u64) + off) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 * width) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128 * width) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        ((self.start as f64)..(self.end as f64)).sample(rng) as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// `Just`-style constant strategy (handy for composing).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with length drawn from `len` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// `prop::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `None` about a quarter of the time.
    pub struct OptionStrategy<S>(S);

    /// `prop::option::of(inner)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// The `prop::` namespace (`prop::bool::ANY`, `prop::option::of`, ...).
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// The test-defining macro. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written at the call site, as with
/// upstream proptest's re-emitted metas) that samples `cases` inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $p = $crate::Strategy::sample(&$s, &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, bool)> {
        (1u32..10, prop::bool::ANY).prop_map(|(a, b)| (a * 2, b))
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0.5f64..2.0, z in 1u8..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u64..100, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn composed_strategies(p in arb_pair(), o in prop::option::of(1u32..5)) {
            let (a, _b) = p;
            prop_assert!(a % 2 == 0);
            if let Some(i) = o {
                prop_assert!((1..5).contains(&i));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_applies(mut x in 0u32..10) {
            x += 1;
            prop_assert!(x <= 10);
        }
    }

    #[test]
    fn deterministic_sampling() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        let s = 0u64..1000;
        for _ in 0..100 {
            assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
        }
    }
}
