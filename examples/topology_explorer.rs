//! Topology explorer: interactive-scale design-space exploration with the
//! `chiplet-dse` analytical estimator.
//!
//! Enumerates a few hundred EPYC-9634-derived designs (CCD count, NoC grid
//! shape, diagonal express links, GMI capacity scaling), scores each one
//! analytically in microseconds, prints the Pareto frontier over
//! (latency, bandwidth, cost), and walks the winning design's routes the
//! way the original explorer walked the stock platforms.
//!
//! Run with: `cargo run --release --example topology_explorer`

use server_chiplet_networking::net::dse::{
    cost_proxy, estimate_design, pareto_frontier, DseAxis, DseSpec, ParetoPoint,
};
use server_chiplet_networking::net::scenario::{
    BackendKind, CoreSelect, EngineFlow, EngineOptions, ScenarioFlow, ScenarioSpec, TargetSpec,
    TopologyChoice,
};
use server_chiplet_networking::sim::{ByteSize, SimTime};
use server_chiplet_networking::topology::{CoreId, DimmPosition, Topology};

/// The workload each design is ranked under: a latency probe on CCD 0
/// contending with a bandwidth stream on CCD 1, both reading all DIMMs.
fn workload() -> ScenarioSpec {
    let flow = |name: &str, ccd: u32| ScenarioFlow {
        name: name.into(),
        demand: None,
        engine: Some(EngineFlow {
            cores: CoreSelect::Ccd(ccd),
            nic: None,
            target: TargetSpec::AllDimms,
            op: None,
            pattern: None,
            working_set: Some(ByteSize::from_mib(64)),
            start: None,
            stop: None,
        }),
        links: Vec::new(),
    };
    ScenarioSpec {
        name: "explorer".into(),
        description: "latency probe vs bandwidth stream".into(),
        topology: TopologyChoice::Named("epyc_9634".into()),
        backend: BackendKind::Event,
        seed: Some(42),
        horizon: SimTime::from_micros(30),
        policy: Default::default(),
        engine: Some(EngineOptions {
            deterministic_memory: true,
            ..Default::default()
        }),
        fluid: None,
        flows: vec![flow("probe", 0), flow("stream", 1)],
    }
}

fn main() {
    let search = DseSpec {
        name: "explorer".into(),
        description: "EPYC 9634 derivatives: CCDs x grid x routing x GMI".into(),
        base: workload(),
        axes: vec![
            DseAxis::CcdCount {
                values: vec![2, 4, 6, 8, 12],
            },
            DseAxis::QuadrantGrid {
                values: vec![(2, 2), (3, 2), (4, 3)],
            },
            DseAxis::DiagonalExpress {
                values: vec![false, true],
            },
            DseAxis::GmiScale {
                values: vec![0.5, 0.75, 1.0, 1.25, 1.5],
            },
        ],
        max_candidates: None,
        escalate: None,
    };

    let candidates = search.expand().expect("search expands");
    println!(
        "exploring {} designs over {} axes...",
        candidates.len(),
        search.axes.len()
    );

    // Score every candidate analytically; infeasible combinations (e.g. a
    // CCD count the workload cannot place) are skipped, not fatal.
    let mut scored = Vec::new();
    let t0 = std::time::Instant::now();
    for point in &candidates {
        if let Ok(est) = estimate_design(&point.spec) {
            scored.push((point, est));
        }
    }
    let elapsed = t0.elapsed();
    println!(
        "scored {} designs in {:.1} ms ({:.1} µs/design)\n",
        scored.len(),
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e6 / scored.len().max(1) as f64,
    );

    let points: Vec<ParetoPoint> = scored
        .iter()
        .map(|(p, est)| ParetoPoint {
            latency_ns: est.latency_ns,
            bandwidth_gb_s: est.bandwidth_gb_s,
            cost: est.cost,
            hash: u64::from_str_radix(&p.hash, 16).expect("hex hash"),
        })
        .collect();
    let frontier = pareto_frontier(&points);

    println!(
        "Pareto frontier: {} of {} designs (minimize latency & cost, maximize bandwidth)",
        frontier.len(),
        scored.len()
    );
    println!(
        "{:<52} {:>12} {:>10} {:>8}",
        "design", "latency ns", "GB/s", "cost"
    );
    for &i in &frontier {
        let (point, est) = &scored[i];
        let label = point
            .label
            .strip_prefix("explorer [")
            .and_then(|s| s.strip_suffix(']'))
            .unwrap_or(&point.label);
        println!(
            "{:<52} {:>12.1} {:>10.1} {:>8.1}",
            label, est.latency_ns, est.bandwidth_gb_s, est.cost
        );
    }

    // Walk the lowest-latency frontier design's routes, the way the old
    // explorer walked the stock platforms.
    let best = frontier
        .iter()
        .map(|&i| &scored[i])
        .min_by(|a, b| a.1.latency_ns.total_cmp(&b.1.latency_ns))
        .expect("frontier is non-empty");
    let platform = best.0.spec.topology.platform().expect("inline platform");
    let topo = Topology::build(&platform);
    println!(
        "\nbest-latency design: {} (cost proxy {:.1})",
        best.0.label,
        cost_proxy(&platform)
    );
    println!("routes from core0:");
    for pos in DimmPosition::ALL {
        let Some(dimm) = topo.dimm_at_position(CoreId(0), pos) else {
            continue;
        };
        let path = topo.route_core_to_dimm(CoreId(0), dimm);
        println!(
            "  {pos:<10} -> {dimm}: {} graph hops, {} switch hops, {:.0} ns unloaded",
            path.link_count(),
            path.switch_hops,
            path.latency_ns
        );
    }
}
