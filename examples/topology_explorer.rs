//! Topology explorer: the paper's §4 #1 — a device-tree-like hardware
//! abstraction for chiplet networks. Dumps the `chiplet-net` descriptor
//! (the `/sys/firmware/chiplet-net` analog) and walks end-to-end routes,
//! showing per-position hop counts and latencies.
//!
//! Run with: `cargo run --release --example topology_explorer`

use server_chiplet_networking::topology::descriptor::ChipletNetDescriptor;
use server_chiplet_networking::topology::{CoreId, DimmPosition, NpsMode, PlatformSpec, Topology};

fn main() {
    for spec in [PlatformSpec::epyc_7302(), PlatformSpec::epyc_9634()] {
        let topo = Topology::build(&spec);
        println!("=== {} ===", spec.name);

        // The descriptor: what an OS would read at boot.
        let desc = ChipletNetDescriptor::from_topology(&topo);
        println!(
            "descriptor: {} nodes, {} links, {} capacity points (v{})",
            desc.nodes.len(),
            desc.links.len(),
            desc.capacity_point_count(),
            desc.version
        );

        // Route walk: core 0 to a DIMM at each position.
        println!("routes from core0 (1 GiB pointer-chase working set):");
        for pos in DimmPosition::ALL {
            let Some(dimm) = topo.dimm_at_position(CoreId(0), pos) else {
                continue;
            };
            let path = topo.route_core_to_dimm(CoreId(0), dimm);
            println!(
                "  {pos:<10} -> {dimm}: {} graph hops, {} switch hops, {:.0} ns unloaded",
                path.link_count(),
                path.switch_hops,
                path.latency_ns
            );
        }
        if topo.cxl_device_count() > 0 {
            let path = topo.route_core_to_cxl(CoreId(0), 0).unwrap();
            println!(
                "  {:<10} -> cxl0: {} graph hops, {} switch hops, {:.0} ns unloaded",
                "cxl",
                path.link_count(),
                path.switch_hops,
                path.latency_ns
            );
        }

        // NPS scoping: which DIMMs a core interleaves over.
        for nps in [NpsMode::Nps1, NpsMode::Nps2, NpsMode::Nps4] {
            let dimms = topo.dimms_in_scope(CoreId(0), nps);
            println!("  {nps}: core0 interleaves over {} DIMMs", dimms.len());
        }
        println!();
    }

    // Print a JSON excerpt of the descriptor so the format is visible.
    let topo = Topology::build(&PlatformSpec::epyc_7302());
    let json = ChipletNetDescriptor::from_topology(&topo).to_json();
    let excerpt: String = json.lines().take(24).collect::<Vec<_>>().join("\n");
    println!("descriptor JSON (first lines):\n{excerpt}\n  ...");
}
