//! Sketch-based profiling (§4 #5) and traffic-matrix estimation (§4 #4 /
//! Implication #2). Runs a skewed multi-flow workload, feeds the
//! transaction stream through bounded-memory sketches, and reconstructs
//! the traffic matrix from link counters alone.
//!
//! Run with: `cargo run --release --example profiler`

use server_chiplet_networking::net::engine::{Engine, EngineConfig};
use server_chiplet_networking::net::flow::{FlowSpec, Target};
use server_chiplet_networking::net::matrix::TrafficMatrix;
use server_chiplet_networking::net::profiler::ProfileReport;
use server_chiplet_networking::sim::{Bandwidth, SimTime};
use server_chiplet_networking::topology::{CcdId, DimmId, PlatformSpec, Topology};

fn main() {
    let topo = Topology::build(&PlatformSpec::epyc_7302());
    let spec = topo.spec();

    // A skewed workload: CCD0 hammers DIMM 0, the others spread lightly.
    // The engine's live profiler (one sketch record per transaction) is on.
    let cfg = EngineConfig::default().with_profile();
    let mut engine = Engine::new(&topo, cfg);
    engine.add_flow(
        FlowSpec::reads(
            "hot",
            topo.cores_of_ccd(CcdId(0)).collect(),
            Target::dimm(DimmId(0)),
        )
        .build(&topo),
    );
    for ccd in 1..spec.ccd_count {
        engine.add_flow(
            FlowSpec::reads(
                &format!("bg-ccd{ccd}"),
                topo.cores_of_ccd(CcdId(ccd)).collect(),
                Target::all_dimms(&topo),
            )
            .offered(Bandwidth::from_gb_per_s(6.0))
            .build(&topo),
        );
    }
    let result = engine.run(SimTime::from_micros(60));

    // The live profiler observed every completed transaction through its
    // sketches (Count-Min, SpaceSaving, DDSketch) in bounded memory.
    let profile: &ProfileReport = result.profile.as_ref().expect("profiling was on");
    println!(
        "live profiler: {} transactions distilled into {} bytes of sketches",
        profile.records, profile.memory_bytes
    );
    println!("  top (CCD -> UMC) heavy hitters:");
    for hh in profile.heavy_hitters.iter().take(3) {
        println!(
            "    ccd{} -> umc{}: <= {:.2} MB",
            hh.src,
            hh.dest,
            hh.bytes as f64 / 1e6
        );
    }
    println!(
        "  global latency quantiles: p50 {:.0} ns, p99 {:.0} ns, p999 {:.0} ns",
        profile.global_p50_ns, profile.global_p99_ns, profile.global_p999_ns
    );
    for f in profile.flows.iter().take(2) {
        println!(
            "  {}: p50 {:.0} ns / p999 {:.0} ns over {} samples",
            f.flow, f.p50_ns, f.p999_ns, f.samples
        );
    }

    // Traffic-matrix estimation from link counters alone (gravity model):
    // an observability layer that only sees per-CCD and per-UMC byte
    // counts, not flows.
    let truth =
        TrafficMatrix::from_cells(spec.ccd_count, spec.mem.umc_count, &result.telemetry.matrix);
    let estimate = TrafficMatrix::gravity_estimate(&truth.row_sums(), &truth.col_sums());
    println!(
        "\ngravity-model reconstruction from link counters: {:.0}% relative error",
        estimate.relative_error(&truth) * 100.0
    );
    let (ccd, dest, bytes) = truth.hottest().expect("traffic exists");
    println!(
        "ground-truth hottest pair: ccd{ccd} -> umc{dest} ({:.2} MB in 58 µs) \
         — the skew that defeats the gravity prior and motivates the \
         finer-grained telemetry of the paper's /proc/chiplet-net.",
        bytes as f64 / 1e6
    );
}
