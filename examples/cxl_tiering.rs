//! CXL memory tiering: a capacity-hungry application decides how much of
//! its working set to place on CXL expansion memory. The simulator
//! quantifies the bandwidth/latency cost of each split and the BDP monitor
//! (Implication #3) derives the in-flight budget each tier needs.
//!
//! Run with: `cargo run --release --example cxl_tiering`

use server_chiplet_networking::net::bdp::BdpMonitor;
use server_chiplet_networking::net::engine::{Engine, EngineConfig};
use server_chiplet_networking::net::flow::{FlowSpec, Target};
use server_chiplet_networking::sim::{Bandwidth, SimTime};
use server_chiplet_networking::topology::{CcdId, CoreId, PlatformSpec, Topology};

/// Runs one chiplet with a fraction of its accesses redirected to CXL and
/// returns (total GB/s, DRAM mean ns, CXL mean ns).
fn run_split(topo: &Topology, cxl_fraction: f64) -> (f64, f64, Option<f64>) {
    let cores: Vec<CoreId> = topo.cores_of_ccd(CcdId(0)).collect();
    // Partition the chiplet's cores between the two tiers in proportion to
    // the access split (a page-placement policy would interleave; core
    // partitioning gives the same steady-state mix here).
    let cxl_cores = ((cores.len() as f64 * cxl_fraction).round() as usize).min(cores.len());
    let (cxl_set, dram_set) = cores.split_at(cxl_cores);

    let mut engine = Engine::new(topo, EngineConfig::default());
    if !dram_set.is_empty() {
        engine.add_flow(
            FlowSpec::reads("dram-tier", dram_set.to_vec(), Target::all_dimms(topo)).build(topo),
        );
    }
    if !cxl_set.is_empty() {
        engine.add_flow(FlowSpec::reads("cxl-tier", cxl_set.to_vec(), Target::Cxl(0)).build(topo));
    }
    let r = engine.run(SimTime::from_micros(60));
    let total: f64 = r.flows.iter().map(|f| f.achieved.as_gb_per_s()).sum();
    let dram_ns = r
        .flow("dram-tier")
        .map(|f| f.mean_latency_ns())
        .unwrap_or(f64::NAN);
    let cxl_ns = r.flow("cxl-tier").map(|f| f.mean_latency_ns());
    (total, dram_ns, cxl_ns)
}

fn main() {
    let topo = Topology::build(&PlatformSpec::epyc_9634());
    println!(
        "One CCD of the {} streaming reads, with 0–100% of accesses placed \
         on the CXL tier:\n",
        topo.spec().name
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "CXL share", "total GB/s", "DRAM ns", "CXL ns"
    );
    for pct in [0.0, 0.15, 0.30, 0.50, 0.70, 1.0] {
        let (total, dram_ns, cxl_ns) = run_split(&topo, pct);
        println!(
            "{:>9.0}% {total:>12.1} {:>12} {:>12}",
            pct * 100.0,
            if dram_ns.is_nan() {
                "—".to_string()
            } else {
                format!("{dram_ns:.0}")
            },
            cxl_ns.map_or("—".to_string(), |v| format!("{v:.0}")),
        );
    }

    // BDP budgeting for the two tiers (Implication #3): how many cachelines
    // in flight each path needs to stay busy.
    let mut dram_bdp = BdpMonitor::new(0.3);
    let mut cxl_bdp = BdpMonitor::new(0.3);
    dram_bdp.observe(Bandwidth::from_gb_per_s(33.2), 146.0);
    cxl_bdp.observe(Bandwidth::from_gb_per_s(24.3), 243.0);
    println!(
        "\nBDP budgets: DRAM path {} ({} lines), CXL path {} ({} lines).",
        dram_bdp.bdp(),
        dram_bdp.recommended_inflight(),
        cxl_bdp.bdp(),
        cxl_bdp.recommended_inflight()
    );
    println!(
        "Moving accesses to CXL trades ~70% higher latency for extra \
         capacity; past the per-CCD CXL port (~24 GB/s) the tier also costs \
         bandwidth — the interconnect wall of Implication #2."
    );
}
