//! Scalable-OS synchronization study (§4 #2): the paper asks whether the
//! multikernel's "make communication explicit" rule survives chiplet
//! networking. This example prices the two primitives against the
//! core-to-core latency ladder:
//!
//! * **shared-memory lock**: a contended lock line bounces between the
//!   holder and the next waiter — one cacheline handoff per critical
//!   section, plus the handoff of the data it protects (2× c2c);
//! * **message passing**: a request and a reply slot, written by one side
//!   and polled by the other — also two one-way transfers, but they
//!   pipeline with computation and never stall the *other* cores.
//!
//! Run with: `cargo run --release --example os_sync`

use server_chiplet_networking::topology::{CoreId, PlatformSpec, Topology};

struct Placement {
    name: &'static str,
    a: CoreId,
    b: CoreId,
}

fn main() {
    let topo = Topology::build(&PlatformSpec::dual_epyc_7302());
    println!(
        "OS synchronization costs on {} (c2c cacheline handoffs):\n",
        topo.spec().name
    );

    let placements = [
        Placement {
            name: "same CCX (shared L3)",
            a: CoreId(0),
            b: CoreId(1),
        },
        Placement {
            name: "same CCD, other CCX",
            a: CoreId(0),
            b: CoreId(2),
        },
        Placement {
            name: "other CCD (horizontal)",
            a: CoreId(0),
            b: CoreId(4),
        },
        Placement {
            name: "other CCD (diagonal)",
            a: CoreId(0),
            b: CoreId(12),
        },
        Placement {
            name: "other socket (xGMI)",
            a: CoreId(0),
            b: CoreId(16),
        },
    ];

    println!(
        "{:<28} {:>10} {:>22} {:>14}",
        "placement", "c2c ns", "lock/RPC handoff ns", "vs same-CCX"
    );
    let base = topo.c2c_latency_ns(CoreId(0), CoreId(1));
    for p in &placements {
        let c2c = topo.c2c_latency_ns(p.a, p.b);
        // Both primitives move two cachelines per interaction (lock line +
        // data, or request + reply); what differs is *whose* critical path
        // pays it — every waiter's for the lock, only the caller's for RPC.
        let handoff = 2.0 * c2c;
        println!(
            "{:<28} {:>10.1} {:>22.1} {:>13.1}x",
            p.name,
            c2c,
            handoff,
            c2c / base
        );
    }

    // The multikernel question: at what core count does a single shared
    // lock lose to per-chiplet message aggregation? A shared lock
    // serializes all N waiters through handoffs at the *average* c2c
    // distance; hierarchical messaging pays one local round per core plus
    // one cross-chiplet round per chiplet.
    println!("\nContended-barrier model (16 cores, one socket):");
    let cores: Vec<CoreId> = (0..16).map(CoreId).collect();
    let avg_c2c: f64 = {
        let mut sum = 0.0;
        let mut n = 0;
        for &a in &cores {
            for &b in &cores {
                if a != b {
                    sum += topo.c2c_latency_ns(a, b);
                    n += 1;
                }
            }
        }
        sum / n as f64
    };
    let flat_lock = 16.0 * 2.0 * avg_c2c;
    // Hierarchical: 3 local handoffs per CCX (4 CCX... 7302: 8 CCX of 2) —
    // local combine within CCX, then CCX leaders combine across the die.
    let local = topo.c2c_latency_ns(CoreId(0), CoreId(1));
    let cross = topo.c2c_latency_ns(CoreId(0), CoreId(4));
    let hierarchical = 2.0 * local + 7.0 * 2.0 * cross / 4.0 + 2.0 * cross;
    println!("  flat shared lock:          {flat_lock:>8.0} ns per full rotation");
    println!("  hierarchical message tree: {hierarchical:>8.0} ns per barrier");
    println!(
        "\nReading: the chiplet ladder stretches the worst c2c handoff to \
         ~{:.0} ns ({}x the shared-L3 case). Flat shared-memory primitives \
         pay that tax on every handoff; topology-aware hierarchies (combine \
         within a CCX, then across chiplets) — i.e. the multikernel's \
         explicit communication, re-shaped to the chiplet-net descriptor's \
         ladder — keep the cross-die hops off the critical path.",
        topo.c2c_latency_ns(CoreId(0), CoreId(16)),
        (topo.c2c_latency_ns(CoreId(0), CoreId(16)) / base).round()
    );
}
