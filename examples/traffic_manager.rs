//! Traffic manager: the paper's Implication #4 made concrete. A
//! latency-sensitive flow shares a GMI link with a batch flow; under the
//! hardware's sender-driven partitioning the batch flow squeezes it, while
//! the software traffic manager (max-min, weighted, or rate-capped)
//! protects it.
//!
//! Run with: `cargo run --release --example traffic_manager`

use server_chiplet_networking::net::engine::{Engine, EngineConfig};
use server_chiplet_networking::net::flow::{FlowSpec, Target};
use server_chiplet_networking::net::traffic::TrafficPolicy;
use server_chiplet_networking::sim::{Bandwidth, SimTime};
use server_chiplet_networking::topology::{CcdId, CoreId, PlatformSpec, Topology};

fn run(topo: &Topology, policy: TrafficPolicy) -> (f64, f64, f64) {
    let cores: Vec<CoreId> = topo.cores_of_ccd(CcdId(0)).collect();
    let (latency_cores, batch_cores) = cores.split_at(2);

    // Deterministic memory devices so latency differences reflect queueing
    // policy, not DRAM refresh noise.
    let mut cfg = EngineConfig::deterministic();
    cfg.policy = policy;
    let mut engine = Engine::new(topo, cfg);
    // The latency-sensitive service wants a steady 12 GB/s.
    engine.add_flow(
        FlowSpec::reads("service", latency_cores.to_vec(), Target::all_dimms(topo))
            .offered(Bandwidth::from_gb_per_s(12.0))
            .build(topo),
    );
    // The batch job wants everything it can get.
    engine.add_flow(
        FlowSpec::reads("batch", batch_cores.to_vec(), Target::all_dimms(topo))
            .offered(Bandwidth::from_gb_per_s(30.0))
            .build(topo),
    );
    let r = engine.run(SimTime::from_micros(80));
    let service = r.flow("service").unwrap();
    let batch = r.flow("batch").unwrap();
    (
        service.achieved.as_gb_per_s(),
        service.mean_latency_ns(),
        batch.achieved.as_gb_per_s(),
    )
}

fn main() {
    let topo = Topology::build(&PlatformSpec::epyc_7302());
    println!(
        "A latency-sensitive service (12 GB/s) vs a batch job (30 GB/s) on \
         one CCD's GMI link ({}):\n",
        topo.spec().caps.gmi_read
    );
    println!(
        "{:<28} {:>14} {:>14} {:>12}",
        "policy", "service GB/s", "service mean", "batch GB/s"
    );
    let policies: [(&str, TrafficPolicy); 4] = [
        ("hardware sender-driven", TrafficPolicy::HardwareDefault),
        ("max-min fair", TrafficPolicy::MaxMinFair),
        (
            "weighted fair (service 4x)",
            TrafficPolicy::WeightedFair {
                weights: vec![4.0, 1.0],
            },
        ),
        (
            "batch rate-capped at 20",
            TrafficPolicy::RateLimit {
                caps_gb_s: vec![f64::INFINITY, 20.0],
            },
        ),
    ];
    for (name, policy) in policies {
        let (s_bw, s_lat, b_bw) = run(&topo, policy);
        println!("{name:<28} {s_bw:>14.1} {s_lat:>11.0} ns {b_bw:>12.1}");
    }
    println!(
        "\nThe flow abstraction plus a global software traffic manager turns \
         'whoever pushes hardest wins' into an explicit policy decision."
    );
}
