//! Quickstart: stand up an EPYC 9634, run one memory-bound flow, and read
//! the chiplet network's telemetry back — latency, achieved bandwidth, and
//! the bottleneck link.
//!
//! Run with: `cargo run --release --example quickstart`

use server_chiplet_networking::net::engine::{Engine, EngineConfig};
use server_chiplet_networking::net::flow::{FlowSpec, Target};
use server_chiplet_networking::sim::SimTime;
use server_chiplet_networking::topology::{CcdId, PlatformSpec, Topology};

fn main() {
    // 1. Build the platform from its preset (Table 1 constants).
    let spec = PlatformSpec::epyc_9634();
    let topo = Topology::build(&spec);
    println!(
        "platform: {} — {} cores / {} CCDs / {} UMCs / {} CXL devices\n",
        spec.name,
        topo.core_count(),
        spec.ccd_count,
        spec.mem.umc_count,
        topo.cxl_device_count()
    );

    // 2. One compute chiplet streams reads across every DIMM.
    let mut engine = Engine::new(&topo, EngineConfig::default());
    engine.add_flow(
        FlowSpec::reads(
            "ccd0-streaming-reads",
            topo.cores_of_ccd(CcdId(0)).collect(),
            Target::all_dimms(&topo),
        )
        .build(&topo),
    );

    // 3. Run 50 µs of virtual time and inspect the results.
    let result = engine.run(SimTime::from_micros(50));
    let flow = &result.flows[0];
    println!("flow '{}':", flow.name);
    println!("  achieved bandwidth: {}", flow.achieved);
    println!("  mean latency:       {:.1} ns", flow.mean_latency_ns());
    println!("  P999 latency:       {:.1} ns", flow.p999_latency_ns());
    println!("  transactions:       {} completed", flow.completed);

    // 4. Where is the bottleneck? (Implication #2: identify the throttling
    //    path segment at runtime.)
    let bottleneck = result
        .telemetry
        .bottleneck()
        .expect("links carried traffic");
    println!(
        "\nbottleneck: {:?} at {:.0}% read utilization (mean queueing {:.1} ns)",
        bottleneck.point,
        bottleneck.read.utilization * 100.0,
        bottleneck.read.mean_wait_ns
    );
    println!(
        "\nThe GMI link binds a single chiplet at ~33 GB/s (Table 3's CCD row) \
         long before the socket NoC or the UMCs run out."
    );
}
