//! The proposed networking stack end-to-end: descriptor, telemetry,
//! traffic manager, BDP monitor, traffic matrix, and determinism across
//! the whole pipeline.

use server_chiplet_networking::mem::OpKind;
use server_chiplet_networking::net::bdp::BdpMonitor;
use server_chiplet_networking::net::engine::{Engine, EngineConfig};
use server_chiplet_networking::net::flow::{FlowSpec, Target};
use server_chiplet_networking::net::matrix::TrafficMatrix;
use server_chiplet_networking::net::sketch::CountMinSketch;
use server_chiplet_networking::net::traffic::TrafficPolicy;
use server_chiplet_networking::sim::{Bandwidth, SimTime};
use server_chiplet_networking::topology::descriptor::ChipletNetDescriptor;
use server_chiplet_networking::topology::{CcdId, CoreId, PlatformSpec, Topology};

#[test]
fn descriptor_round_trips_and_names_platform() {
    for spec in [PlatformSpec::epyc_7302(), PlatformSpec::epyc_9634()] {
        let topo = Topology::build(&spec);
        let desc = ChipletNetDescriptor::from_topology(&topo);
        let back = ChipletNetDescriptor::from_json(&desc.to_json()).unwrap();
        assert_eq!(desc, back);
        assert_eq!(back.platform, spec.name);
    }
}

#[test]
fn telemetry_serializes_and_identifies_bottleneck() {
    let topo = Topology::build(&PlatformSpec::epyc_7302());
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    engine.add_flow(
        FlowSpec::reads(
            "load",
            topo.cores_of_ccd(CcdId(0)).collect(),
            Target::all_dimms(&topo),
        )
        .build(&topo),
    );
    let result = engine.run(SimTime::from_micros(30));
    let json = result.telemetry.to_json();
    assert!(json.contains("Gmi"));
    let b = result.telemetry.bottleneck().unwrap();
    assert!(
        b.read.utilization > 0.85,
        "bottleneck util {}",
        b.read.utilization
    );
}

#[test]
fn full_run_is_deterministic_per_seed() {
    let topo = Topology::build(&PlatformSpec::epyc_9634());
    let run = |seed: u64| {
        let cfg = EngineConfig::default().with_seed(seed);
        let mut engine = Engine::new(&topo, cfg);
        engine.add_flow(
            FlowSpec::reads(
                "a",
                topo.cores_of_ccd(CcdId(0)).collect(),
                Target::all_dimms(&topo),
            )
            .offered(Bandwidth::from_gb_per_s(20.0))
            .build(&topo),
        );
        engine.add_flow(
            FlowSpec::writes(
                "b",
                topo.cores_of_ccd(CcdId(1)).collect(),
                Target::all_dimms(&topo),
            )
            .build(&topo),
        );
        let r = engine.run(SimTime::from_micros(25));
        r.telemetry.to_json()
    };
    assert_eq!(run(3), run(3));
    assert_ne!(run(3), run(4));
}

#[test]
fn traffic_manager_changes_real_outcomes() {
    let topo = Topology::build(&PlatformSpec::epyc_7302());
    let run = |policy: TrafficPolicy| {
        let mut cfg = EngineConfig::deterministic();
        cfg.policy = policy;
        let mut engine = Engine::new(&topo, cfg);
        let cores: Vec<CoreId> = topo.cores_of_ccd(CcdId(0)).collect();
        let (small, big) = cores.split_at(2);
        engine.add_flow(
            FlowSpec::reads("small", small.to_vec(), Target::all_dimms(&topo))
                .offered(Bandwidth::from_gb_per_s(10.0))
                .build(&topo),
        );
        engine.add_flow(
            FlowSpec::reads("big", big.to_vec(), Target::all_dimms(&topo))
                .offered(Bandwidth::from_gb_per_s(30.0))
                .build(&topo),
        );
        let r = engine.run(SimTime::from_micros(60));
        (
            r.flow("small").unwrap().achieved.as_gb_per_s(),
            r.flow("big").unwrap().achieved.as_gb_per_s(),
        )
    };
    let (s_hw, b_hw) = run(TrafficPolicy::HardwareDefault);
    let (s_mm, _) = run(TrafficPolicy::MaxMinFair);
    let (_, b_rl) = run(TrafficPolicy::RateLimit {
        caps_gb_s: vec![f64::INFINITY, 15.0],
    });
    // Max-min restores the small flow to (nearly) its demand.
    assert!(
        s_mm >= s_hw - 0.2,
        "max-min should not hurt: {s_mm} vs {s_hw}"
    );
    assert!(s_mm > 9.0, "max-min protects the small flow: {s_mm}");
    // Rate limiting actually caps the big flow.
    assert!(b_rl < 16.0, "rate cap violated: {b_rl}");
    assert!(
        b_hw > 18.0,
        "hardware default lets the big flow run: {b_hw}"
    );
}

#[test]
fn bdp_monitor_matches_engine_observations() {
    // Feed the monitor the engine's own measurements and check the derived
    // in-flight budget is near the actual outstanding level (Little's law).
    let topo = Topology::build(&PlatformSpec::epyc_7302());
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    engine.add_flow(
        FlowSpec::reads(
            "probe",
            topo.cores_of_ccd(CcdId(0)).collect(),
            Target::all_dimms(&topo),
        )
        .build(&topo),
    );
    let r = engine.run(SimTime::from_micros(40));
    let f = &r.flows[0];
    let mut monitor = BdpMonitor::new(1.0);
    monitor.observe(f.achieved, f.mean_latency_ns());
    // Little's law: in flight ≈ rate × latency. The chiplet keeps
    // 4 cores × 32 lines = 128 outstanding at saturation.
    let lines = monitor.recommended_inflight();
    assert!(
        (100..=140).contains(&lines),
        "BDP-derived in-flight {lines} lines"
    );
}

#[test]
fn matrix_ground_truth_vs_gravity_on_engine_output() {
    let topo = Topology::build(&PlatformSpec::epyc_7302());
    let spec = topo.spec();
    // Product-form traffic: every CCD spreads evenly over all DIMMs →
    // gravity reconstruction should be near-exact.
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    for ccd in 0..spec.ccd_count {
        engine.add_flow(
            FlowSpec::reads(
                &format!("ccd{ccd}"),
                topo.cores_of_ccd(CcdId(ccd)).collect(),
                Target::all_dimms(&topo),
            )
            .offered(Bandwidth::from_gb_per_s(8.0))
            .build(&topo),
        );
    }
    let r = engine.run(SimTime::from_micros(30));
    let truth = TrafficMatrix::from_cells(spec.ccd_count, spec.mem.umc_count, &r.telemetry.matrix);
    let est = TrafficMatrix::gravity_estimate(&truth.row_sums(), &truth.col_sums());
    let err = est.relative_error(&truth);
    assert!(err < 0.05, "gravity error {err} on product-form traffic");
}

#[test]
fn sketch_profile_of_engine_traffic_is_conservative() {
    let topo = Topology::build(&PlatformSpec::epyc_7302());
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    engine.add_flow(
        FlowSpec::reads(
            "x",
            topo.cores_of_ccd(CcdId(0)).collect(),
            Target::all_dimms(&topo),
        )
        .build(&topo),
    );
    let r = engine.run(SimTime::from_micros(20));
    let mut cm = CountMinSketch::with_error(0.01, 0.01);
    for cell in &r.telemetry.matrix {
        cm.update(&(cell.ccd, cell.dest), cell.bytes);
    }
    for cell in &r.telemetry.matrix {
        assert!(
            cm.estimate(&(cell.ccd, cell.dest)) >= cell.bytes,
            "count-min underestimated a cell"
        );
    }
}

#[test]
fn writes_and_reads_coexist_on_separate_directions() {
    // One chiplet reads while another writes: neither should collapse (the
    // directions don't share servers; only the NoC/UMC touchpoints do).
    let topo = Topology::build(&PlatformSpec::epyc_9634());
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    engine.add_flow(
        FlowSpec::reads(
            "r",
            topo.cores_of_ccd(CcdId(0)).collect(),
            Target::all_dimms(&topo),
        )
        .build(&topo),
    );
    engine.add_flow(
        FlowSpec::writes(
            "w",
            topo.cores_of_ccd(CcdId(1)).collect(),
            Target::all_dimms(&topo),
        )
        .build(&topo),
    );
    let result = engine.run(SimTime::from_micros(30));
    let r = result.flow("r").unwrap().achieved.as_gb_per_s();
    let w = result.flow("w").unwrap().achieved.as_gb_per_s();
    assert!(r > 28.0, "read flow collapsed: {r}");
    assert!(w > 17.0, "write flow collapsed: {w}");
}

#[test]
fn op_kind_consistency_cross_crate() {
    // mem's OpKind drives the engine's direction choice; a sanity loop over
    // both kinds on both platforms.
    for spec in [PlatformSpec::epyc_7302(), PlatformSpec::epyc_9634()] {
        let topo = Topology::build(&spec);
        for op in [OpKind::Read, OpKind::WriteNonTemporal] {
            let mut engine = Engine::new(&topo, EngineConfig::deterministic());
            engine.add_flow(
                FlowSpec::reads("f", vec![CoreId(0)], Target::all_dimms(&topo))
                    .op(op)
                    .build(&topo),
            );
            let r = engine.run(SimTime::from_micros(15));
            assert!(
                r.flows[0].achieved.as_gb_per_s() > 1.0,
                "{op} on {}",
                spec.name
            );
        }
    }
}
