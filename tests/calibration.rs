//! End-to-end calibration: the full stack (topology → fabric/mem → engine →
//! membench probes) reproduces Tables 2 and 3 within tolerance.

use server_chiplet_networking::membench::bandwidth::{table3_column, Destination};
use server_chiplet_networking::membench::latency::{
    chase_sweep, cxl_latency, default_working_sets, position_latencies,
};
use server_chiplet_networking::membench::CoreScope;
use server_chiplet_networking::net::engine::EngineConfig;
use server_chiplet_networking::topology::{CoreId, PlatformSpec, Topology};

fn within(value: f64, expected: f64, tol: f64) -> bool {
    (value - expected).abs() <= expected * tol
}

#[test]
fn table2_position_latencies_both_platforms() {
    // (platform, paper rows near/vert/horiz/diag).
    let cases = [
        (PlatformSpec::epyc_7302(), [124.0, 131.0, 141.0, 145.0]),
        (PlatformSpec::epyc_9634(), [141.0, 145.0, 150.0, 149.0]),
    ];
    for (spec, paper) in cases {
        let topo = Topology::build(&spec);
        let rows = position_latencies(&topo, CoreId(0), &EngineConfig::deterministic());
        assert_eq!(rows.len(), 4);
        for ((pos, measured), expected) in rows.iter().zip(paper) {
            assert!(
                within(*measured, expected, 0.04),
                "{} {pos}: {measured} vs paper {expected}",
                spec.name
            );
        }
    }
}

#[test]
fn table2_cache_walk_matches_hierarchy() {
    let topo = Topology::build(&PlatformSpec::epyc_9634());
    let pts = chase_sweep(
        &topo,
        CoreId(0),
        &default_working_sets(),
        &EngineConfig::deterministic(),
    );
    // Monotone nondecreasing, L1 at the front, DRAM at the back.
    for w in pts.windows(2) {
        assert!(w[1].latency_ns >= w[0].latency_ns - 1e-9);
    }
    assert!((pts[0].latency_ns - 1.19).abs() < 1e-6);
    let last = pts.last().unwrap().latency_ns;
    assert!(within(last, 141.0, 0.05), "DRAM plateau {last}");
}

#[test]
fn table2_cxl_row() {
    let topo = Topology::build(&PlatformSpec::epyc_9634());
    let lat = cxl_latency(&topo, CoreId(0), &EngineConfig::deterministic()).unwrap();
    assert!(within(lat, 243.0, 0.05), "CXL latency {lat}");
}

#[test]
fn table3_dimm_column_7302() {
    let topo = Topology::build(&PlatformSpec::epyc_7302());
    let rows = table3_column(&topo, Destination::Dimms, &EngineConfig::deterministic()).unwrap();
    let paper = [
        (CoreScope::Core, 14.9, 3.6),
        (CoreScope::Ccx, 25.1, 7.1),
        (CoreScope::Ccd, 32.5, 14.3),
        (CoreScope::Cpu, 106.7, 55.1),
    ];
    for (row, (scope, r, w)) in rows.iter().zip(paper) {
        assert_eq!(row.scope, scope);
        assert!(
            within(row.read_gb_s, r, 0.10),
            "{scope} read {}",
            row.read_gb_s
        );
        assert!(
            within(row.write_gb_s, w, 0.15),
            "{scope} write {}",
            row.write_gb_s
        );
    }
}

#[test]
fn table3_dimm_column_9634() {
    let topo = Topology::build(&PlatformSpec::epyc_9634());
    let rows = table3_column(&topo, Destination::Dimms, &EngineConfig::deterministic()).unwrap();
    // CCX and CCD coincide on Zen 4; the paper's two rows bracket our GMI
    // capacity, so tolerate against the CCD row.
    let paper = [
        (CoreScope::Core, 14.6, 3.3),
        (CoreScope::Ccx, 33.2, 23.6),
        (CoreScope::Ccd, 33.2, 23.6),
        (CoreScope::Cpu, 366.2, 270.6),
    ];
    for (row, (scope, r, w)) in rows.iter().zip(paper) {
        assert!(
            within(row.read_gb_s, r, 0.10),
            "{scope} read {}",
            row.read_gb_s
        );
        assert!(
            within(row.write_gb_s, w, 0.15),
            "{scope} write {}",
            row.write_gb_s
        );
    }
}

#[test]
fn table3_cxl_column_9634() {
    let topo = Topology::build(&PlatformSpec::epyc_9634());
    let rows = table3_column(&topo, Destination::Cxl, &EngineConfig::deterministic()).unwrap();
    let paper = [
        (CoreScope::Core, 5.4, 2.8),
        (CoreScope::Ccx, 23.6, 15.8),
        (CoreScope::Ccd, 25.0, 15.0),
        (CoreScope::Cpu, 88.1, 87.7),
    ];
    for (row, (scope, r, w)) in rows.iter().zip(paper) {
        assert!(
            within(row.read_gb_s, r, 0.13),
            "{scope} cxl read {} vs {r}",
            row.read_gb_s
        );
        assert!(
            within(row.write_gb_s, w, 0.18),
            "{scope} cxl write {} vs {w}",
            row.write_gb_s
        );
    }
}

#[test]
fn paper_claim_cxl_is_slower_than_dimm_by_the_reported_factors() {
    // §3.3: single core 63.0%/22.2% lower read/write... actually the paper
    // reports CXL below local DIMM by 63.0/22.2% (core), 33.0/33.6% (CCD),
    // 78.1/69.3% (CPU) — check the ordering and rough factors for reads.
    let topo = Topology::build(&PlatformSpec::epyc_9634());
    let cfg = EngineConfig::deterministic();
    let dimm = table3_column(&topo, Destination::Dimms, &cfg).unwrap();
    let cxl = table3_column(&topo, Destination::Cxl, &cfg).unwrap();
    for (d, c) in dimm.iter().zip(&cxl) {
        assert!(
            c.read_gb_s < d.read_gb_s,
            "{}: CXL read {} not below DIMM {}",
            d.scope,
            c.read_gb_s,
            d.read_gb_s
        );
    }
    // Single-core: ~63% lower.
    let drop = 1.0 - cxl[0].read_gb_s / dimm[0].read_gb_s;
    assert!((0.5..0.75).contains(&drop), "core-level CXL drop {drop}");
    // Socket: ~78% lower.
    let drop = 1.0 - cxl[3].read_gb_s / dimm[3].read_gb_s;
    assert!((0.68..0.85).contains(&drop), "socket-level CXL drop {drop}");
}
