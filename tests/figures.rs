//! Shape assertions for Figures 3–6: the qualitative claims of §3.4 and
//! §3.5 hold end-to-end.

use server_chiplet_networking::fluid::{
    harvest_time_ms, DemandSchedule, FluidFlowSpec, FluidLink, FluidSim,
};
use server_chiplet_networking::mem::OpKind;
use server_chiplet_networking::membench::compete::{competing_flows, CompeteLink};
use server_chiplet_networking::membench::interference::{interference_sweep, InterferenceDomain};
use server_chiplet_networking::membench::loaded::{loaded_latency_sweep, LinkScenario};
use server_chiplet_networking::net::engine::EngineConfig;
use server_chiplet_networking::sim::{Bandwidth, SimDuration, SimTime};
use server_chiplet_networking::topology::{PlatformSpec, Topology};

#[test]
fn fig3_gmi_knee_and_tail_7302() {
    // Paper: reads 123.7/470 ns (avg/P999) at low load rising to
    // 172.5/800 ns near saturation.
    let topo = Topology::build(&PlatformSpec::epyc_7302());
    let pts = loaded_latency_sweep(
        &topo,
        LinkScenario::Gmi,
        OpKind::Read,
        &[0.15, 1.0],
        &EngineConfig::default(),
    );
    let (low, high) = (&pts[0], &pts[1]);
    assert!(
        (130.0..160.0).contains(&low.mean_ns),
        "low avg {}",
        low.mean_ns
    );
    assert!(
        (380.0..620.0).contains(&low.p999_ns),
        "low tail {}",
        low.p999_ns
    );
    // The knee: mean and tail both rise toward saturation. The magnitude is
    // gentler than the paper's 172.5/800 ns (see EXPERIMENTS.md: the
    // closed-loop in-flight budget bounds queue depth).
    assert!(
        high.mean_ns > low.mean_ns + 8.0,
        "knee missing: {}",
        high.mean_ns
    );
    assert!(
        high.p999_ns > low.p999_ns + 10.0,
        "tail rise missing: {}",
        high.p999_ns
    );
}

#[test]
fn fig3_if_7302_flatter_than_9634() {
    // Paper: the 7302 provisions enough IF bandwidth (flat latency); the
    // 9634's seven-core chiplet sees a clear rise near max bandwidth.
    let cfg = EngineConfig::deterministic();
    let rel_rise = |spec: PlatformSpec| {
        let topo = Topology::build(&spec);
        let pts = loaded_latency_sweep(
            &topo,
            LinkScenario::IfIntraCc,
            OpKind::Read,
            &[0.2, 1.0],
            &cfg,
        );
        pts[1].mean_ns / pts[0].mean_ns
    };
    let r7302 = rel_rise(PlatformSpec::epyc_7302());
    let r9634 = rel_rise(PlatformSpec::epyc_9634());
    assert!(
        r9634 > r7302,
        "9634 IF should be less provisioned: rise {r9634:.3} vs {r7302:.3}"
    );
}

#[test]
fn fig4_all_four_cases_on_gmi_9634() {
    let topo = Topology::build(&PlatformSpec::epyc_9634());
    let cfg = EngineConfig::deterministic();
    let c = CompeteLink::Gmi.capacity_gb_s(&topo);

    // Case 1: under-subscription — both satisfied.
    let out = competing_flows(
        &topo,
        CompeteLink::Gmi,
        Some(0.3 * c),
        Some(0.4 * c),
        OpKind::Read,
        &cfg,
    );
    assert!(
        out.achieved0_gb_s > 0.27 * c && out.achieved1_gb_s > 0.36 * c,
        "{out:?}"
    );

    // Case 3: equal demands — equal split.
    let out = competing_flows(
        &topo,
        CompeteLink::Gmi,
        Some(0.75 * c),
        Some(0.75 * c),
        OpKind::Read,
        &cfg,
    );
    assert!(
        (out.achieved0_gb_s / out.achieved1_gb_s - 1.0).abs() < 0.15,
        "{out:?}"
    );

    // Case 4: both above equal share — the aggressive flow takes more.
    let out = competing_flows(
        &topo,
        CompeteLink::Gmi,
        Some(0.95 * c),
        Some(0.6 * c),
        OpKind::Read,
        &cfg,
    );
    assert!(out.achieved0_gb_s > c / 2.0, "{out:?}");
    assert!(out.achieved0_gb_s > out.achieved1_gb_s * 1.15, "{out:?}");

    // Case 2: one small — the big flow exceeds its equal share.
    let out = competing_flows(
        &topo,
        CompeteLink::Gmi,
        Some(0.25 * c),
        Some(0.9 * c),
        OpKind::Read,
        &cfg,
    );
    assert!(out.achieved1_gb_s > c / 2.0, "{out:?}");
}

#[test]
fn fig5_harvest_timescales() {
    let run = |link: FluidLink| {
        let cap = link.capacity.as_gb_per_s();
        let mut sim = FluidSim::new(vec![link]);
        sim.add_flow(FluidFlowSpec {
            name: "f0".into(),
            demand: DemandSchedule::piecewise(vec![
                (SimTime::ZERO, None),
                (
                    SimTime::from_secs(2),
                    Some(Bandwidth::from_gb_per_s(cap / 2.0 - 2.0)),
                ),
                (SimTime::from_secs(3), None),
            ]),
            links: vec![0],
        });
        sim.add_flow(FluidFlowSpec {
            name: "f1".into(),
            demand: DemandSchedule::constant(None),
            links: vec![0],
        });
        let traces = sim.run(
            SimTime::from_secs(4),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
            11,
        );
        harvest_time_ms(
            &traces[1],
            SimTime::from_secs(2),
            Bandwidth::from_gb_per_s(cap / 2.0 + 1.9),
        )
        .expect("harvest completes")
    };
    let t_if = run(FluidLink::if_9634());
    let t_plink = run(FluidLink::plink_9634());
    // Paper: ~100 ms on the IF, ~500 ms on the P-Link.
    assert!((40..=220).contains(&t_if), "IF harvest {t_if} ms");
    assert!(
        (300..=900).contains(&t_plink),
        "P-Link harvest {t_plink} ms"
    );
    assert!(t_plink > t_if * 2, "ordering: {t_plink} vs {t_if}");
}

#[test]
fn fig6_interference_structure_9634() {
    let topo = Topology::build(&PlatformSpec::epyc_9634());
    let cfg = EngineConfig::deterministic();

    // Within a chiplet: a saturating read background squeezes both a read
    // and a write frontend (shared direction + shared limiter tokens)...
    for fg in [OpKind::Read, OpKind::WriteNonTemporal] {
        let pts = interference_sweep(
            &topo,
            InterferenceDomain::IfIntraCc,
            fg,
            OpKind::Read,
            &[0.0, f64::INFINITY],
            &cfg,
        );
        assert!(
            pts[1].fg_achieved_gb_s < pts[0].fg_achieved_gb_s * 0.92,
            "intra-CC {fg:?} frontend not squeezed: {pts:?}"
        );
    }
    // ...while a saturating WRITE background barely touches a read
    // frontend (opposite directions, paper's asymmetry).
    let pts = interference_sweep(
        &topo,
        InterferenceDomain::IfIntraCc,
        OpKind::Read,
        OpKind::WriteNonTemporal,
        &[0.0, f64::INFINITY],
        &cfg,
    );
    assert!(
        pts[1].fg_achieved_gb_s > pts[0].fg_achieved_gb_s * 0.9,
        "write background should spare reads: {pts:?}"
    );

    // Across chiplets the write flow is rarely affected (paper), while
    // reads contend on the shared segment.
    let pts = interference_sweep(
        &topo,
        InterferenceDomain::IfInterCc,
        OpKind::WriteNonTemporal,
        OpKind::Read,
        &[0.0, f64::INFINITY],
        &cfg,
    );
    assert!(
        pts[1].fg_achieved_gb_s > pts[0].fg_achieved_gb_s * 0.9,
        "cross-CC write frontend should be spared: {pts:?}"
    );
    let pts = interference_sweep(
        &topo,
        InterferenceDomain::IfInterCc,
        OpKind::Read,
        OpKind::Read,
        &[0.0, f64::INFINITY],
        &cfg,
    );
    assert!(
        pts[1].fg_achieved_gb_s < pts[0].fg_achieved_gb_s * 0.7,
        "cross-CC reads should contend: {pts:?}"
    );
}
