//! Property-based tests for the discrete-event core.

use chiplet_sim::stats::{LatencyHistogram, Summary};
use chiplet_sim::{Bandwidth, ByteSize, EventQueue, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events pop in nondecreasing time order regardless of push order, and
    /// events with equal timestamps pop in push (FIFO) order.
    #[test]
    fn event_queue_total_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut last_idx_at_time: Option<usize> = None;
        while let Some(e) = q.pop() {
            prop_assert!(e.at >= last_time);
            if e.at == last_time {
                if let Some(prev) = last_idx_at_time {
                    // FIFO among equal timestamps: push index increases.
                    prop_assert!(e.payload > prev);
                }
            }
            last_idx_at_time = Some(e.payload);
            last_time = e.at;
        }
    }

    /// Every pushed event is popped exactly once.
    #[test]
    fn event_queue_conserves_events(times in proptest::collection::vec(0u64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut seen = vec![false; times.len()];
        while let Some(e) = q.pop() {
            prop_assert!(!seen[e.payload], "event popped twice");
            seen[e.payload] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Histogram quantiles bracket the exact order statistic: never below it,
    /// and within one bucket width (≤ ~7% relative for values ≥ 32) above.
    #[test]
    fn histogram_quantile_brackets_exact(
        mut values in proptest::collection::vec(1u64..10_000_000, 10..500),
        qs in proptest::collection::vec(0.01f64..1.0, 1..8),
    ) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(SimDuration::from_nanos(v));
        }
        values.sort_unstable();
        for q in qs {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1);
            let exact = values[rank - 1];
            let got = h.quantile(q).unwrap().as_nanos();
            prop_assert!(got >= exact, "q={q}: got {got} below exact {exact}");
            let bound = (exact as f64 * 1.07) as u64 + 1;
            prop_assert!(got <= bound.max(exact + 32),
                "q={q}: got {got} too far above exact {exact}");
        }
    }

    /// Histogram mean/min/max are exact.
    #[test]
    fn histogram_scalar_stats_exact(values in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(SimDuration::from_nanos(v));
        }
        let sum: u64 = values.iter().sum();
        prop_assert_eq!(h.mean().unwrap().as_nanos(), sum / values.len() as u64);
        prop_assert_eq!(h.min().unwrap().as_nanos(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max().unwrap().as_nanos(), *values.iter().max().unwrap());
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    /// Merging two histograms is equivalent to recording all samples in one.
    #[test]
    fn histogram_merge_equivalence(
        a in proptest::collection::vec(0u64..100_000, 0..100),
        b in proptest::collection::vec(0u64..100_000, 0..100),
    ) {
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for &v in &a {
            ha.record(SimDuration::from_nanos(v));
            whole.record(SimDuration::from_nanos(v));
        }
        for &v in &b {
            hb.record(SimDuration::from_nanos(v));
            whole.record(SimDuration::from_nanos(v));
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), whole.count());
        if !whole.is_empty() {
            prop_assert_eq!(ha.quantile(0.5), whole.quantile(0.5));
            prop_assert_eq!(ha.quantile(0.999), whole.quantile(0.999));
            prop_assert_eq!(ha.mean(), whole.mean());
        }
    }

    /// Welford summary matches the naive two-pass computation.
    #[test]
    fn summary_matches_naive(values in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut s = Summary::new();
        values.iter().for_each(|&x| s.record(x));
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() <= 1e-4 * (1.0 + var.abs()));
    }

    /// service_time is inverse to bandwidth: transferring N bytes at rate R
    /// then dividing N by the service time recovers ~R.
    #[test]
    fn bandwidth_service_time_inverse(gb in 0.5f64..1000.0, kib in 1u64..10_000) {
        let bw = Bandwidth::from_gb_per_s(gb);
        let size = ByteSize::from_kib(kib);
        let t = bw.service_time(size);
        prop_assert!(!t.is_zero());
        let recovered = size.as_bytes() as f64 / t.as_secs_f64() / 1e9;
        // Rounding to whole ns costs at most 1 ns of error.
        let tolerance = gb * 1.0 / t.as_nanos_f64() + 1e-9;
        prop_assert!((recovered - gb).abs() <= gb * tolerance + 0.01,
            "recovered {recovered} vs {gb}");
    }
}
