//! Simulator self-profiling: where does the *wall* time of a run go?
//!
//! Parallelizing the DES core (ROADMAP item 3) needs a baseline answer to
//! "which engine phase dominates" before any speculative threading is worth
//! attempting. [`PhaseProfiler`] is that instrument: a set of named,
//! embedder-registered phases ("issue", "stage", "policy", …) accumulating
//! wall-clock time and call counts, cheap enough to leave compiled into
//! every hot loop.
//!
//! The disabled path costs one predictable branch per phase boundary:
//! [`PhaseProfiler::start`] returns `None` without reading the clock and
//! [`PhaseProfiler::record`] discards it, so a `PhaseProfiler::disabled()`
//! in the event loop is free in practice (the acceptance gate pins the
//! overhead below 1%). Everything here measures **wall** time, never sim
//! time — reports are execution-dependent and must only ever be exported
//! through *volatile* metric families.

use std::time::Instant;

use crate::metrics::MetricsSink;

/// A dense identifier for a registered phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhaseId(u16);

/// Accumulated wall time and call count for one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// The phase's registered name.
    pub name: &'static str,
    /// Times the phase was entered.
    pub calls: u64,
    /// Total wall time spent in the phase, seconds.
    pub seconds: f64,
}

/// Scoped wall-clock phase timers with a near-free disabled path.
///
/// Register phases once (`register`), then bracket each occurrence with
/// [`PhaseProfiler::start`] / [`PhaseProfiler::record`]. When the profiler
/// is disabled both calls compile down to a branch on a bool — no clock
/// reads, no arithmetic — so embedders keep the instrumentation in place
/// unconditionally.
#[derive(Debug, Clone)]
pub struct PhaseProfiler {
    enabled: bool,
    names: Vec<&'static str>,
    calls: Vec<u64>,
    nanos: Vec<u64>,
    born: Instant,
}

impl PhaseProfiler {
    /// A profiler that measures nothing; `start` never reads the clock.
    pub fn disabled() -> Self {
        PhaseProfiler {
            enabled: false,
            names: Vec::new(),
            calls: Vec::new(),
            nanos: Vec::new(),
            born: Instant::now(),
        }
    }

    /// A live profiler; wall time is measured from this call.
    pub fn enabled() -> Self {
        PhaseProfiler {
            enabled: true,
            ..Self::disabled()
        }
    }

    /// Whether the profiler is measuring.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Registers a phase name, returning its dense id. Registration is
    /// cheap but not deduplicating; call once per phase at setup.
    pub fn register(&mut self, name: &'static str) -> PhaseId {
        let id = PhaseId(self.names.len() as u16);
        self.names.push(name);
        self.calls.push(0);
        self.nanos.push(0);
        id
    }

    /// Opens a phase occurrence. `None` when disabled — the clock is not
    /// read at all.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes a phase occurrence opened by [`PhaseProfiler::start`].
    #[inline]
    pub fn record(&mut self, phase: PhaseId, started: Option<Instant>) {
        if let Some(t0) = started {
            self.calls[phase.0 as usize] += 1;
            self.nanos[phase.0 as usize] += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Credits the time since `*mark` to `phase` and advances the mark,
    /// reading the clock once. For tight event loops: seed the mark with
    /// [`PhaseProfiler::start`] before the loop and `lap` after every
    /// handler — half the clock reads of a `start`/`record` pair per
    /// event, with the inter-handler gap (queue pop, dispatch) attributed
    /// to the phase that follows it. No-op when disabled (the mark stays
    /// `None`).
    #[inline]
    pub fn lap(&mut self, phase: PhaseId, mark: &mut Option<Instant>) {
        if let Some(prev) = *mark {
            let now = Instant::now();
            self.calls[phase.0 as usize] += 1;
            self.nanos[phase.0 as usize] += now.duration_since(prev).as_nanos() as u64;
            *mark = Some(now);
        }
    }

    /// Snapshots the accumulated stats. `wall_seconds` covers creation to
    /// this call, so phase coverage (`Σ seconds / wall`) is meaningful when
    /// the profiler is created right before the instrumented region.
    pub fn report(&self) -> PhaseReport {
        let phases = self
            .names
            .iter()
            .zip(&self.calls)
            .zip(&self.nanos)
            .map(|((&name, &calls), &nanos)| PhaseStat {
                name,
                calls,
                seconds: nanos as f64 * 1e-9,
            })
            .collect();
        PhaseReport {
            phases,
            wall_seconds: self.born.elapsed().as_secs_f64(),
        }
    }
}

/// A snapshot of a [`PhaseProfiler`]: per-phase stats plus the wall time
/// the profiler was alive.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Per-phase stats, in registration order.
    pub phases: Vec<PhaseStat>,
    /// Wall seconds from profiler creation to the report.
    pub wall_seconds: f64,
}

impl PhaseReport {
    /// Total wall time attributed to any phase, seconds.
    pub fn accounted_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.seconds).sum()
    }

    /// Fraction of the wall time covered by the phases (0 when no wall
    /// time elapsed).
    pub fn coverage(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.accounted_seconds() / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Merges another report's phases into this one (matching by name;
    /// unmatched phases are appended) and extends the wall time. Used to
    /// fold an engine-level report into a CLI-level one.
    pub fn absorb(&mut self, other: &PhaseReport) {
        for p in &other.phases {
            match self.phases.iter_mut().find(|q| q.name == p.name) {
                Some(q) => {
                    q.calls += p.calls;
                    q.seconds += p.seconds;
                }
                None => self.phases.push(p.clone()),
            }
        }
    }

    /// A fixed-width text table: one row per phase (sorted by descending
    /// time), the share of measured wall time, and a coverage footer.
    pub fn table(&self) -> String {
        use std::fmt::Write;
        let mut rows: Vec<&PhaseStat> = self.phases.iter().filter(|p| p.calls > 0).collect();
        rows.sort_by(|a, b| b.seconds.total_cmp(&a.seconds).then(a.name.cmp(b.name)));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<18} {:>12} {:>14} {:>8}",
            "phase", "calls", "seconds", "share"
        );
        for p in rows {
            let share = if self.wall_seconds > 0.0 {
                p.seconds / self.wall_seconds
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<18} {:>12} {:>14.6} {:>7.1}%",
                p.name,
                p.calls,
                p.seconds,
                share * 100.0
            );
        }
        let _ = writeln!(
            out,
            "wall: {:.6} s  accounted: {:.6} s  coverage: {:.1}%",
            self.wall_seconds,
            self.accounted_seconds(),
            self.coverage() * 100.0
        );
        out
    }

    /// Emits the report into a metrics sink as `sim_phase_seconds` /
    /// `sim_phase_calls`, labelled by phase. Wall-clock values are
    /// execution-dependent: collecting registries must describe these
    /// families as **volatile** so default OpenMetrics dumps stay
    /// deterministic.
    pub fn emit(&self, sink: &mut dyn MetricsSink) {
        for p in &self.phases {
            if p.calls == 0 {
                continue;
            }
            let labels = [("phase", p.name)];
            sink.counter_add("sim_phase_seconds", &labels, p.seconds);
            sink.counter_add("sim_phase_calls", &labels, p.calls as f64);
        }
        sink.gauge_set("sim_phase_wall_seconds", &[], self.wall_seconds);
    }
}

/// A deterministic fixed-bucket histogram for small structural counts
/// (event-queue depths, events per epoch). Power-of-two buckets keep it
/// allocation-free and seed-independent, so its contents — unlike the wall
/// timers above — are identical run-to-run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepthHistogram {
    /// `buckets[i]` counts observations in `[2^i, 2^(i+1))` (bucket 0 also
    /// holds zeros).
    buckets: [u64; 32],
    count: u64,
    max: u64,
}

impl DepthHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let b = (64 - v.leading_zeros()).saturating_sub(1).min(31);
        self.buckets[b as usize] += 1;
        self.count += 1;
        self.max = self.max.max(v);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest observation recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The non-empty buckets as `(lower_bound, count)` pairs, ascending.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
            .collect()
    }

    /// Emits the histogram into a sink as exact per-bucket counters
    /// (`{family}_bucket{ge="<lower>"}`) plus `{family}_max` and
    /// `{family}_count` gauges. The bucket layout is fixed, so the
    /// emission is deterministic whenever the recorded quantity is.
    pub fn emit(&self, sink: &mut dyn MetricsSink, family: &str) {
        for (lo, n) in self.buckets() {
            let lo_s = lo.to_string();
            sink.counter_add(&format!("{family}_bucket"), &[("ge", &lo_s)], n as f64);
        }
        sink.gauge_set(&format!("{family}_max"), &[], self.max as f64);
        sink.gauge_set(&format!("{family}_count"), &[], self.count as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn disabled_profiler_measures_nothing() {
        let mut p = PhaseProfiler::disabled();
        let ph = p.register("work");
        let t0 = p.start();
        assert!(t0.is_none());
        p.record(ph, t0);
        let r = p.report();
        assert_eq!(r.phases[0].calls, 0);
        assert_eq!(r.phases[0].seconds, 0.0);
    }

    #[test]
    fn enabled_profiler_accumulates_calls_and_time() {
        let mut p = PhaseProfiler::enabled();
        let a = p.register("a");
        let b = p.register("b");
        for _ in 0..3 {
            let t0 = p.start();
            std::hint::black_box(17u64.wrapping_mul(31));
            p.record(a, t0);
        }
        let t0 = p.start();
        p.record(b, t0);
        let r = p.report();
        assert_eq!(r.phases[0].name, "a");
        assert_eq!(r.phases[0].calls, 3);
        assert_eq!(r.phases[1].calls, 1);
        assert!(r.wall_seconds >= r.accounted_seconds() * 0.0);
        assert!(r.table().contains("coverage"));
    }

    #[test]
    fn absorb_merges_by_name_and_appends_new() {
        let mut a = PhaseReport {
            phases: vec![PhaseStat {
                name: "issue",
                calls: 2,
                seconds: 1.0,
            }],
            wall_seconds: 2.0,
        };
        let b = PhaseReport {
            phases: vec![
                PhaseStat {
                    name: "issue",
                    calls: 1,
                    seconds: 0.5,
                },
                PhaseStat {
                    name: "stage",
                    calls: 4,
                    seconds: 0.25,
                },
            ],
            wall_seconds: 1.0,
        };
        a.absorb(&b);
        assert_eq!(a.phases.len(), 2);
        assert_eq!(a.phases[0].calls, 3);
        assert!((a.phases[0].seconds - 1.5).abs() < 1e-12);
        assert_eq!(a.phases[1].name, "stage");
    }

    #[test]
    fn depth_histogram_buckets_by_power_of_two() {
        let mut h = DepthHistogram::new();
        for v in [0, 1, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.max(), 1000);
        let b = h.buckets();
        // 0 and 1 share bucket 0; 2..3 bucket 1; 4..7 bucket 2; 8 bucket 3.
        assert_eq!(b[0], (0, 3));
        assert_eq!(b[1], (2, 2));
        assert_eq!(b[2], (4, 2));
        assert_eq!(b[3], (8, 1));
        assert_eq!(b[4], (512, 1));
    }

    #[test]
    fn depth_histogram_emits_bucket_counters() {
        #[derive(Default)]
        struct Tally(Vec<(String, f64)>);
        impl MetricsSink for Tally {
            fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
                self.0.push((format!("{name}{labels:?}"), v));
            }
            fn gauge_set(&mut self, name: &str, _labels: &[(&str, &str)], v: f64) {
                self.0.push((name.to_string(), v));
            }
            fn observe(&mut self, _name: &str, _labels: &[(&str, &str)], _at: SimTime, _v: f64) {}
        }
        let mut h = DepthHistogram::new();
        for v in [1, 2, 100] {
            h.record(v);
        }
        let mut sink = Tally::default();
        h.emit(&mut sink, "queue_depth");
        assert!(sink
            .0
            .iter()
            .any(|(k, v)| k == "queue_depth_bucket[(\"ge\", \"64\")]" && *v == 1.0));
        assert!(sink
            .0
            .iter()
            .any(|(k, v)| k == "queue_depth_max" && *v == 100.0));
        assert!(sink
            .0
            .iter()
            .any(|(k, v)| k == "queue_depth_count" && *v == 3.0));
    }

    #[test]
    fn phase_report_emits_volatile_families() {
        #[derive(Default)]
        struct Tally(Vec<String>);
        impl MetricsSink for Tally {
            fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], _v: f64) {
                self.0.push(format!("{name}{labels:?}"));
            }
            fn gauge_set(&mut self, name: &str, _labels: &[(&str, &str)], _v: f64) {
                self.0.push(name.to_string());
            }
            fn observe(&mut self, name: &str, _labels: &[(&str, &str)], _at: SimTime, _v: f64) {
                self.0.push(name.to_string());
            }
        }
        let mut p = PhaseProfiler::enabled();
        let ph = p.register("issue");
        let t0 = p.start();
        p.record(ph, t0);
        let mut sink = Tally::default();
        p.report().emit(&mut sink);
        assert!(sink.0.iter().any(|s| s.starts_with("sim_phase_seconds")));
        assert!(sink.0.iter().any(|s| s.contains("sim_phase_wall_seconds")));
    }
}
