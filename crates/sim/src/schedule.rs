//! Piecewise-constant demand schedules.
//!
//! A [`DemandSchedule`] describes how much bandwidth a flow *wants* over
//! time: a sorted list of `(from, demand)` pieces where `None` means
//! unthrottled. Both the transaction-level engine and the fluid engine
//! evaluate the same schedule type, so a scenario written once drives
//! either backend.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;
use crate::units::Bandwidth;

/// A piecewise-constant demand schedule.
///
/// Pieces are `(from, demand)` with `None` = unthrottled; the schedule
/// holds each piece until the next one starts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandSchedule {
    pieces: Vec<(SimTime, Option<Bandwidth>)>,
}

impl DemandSchedule {
    /// A constant schedule.
    pub fn constant(demand: Option<Bandwidth>) -> Self {
        DemandSchedule {
            pieces: vec![(SimTime::ZERO, demand)],
        }
    }

    /// Builds from `(from, demand)` pieces; they must start at time zero
    /// and be strictly increasing in time.
    ///
    /// # Panics
    ///
    /// Panics on an empty, unsorted, or non-zero-starting schedule.
    pub fn piecewise(pieces: Vec<(SimTime, Option<Bandwidth>)>) -> Self {
        assert!(!pieces.is_empty(), "schedule needs at least one piece");
        assert_eq!(pieces[0].0, SimTime::ZERO, "schedule must start at zero");
        assert!(
            pieces.windows(2).all(|w| w[0].0 < w[1].0),
            "schedule pieces must be strictly increasing"
        );
        DemandSchedule { pieces }
    }

    /// The demand at time `t`.
    pub fn at(&self, t: SimTime) -> Option<Bandwidth> {
        self.pieces
            .iter()
            .rev()
            .find(|(from, _)| *from <= t)
            .map(|(_, d)| *d)
            .expect("schedule covers time zero")
    }

    /// The first piece boundary strictly after `t`, if any.
    pub fn next_change_after(&self, t: SimTime) -> Option<SimTime> {
        self.pieces.iter().map(|(from, _)| *from).find(|&f| f > t)
    }

    /// The largest demand across all pieces, or `None` if any piece is
    /// unthrottled.
    pub fn peak(&self) -> Option<Bandwidth> {
        let mut best = Bandwidth::ZERO;
        for (_, d) in &self.pieces {
            match d {
                None => return None,
                Some(b) => {
                    if *b > best {
                        best = *b;
                    }
                }
            }
        }
        Some(best)
    }

    /// True when the schedule has a single piece (demand never changes).
    pub fn is_constant(&self) -> bool {
        self.pieces.len() == 1
    }

    /// The raw `(from, demand)` pieces, in time order.
    pub fn pieces(&self) -> &[(SimTime, Option<Bandwidth>)] {
        &self.pieces
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gb(x: f64) -> Bandwidth {
        Bandwidth::from_gb_per_s(x)
    }

    #[test]
    fn schedule_lookup() {
        let s = DemandSchedule::piecewise(vec![
            (SimTime::ZERO, None),
            (SimTime::from_secs(1), Some(gb(5.0))),
            (SimTime::from_secs(2), None),
        ]);
        assert_eq!(s.at(SimTime::from_millis(500)), None);
        assert_eq!(s.at(SimTime::from_millis(1500)), Some(gb(5.0)));
        assert_eq!(s.at(SimTime::from_secs(3)), None);
    }

    #[test]
    #[should_panic(expected = "must start at zero")]
    fn schedule_must_start_at_zero() {
        let _ = DemandSchedule::piecewise(vec![(SimTime::from_secs(1), None)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn schedule_must_be_sorted() {
        let _ = DemandSchedule::piecewise(vec![
            (SimTime::ZERO, None),
            (SimTime::from_secs(2), Some(gb(1.0))),
            (SimTime::from_secs(1), None),
        ]);
    }

    #[test]
    fn next_change_walks_boundaries() {
        let s = DemandSchedule::piecewise(vec![
            (SimTime::ZERO, None),
            (SimTime::from_secs(1), Some(gb(5.0))),
            (SimTime::from_secs(2), None),
        ]);
        assert_eq!(
            s.next_change_after(SimTime::ZERO),
            Some(SimTime::from_secs(1))
        );
        assert_eq!(
            s.next_change_after(SimTime::from_millis(1000)),
            Some(SimTime::from_secs(2))
        );
        assert_eq!(s.next_change_after(SimTime::from_secs(2)), None);
        assert!(DemandSchedule::constant(None)
            .next_change_after(SimTime::ZERO)
            .is_none());
    }

    #[test]
    fn peak_and_constant() {
        assert_eq!(DemandSchedule::constant(None).peak(), None);
        assert!(DemandSchedule::constant(None).is_constant());
        let s = DemandSchedule::piecewise(vec![
            (SimTime::ZERO, Some(gb(2.0))),
            (SimTime::from_secs(1), Some(gb(7.0))),
            (SimTime::from_secs(2), Some(gb(3.0))),
        ]);
        assert_eq!(s.peak(), Some(gb(7.0)));
        assert!(!s.is_constant());
        let unbounded = DemandSchedule::piecewise(vec![
            (SimTime::ZERO, Some(gb(2.0))),
            (SimTime::from_secs(1), None),
        ]);
        assert_eq!(unbounded.peak(), None);
    }

    #[test]
    fn round_trips_through_json_value() {
        let s = DemandSchedule::piecewise(vec![
            (SimTime::ZERO, Some(gb(2.0))),
            (SimTime::from_secs(1), None),
        ]);
        let back = DemandSchedule::from_value(&s.to_value()).unwrap();
        assert_eq!(s, back);
    }
}
