//! Deterministic random numbers.
//!
//! Every stochastic choice in a simulation (random access patterns, jittered
//! inter-arrival gaps) flows through [`DetRng`], a thin wrapper around a
//! seedable PRNG. Two runs with the same seed produce the same event stream,
//! which the integration suite relies on (`same seed ⇒ identical telemetry`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic, seedable random-number generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
    seed: u64,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator. Children with distinct labels
    /// are statistically independent; the derivation is itself deterministic.
    pub fn derive(&self, label: u64) -> DetRng {
        // SplitMix64-style mixing of (seed, label) into a child seed.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(label.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        DetRng::seed_from_u64(z)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a positive bound");
        self.inner.gen_range(0..bound)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range requires lo < hi");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Exponentially distributed value with the given mean, for Poisson
    /// request arrivals. Returns 0 for non-positive means.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse CDF; guard the log away from 0.
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_below(1_000_000), b.next_below(1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..32).map(|_| a.next_below(u64::MAX)).collect();
        let sb: Vec<u64> = (0..32).map(|_| b.next_below(u64::MAX)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn derive_is_deterministic_and_label_sensitive() {
        let root = DetRng::seed_from_u64(99);
        let mut c1 = root.derive(0);
        let mut c1_again = root.derive(0);
        let mut c2 = root.derive(1);
        assert_eq!(c1.next_below(1 << 40), c1_again.next_below(1 << 40));
        // Overwhelmingly likely to differ.
        let a: Vec<u64> = (0..16).map(|_| c1.next_below(1 << 40)).collect();
        let b: Vec<u64> = (0..16).map(|_| c2.next_below(1 << 40)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn bounds_respected() {
        let mut r = DetRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
            let v = r.range(5, 10);
            assert!((5..10).contains(&v));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seed_from_u64(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-3.0));
        assert!(r.chance(17.0));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = DetRng::seed_from_u64(5);
        let n = 200_000;
        let mean = 50.0;
        let total: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let sample_mean = total / n as f64;
        assert!(
            (sample_mean - mean).abs() < 1.0,
            "sample mean {sample_mean} too far from {mean}"
        );
        assert_eq!(r.exponential(0.0), 0.0);
        assert_eq!(r.exponential(-1.0), 0.0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..64).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }
}
