//! Data-size and bandwidth units.
//!
//! The paper reports bandwidth in GB/s (decimal gigabytes) and sizes in binary
//! units (KiB caches, 64 B cachelines). These newtypes keep the two unit
//! systems from being confused and centralize the bandwidth ⇄ service-time
//! conversion used by every link model.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// A data size in bytes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);
    /// A 64-byte cacheline, the natural transfer unit of the coherent fabric.
    pub const CACHELINE: ByteSize = ByteSize(64);

    /// Constructs from raw bytes.
    pub const fn from_bytes(b: u64) -> Self {
        ByteSize(b)
    }

    /// Constructs from binary kilobytes.
    pub const fn from_kib(k: u64) -> Self {
        ByteSize(k * 1024)
    }

    /// Constructs from binary megabytes.
    pub const fn from_mib(m: u64) -> Self {
        ByteSize(m * 1024 * 1024)
    }

    /// Constructs from binary gigabytes.
    pub const fn from_gib(g: u64) -> Self {
        ByteSize(g * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Size in fractional KiB.
    pub fn as_kib_f64(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// Size in fractional MiB.
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        *self = *self + rhs;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1 << 30 {
            write!(f, "{:.2}GiB", b as f64 / (1u64 << 30) as f64)
        } else if b >= 1 << 20 {
            write!(f, "{:.2}MiB", b as f64 / (1u64 << 20) as f64)
        } else if b >= 1 << 10 {
            write!(f, "{:.2}KiB", b as f64 / 1024.0)
        } else {
            write!(f, "{b}B")
        }
    }
}

/// A bandwidth, stored internally as bytes per second (decimal).
///
/// The paper reports GB/s = 1e9 bytes/s; [`Bandwidth::from_gb_per_s`] follows
/// that convention.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Constructs from decimal gigabytes per second (the paper's unit).
    pub fn from_gb_per_s(gb: f64) -> Self {
        Bandwidth(gb * 1e9)
    }

    /// Constructs from raw bytes per second.
    pub fn from_bytes_per_s(b: f64) -> Self {
        Bandwidth(b)
    }

    /// Bandwidth in decimal GB/s.
    pub fn as_gb_per_s(self) -> f64 {
        self.0 / 1e9
    }

    /// Bandwidth in bytes per second.
    pub fn as_bytes_per_s(self) -> f64 {
        self.0
    }

    /// Bytes transferred per nanosecond at this rate.
    pub fn bytes_per_ns(self) -> f64 {
        self.0 / 1e9
    }

    /// Service (serialization) time for `size` bytes at this rate.
    ///
    /// Returns [`SimDuration::MAX`] for zero bandwidth, which a link model
    /// treats as "never completes" — a configuration error surfaced loudly
    /// rather than a division silently producing nonsense.
    pub fn service_time(self, size: ByteSize) -> SimDuration {
        if self.0 <= 0.0 {
            return SimDuration::MAX;
        }
        SimDuration::from_nanos_f64(size.as_bytes() as f64 / self.bytes_per_ns())
    }

    /// The mean inter-arrival gap that produces this rate with `size`-byte
    /// requests. Same zero-bandwidth convention as [`Bandwidth::service_time`].
    pub fn request_interval(self, size: ByteSize) -> SimDuration {
        self.service_time(size)
    }

    /// True when this is a positive, finite rate.
    pub fn is_positive(self) -> bool {
        self.0 > 0.0 && self.0.is_finite()
    }

    /// Component-wise minimum.
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }

    /// Saturating subtraction, clamped at zero.
    pub fn saturating_sub(self, other: Bandwidth) -> Bandwidth {
        Bandwidth((self.0 - other.0).max(0.0))
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl AddAssign for Bandwidth {
    fn add_assign(&mut self, rhs: Bandwidth) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}GB/s", self.as_gb_per_s())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_size_constructors() {
        assert_eq!(ByteSize::from_kib(1).as_bytes(), 1024);
        assert_eq!(ByteSize::from_mib(1).as_bytes(), 1 << 20);
        assert_eq!(ByteSize::from_gib(1).as_bytes(), 1 << 30);
        assert_eq!(ByteSize::CACHELINE.as_bytes(), 64);
    }

    #[test]
    fn byte_size_display() {
        assert_eq!(ByteSize::from_bytes(64).to_string(), "64B");
        assert_eq!(ByteSize::from_kib(32).to_string(), "32.00KiB");
        assert_eq!(ByteSize::from_mib(128).to_string(), "128.00MiB");
    }

    #[test]
    fn service_time_for_cacheline() {
        // 64 B at 64 GB/s is exactly 1 ns.
        let bw = Bandwidth::from_gb_per_s(64.0);
        assert_eq!(
            bw.service_time(ByteSize::CACHELINE),
            SimDuration::from_nanos(1)
        );
        // 64 B at 32 GB/s is 2 ns.
        let bw = Bandwidth::from_gb_per_s(32.0);
        assert_eq!(
            bw.service_time(ByteSize::CACHELINE),
            SimDuration::from_nanos(2)
        );
    }

    #[test]
    fn zero_bandwidth_never_completes() {
        assert_eq!(
            Bandwidth::ZERO.service_time(ByteSize::CACHELINE),
            SimDuration::MAX
        );
        assert!(!Bandwidth::ZERO.is_positive());
    }

    #[test]
    fn bandwidth_round_trip() {
        let bw = Bandwidth::from_gb_per_s(25.1);
        assert!((bw.as_gb_per_s() - 25.1).abs() < 1e-12);
        assert!((bw.bytes_per_ns() - 25.1).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_arithmetic() {
        let a = Bandwidth::from_gb_per_s(10.0);
        let b = Bandwidth::from_gb_per_s(4.0);
        assert!(((a + b).as_gb_per_s() - 14.0).abs() < 1e-12);
        assert!((a.saturating_sub(b).as_gb_per_s() - 6.0).abs() < 1e-12);
        assert_eq!(b.saturating_sub(a), Bandwidth::ZERO);
        assert_eq!(a.min(b), b);
    }
}
