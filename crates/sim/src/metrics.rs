//! The metrics-producer interface.
//!
//! Every engine in the workspace reports runtime telemetry through
//! [`MetricsSink`]: named counters, gauges, and sim-time-stamped
//! observations with label sets. The trait lives in this domain-free crate
//! so producers below `chiplet_net` (the fluid engine, future NoC models)
//! can be instrumented without a dependency on the registry that collects
//! the samples — `chiplet_net::metrics::MetricsRegistry` implements it.
//!
//! Timestamps are **simulated** time, never wall clock: a sink may window
//! observations at fixed sim-time boundaries and stay deterministic for a
//! given seed.

use crate::time::SimTime;

/// The kind of series a [`SeriesHandle`] resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// A monotone total.
    Counter,
    /// A last-value sample.
    Gauge,
    /// A quantile-sketch distribution.
    Histogram,
}

/// An opaque, sink-assigned dense series identifier.
///
/// Hot-path producers resolve `(kind, name, labels)` once via
/// [`MetricsSink::series_handle`] and record through the handle thereafter,
/// skipping the per-sample name hashing and label-set allocation of the
/// string methods. Handles are only meaningful to the sink that issued
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeriesHandle(pub u32);

/// A consumer of metric samples.
///
/// Label slices are borrowed `(key, value)` pairs; implementations must
/// treat two label sets with the same pairs in any order as the same
/// series. Names follow Prometheus conventions (`snake_case`, unit
/// suffix); counter families are exposed with an `_total` sample suffix by
/// the OpenMetrics encoder, so the name itself carries no suffix.
///
/// # Interned series handles
///
/// Sinks *may* additionally support dense handles: resolve a series once
/// with [`MetricsSink::series_handle`], then record through the `*_handle`
/// methods. The default implementation returns `None` — producers must
/// fall back to the string methods — so plain sinks (test tallies,
/// [`NullSink`]) need not change. A sink that returns `Some` from
/// `series_handle` **must** override every `*_handle` record method; the
/// defaults drop samples. Producers should resolve handles lazily, at
/// first sample, so a sink that creates series on first touch observes the
/// same creation order and set as with the string methods.
pub trait MetricsSink {
    /// Adds `v` (≥ 0) to a counter series.
    fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], v: f64);

    /// Adds `v` to a counter series, attributing it to the sim-time window
    /// containing `at`. The default forwards to [`MetricsSink::counter_add`]
    /// (no windowing).
    fn counter_add_at(&mut self, name: &str, labels: &[(&str, &str)], at: SimTime, v: f64) {
        let _ = at;
        self.counter_add(name, labels, v);
    }

    /// Sets a gauge series to `v`.
    fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], v: f64);

    /// Records one observation of `v` at sim time `at` into a histogram
    /// (quantile-sketch) series.
    fn observe(&mut self, name: &str, labels: &[(&str, &str)], at: SimTime, v: f64);

    /// Resolves `(kind, name, labels)` to a dense handle for repeated
    /// recording, creating the series if the sink materializes series
    /// eagerly. `None` (the default) means the sink does not support
    /// handles and the producer must use the string methods.
    fn series_handle(
        &mut self,
        kind: SeriesKind,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<SeriesHandle> {
        let _ = (kind, name, labels);
        None
    }

    /// Adds `v` (≥ 0) to the counter series behind `h`.
    fn counter_add_handle(&mut self, h: SeriesHandle, v: f64) {
        let _ = (h, v);
    }

    /// Adds `v` to the counter series behind `h`, attributing it to the
    /// sim-time window containing `at`.
    fn counter_add_at_handle(&mut self, h: SeriesHandle, at: SimTime, v: f64) {
        let _ = at;
        self.counter_add_handle(h, v);
    }

    /// Sets the gauge series behind `h` to `v`.
    fn gauge_set_handle(&mut self, h: SeriesHandle, v: f64) {
        let _ = (h, v);
    }

    /// Records one observation into the histogram series behind `h`.
    fn observe_handle(&mut self, h: SeriesHandle, at: SimTime, v: f64) {
        let _ = (h, at, v);
    }
}

/// A sink that drops every sample — the default for uninstrumented runs,
/// costing one virtual call per sample and nothing else.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl MetricsSink for NullSink {
    fn counter_add(&mut self, _name: &str, _labels: &[(&str, &str)], _v: f64) {}

    fn gauge_set(&mut self, _name: &str, _labels: &[(&str, &str)], _v: f64) {}

    fn observe(&mut self, _name: &str, _labels: &[(&str, &str)], _at: SimTime, _v: f64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder(Vec<(String, f64)>);

    impl MetricsSink for Recorder {
        fn counter_add(&mut self, name: &str, _labels: &[(&str, &str)], v: f64) {
            self.0.push((name.to_string(), v));
        }

        fn gauge_set(&mut self, name: &str, _labels: &[(&str, &str)], v: f64) {
            self.0.push((name.to_string(), v));
        }

        fn observe(&mut self, name: &str, _labels: &[(&str, &str)], _at: SimTime, v: f64) {
            self.0.push((name.to_string(), v));
        }
    }

    #[test]
    fn default_counter_add_at_forwards() {
        let mut r = Recorder::default();
        r.counter_add_at("bytes", &[], SimTime::from_micros(3), 64.0);
        assert_eq!(r.0, vec![("bytes".to_string(), 64.0)]);
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut s = NullSink;
        s.counter_add("a", &[("k", "v")], 1.0);
        s.counter_add_at("a", &[], SimTime::ZERO, 1.0);
        s.gauge_set("b", &[], 2.0);
        s.observe("c", &[], SimTime::ZERO, 3.0);
    }
}
