//! Virtual time.
//!
//! All engines in the workspace advance a nanosecond-granularity virtual clock.
//! A nanosecond `u64` covers ~584 years of virtual time, far beyond any
//! experiment horizon (the longest paper experiment, Figure 5, runs 6 seconds).
//!
//! Two types are provided: [`SimTime`] is a point on the virtual timeline and
//! [`SimDuration`] is a span between two points. Keeping them distinct catches
//! unit bugs (adding two absolute times) at compile time.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute point on the simulated timeline, in nanoseconds since the
/// beginning of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs a time from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs a time from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Constructs a time from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Constructs a time from seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates to zero if `earlier` is in
    /// the future, which keeps telemetry arithmetic total.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference; `None` when `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Constructs a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs a duration from fractional nanoseconds, rounding to the
    /// nearest whole nanosecond. Negative inputs clamp to zero.
    pub fn from_nanos_f64(ns: f64) -> Self {
        if ns <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span expressed in (fractional) nanoseconds.
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64
    }

    /// This span expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_nanos(1_000_000_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_nanos(1_000_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(40);
        assert_eq!(t + d, SimTime::from_nanos(140));
        assert_eq!(t - d, SimTime::from_nanos(60));
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(50);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(early.checked_since(late), None);
        assert_eq!(late.checked_since(early), Some(SimDuration::from_nanos(40)));
        assert_eq!(SimTime::MAX + SimDuration::from_nanos(1), SimTime::MAX);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_nanos(64);
        assert_eq!(d * 3, SimDuration::from_nanos(192));
        assert_eq!(d / 2, SimDuration::from_nanos(32));
    }

    #[test]
    fn from_nanos_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_nanos_f64(1.4), SimDuration::from_nanos(1));
        assert_eq!(SimDuration::from_nanos_f64(1.6), SimDuration::from_nanos(2));
        assert_eq!(SimDuration::from_nanos_f64(-5.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_human_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_nanos(1_500).to_string(), "1.500us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total, SimDuration::from_nanos(10));
    }
}
