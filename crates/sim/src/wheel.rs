//! A timer-wheel event queue.
//!
//! [`WheelQueue`] is a drop-in replacement for [`crate::EventQueue`] tuned
//! for the event engine's workload: integer-nanosecond timestamps, dozens
//! of events per busy nanosecond, and a bounded scheduling horizon for the
//! vast majority of pushes. It preserves the queue's *total order* exactly
//! — events pop in nondecreasing `(time, seq)` order, where `seq` is the
//! monotone insertion index — so any engine run is bit-identical whichever
//! of the two queues it executes on (property-tested against
//! [`crate::EventQueue`]).
//!
//! Layout: a ring of [`RING`] one-nanosecond buckets covering the window
//! `[now, now + RING)`, a one-`u64`-per-64-slots occupancy bitmap with a
//! single-word summary for near-O(1) next-bucket scans, and a binary-heap
//! overflow for the rare push beyond the window. Each bucket is an
//! append-only deque: pushes always carry the current maximum sequence
//! number, and overflow events migrate into the ring *eagerly* whenever
//! the window slides, so every bucket stays sorted by `seq` without ever
//! sorting.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::event::ScheduledEvent;
use crate::time::SimTime;

/// Ring size in nanosecond slots. 4096 keeps the occupancy summary in a
/// single `u64` (64 words × 64 bits) while covering the engine's typical
/// scheduling horizon; longer-range events overflow to a heap.
const RING: usize = 4096;
const WORDS: usize = RING / 64;

/// Heap entry for events beyond the ring window, min-ordered by
/// `(at, seq)`.
struct Overflow<E> {
    at: u64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Overflow<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Overflow<E> {}
impl<E> PartialOrd for Overflow<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Overflow<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: earliest (at, seq) is the heap maximum.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic event queue on a one-nanosecond timer wheel.
///
/// Same contract as [`crate::EventQueue`]: events pop in nondecreasing
/// time order, FIFO among equal timestamps, and scheduling into the past
/// panics.
///
/// ```
/// use chiplet_sim::{SimTime, WheelQueue};
///
/// let mut q = WheelQueue::new();
/// q.push(SimTime::from_nanos(20), "late");
/// q.push(SimTime::from_nanos(10), "early");
/// q.push(SimTime::from_nanos(10), "early-second");
///
/// assert_eq!(q.pop().unwrap().payload, "early");
/// assert_eq!(q.pop().unwrap().payload, "early-second");
/// assert_eq!(q.pop().unwrap().payload, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct WheelQueue<E> {
    /// `(seq, payload)` per slot, in push order — ascending `seq` by
    /// construction (see module docs).
    ring: Vec<VecDeque<(u64, E)>>,
    /// Occupancy bitmap: bit `s % 64` of word `s / 64` set ⇔ slot `s`
    /// holds unpopped items.
    occ: [u64; WORDS],
    /// Bit `w` set ⇔ `occ[w] != 0`.
    summary: u64,
    overflow: BinaryHeap<Overflow<E>>,
    /// Time of the last popped event (the watermark); the ring covers
    /// `[watermark, watermark + RING)` and the overflow holds the rest.
    watermark: u64,
    /// Cached absolute time of the earliest ring event, when known.
    /// `Some(t)` is always exact; `None` means "recompute via the bitmap".
    /// Busy nanoseconds pop dozens of events from one bucket, so the cache
    /// turns the per-pop bitmap scan into a single load on the hot path.
    head: Option<u64>,
    /// The queue's global minimum, held out of the ring. Filled when a
    /// push finds the queue empty, displaced by a push with a strictly
    /// earlier time. Serial dependency chains (pop one event, schedule
    /// the next — the pointer-chase workload) cycle entirely through this
    /// slot, never paying the ring's bucket traffic.
    front: Option<Overflow<E>>,
    next_seq: u64,
    len: usize,
}

impl<E> Default for WheelQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> WheelQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        WheelQueue {
            ring: (0..RING).map(|_| VecDeque::new()).collect(),
            occ: [0; WORDS],
            summary: 0,
            overflow: BinaryHeap::new(),
            watermark: 0,
            head: None,
            front: None,
            next_seq: 0,
            len: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the last popped event's time, like
    /// [`crate::EventQueue::push`].
    #[inline]
    pub fn push(&mut self, at: SimTime, payload: E) {
        let t = at.as_nanos();
        assert!(
            t >= self.watermark,
            "event scheduled into the past: {} < current time {}",
            at,
            SimTime::from_nanos(self.watermark)
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.enqueue(t, seq, payload);
    }

    /// Schedules `payload` with an explicit, caller-assigned sequence
    /// number instead of the queue's internal counter. Used by
    /// [`crate::DomainScheduler`], which assigns one *global* sequence
    /// across many lanes so that per-lane pop order matches the
    /// single-queue order exactly.
    ///
    /// Callers must push in strictly increasing `seq` order per queue
    /// (bucket FIFO order is the sort); the internal counter is bumped
    /// past `seq` so mixed use stays monotone.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the last popped event's time.
    #[inline]
    pub fn push_at_seq(&mut self, at: SimTime, seq: u64, payload: E) {
        let t = at.as_nanos();
        assert!(
            t >= self.watermark,
            "event scheduled into the past: {} < current time {}",
            at,
            SimTime::from_nanos(self.watermark)
        );
        debug_assert!(seq >= self.next_seq, "per-queue seq order must be monotone");
        self.next_seq = self.next_seq.max(seq + 1);
        self.enqueue(t, seq, payload);
    }

    /// Routes a validated push to the front slot, the ring, or the
    /// overflow heap. Sequence numbers are push-monotone, so "earlier
    /// (time, seq)" reduces to "strictly earlier time".
    #[inline]
    fn enqueue(&mut self, t: u64, seq: u64, payload: E) {
        self.len += 1;
        match self.front.as_ref() {
            None if self.len == 1 => {
                self.front = Some(Overflow {
                    at: t,
                    seq,
                    payload,
                });
            }
            Some(f) if t < f.at => {
                let old = self
                    .front
                    .replace(Overflow {
                        at: t,
                        seq,
                        payload,
                    })
                    .expect("front checked Some");
                self.stash(old.at, old.seq, old.payload, true);
            }
            _ => self.stash(t, seq, payload, false),
        }
    }

    /// Files an event into the ring or the overflow heap. `at_front`
    /// marks a displaced front event: it was the queue's global minimum,
    /// so among same-time bucket-mates it carries the smallest sequence
    /// number and must re-enter at the bucket's head.
    #[inline]
    fn stash(&mut self, t: u64, seq: u64, payload: E, at_front: bool) {
        if t - self.watermark < RING as u64 {
            self.insert_ring(t, seq, payload, at_front);
        } else {
            self.overflow.push(Overflow {
                at: t,
                seq,
                payload,
            });
        }
    }

    #[inline]
    fn insert_ring(&mut self, t: u64, seq: u64, payload: E, at_front: bool) {
        // Keep the head cache exact: a new event can only lower a known
        // head; an empty ring makes the sole event the head; an unknown
        // head stays unknown (the next pop recomputes it).
        self.head = match self.head {
            Some(h) => Some(h.min(t)),
            None if self.summary == 0 => Some(t),
            None => None,
        };
        let slot = (t as usize) & (RING - 1);
        if at_front {
            self.ring[slot].push_front((seq, payload));
        } else {
            self.ring[slot].push_back((seq, payload));
        }
        self.occ[slot / 64] |= 1 << (slot % 64);
        self.summary |= 1 << (slot / 64);
    }

    /// The slot of the earliest occupied bucket, scanning circularly from
    /// the watermark's slot. Only valid when the ring is non-empty.
    fn next_slot(&self) -> usize {
        debug_assert!(self.summary != 0, "next_slot on an empty ring");
        let start = (self.watermark as usize) & (RING - 1);
        let w0 = start / 64;
        let b0 = start % 64;
        let first = self.occ[w0] & (!0u64 << b0);
        if first != 0 {
            return w0 * 64 + first.trailing_zeros() as usize;
        }
        // First occupied word circularly after w0 in O(1): rotate the
        // summary so word w0+1 lands at bit 0 and count trailing zeros.
        let rot = self.summary.rotate_right((w0 as u32 + 1) % WORDS as u32);
        let w = (w0 + 1 + rot.trailing_zeros() as usize) % WORDS;
        let mut word = self.occ[w];
        if w == w0 {
            // Wrapped the whole ring: only the bits below b0 remain.
            word &= !(!0u64 << b0);
        }
        debug_assert!(word != 0, "summary bit set for an empty word");
        w * 64 + word.trailing_zeros() as usize
    }

    /// Absolute time of the earliest ring event; ring must be non-empty.
    #[inline]
    fn ring_head_time(&self) -> u64 {
        let slot = self.next_slot();
        let base_slot = (self.watermark as usize) & (RING - 1);
        let delta = (slot + RING - base_slot) % RING;
        self.watermark + delta as u64
    }

    /// Removes and returns the earliest event, advancing the watermark.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        if let Some(f) = self.front.take() {
            // The front slot is the global minimum whenever it is filled.
            if f.at > self.watermark {
                self.watermark = f.at;
                self.slide_window();
            }
            self.len -= 1;
            return Some(ScheduledEvent {
                at: SimTime::from_nanos(f.at),
                seq: f.seq,
                payload: f.payload,
            });
        }
        if self.len == 0 {
            return None;
        }
        let at = if self.summary != 0 {
            // Invariant: every overflow event is ≥ watermark + RING, i.e.
            // strictly after every ring event — the ring head is global.
            match self.head {
                Some(h) => h,
                None => {
                    let h = self.ring_head_time();
                    self.head = Some(h);
                    h
                }
            }
        } else {
            // Ring empty: jump the window to the overflow's earliest time.
            self.overflow.peek().expect("len > 0 with empty ring").at
        };
        if at > self.watermark {
            self.watermark = at;
            self.slide_window();
        }
        let slot = (at as usize) & (RING - 1);
        let (seq, payload) = self.ring[slot].pop_front().expect("head bucket non-empty");
        if self.ring[slot].is_empty() {
            self.occ[slot / 64] &= !(1 << (slot % 64));
            if self.occ[slot / 64] == 0 {
                self.summary &= !(1 << (slot / 64));
            }
            self.head = None;
        } else {
            self.head = Some(at);
        }
        self.len -= 1;
        Some(ScheduledEvent {
            at: SimTime::from_nanos(at),
            seq,
            payload,
        })
    }

    /// Migrates overflow events that now fall inside the ring window.
    /// Runs on every watermark advance, so a bucket receives migrated
    /// events *before* any later (higher-seq) push could target its time,
    /// keeping every bucket ascending in `seq`.
    fn slide_window(&mut self) {
        while let Some(head) = self.overflow.peek() {
            if head.at - self.watermark >= RING as u64 {
                break;
            }
            let Overflow { at, seq, payload } = self.overflow.pop().expect("peeked");
            self.insert_ring(at, seq, payload, false);
        }
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(f) = self.front.as_ref() {
            return Some(SimTime::from_nanos(f.at));
        }
        if self.len == 0 {
            None
        } else if self.summary != 0 {
            Some(SimTime::from_nanos(self.ring_head_time()))
        } else {
            self.overflow.peek().map(|o| SimTime::from_nanos(o.at))
        }
    }

    /// The earliest pending event's time, sequence and payload, without
    /// popping it.
    pub fn peek(&self) -> Option<(SimTime, u64, &E)> {
        if let Some(f) = self.front.as_ref() {
            return Some((SimTime::from_nanos(f.at), f.seq, &f.payload));
        }
        if self.len == 0 {
            return None;
        }
        if self.summary != 0 {
            let at = self.ring_head_time();
            let slot = (at as usize) & (RING - 1);
            let (seq, payload) = self.ring[slot].front().expect("head bucket non-empty");
            Some((SimTime::from_nanos(at), *seq, payload))
        } else {
            self.overflow
                .peek()
                .map(|o| (SimTime::from_nanos(o.at), o.seq, &o.payload))
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.watermark)
    }

    /// Discards all pending events but keeps the watermark and sequence
    /// counter, preserving determinism of subsequent pushes.
    pub fn clear(&mut self) {
        for b in &mut self.ring {
            b.clear();
        }
        self.occ = [0; WORDS];
        self.summary = 0;
        self.overflow.clear();
        self.head = None;
        self.front = None;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;
    use crate::rng::DetRng;

    #[test]
    fn pops_in_time_order() {
        let mut q = WheelQueue::new();
        for &t in &[5u64, 3, 9, 1, 7] {
            q.push(SimTime::from_nanos(t), t);
        }
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e.payload);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = WheelQueue::new();
        let t = SimTime::from_nanos(42);
        for i in 0..100 {
            q.push(t, i);
        }
        let popped: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn overflow_events_pop_in_order() {
        let mut q = WheelQueue::new();
        // Far beyond the ring window, interleaved with near events.
        q.push(SimTime::from_nanos(1_000_000), "far");
        q.push(SimTime::from_nanos(10), "near");
        q.push(SimTime::from_nanos(1_000_000), "far-second");
        q.push(SimTime::from_nanos(999_999), "far-earlier");
        assert_eq!(q.pop().unwrap().payload, "near");
        assert_eq!(q.pop().unwrap().payload, "far-earlier");
        assert_eq!(q.pop().unwrap().payload, "far");
        assert_eq!(q.pop().unwrap().payload, "far-second");
        assert!(q.pop().is_none());
    }

    #[test]
    fn overflow_migration_preserves_fifo_with_later_pushes() {
        let mut q = WheelQueue::new();
        let t = 5000u64; // outside the initial window
        q.push(SimTime::from_nanos(t), 0u32); // → overflow
        q.push(SimTime::from_nanos(2000), 99); // ring
                                               // Advance: watermark → 2000, window now covers 5000, migrating
                                               // the overflow event before the next push targets its bucket.
        assert_eq!(q.pop().unwrap().payload, 99);
        q.push(SimTime::from_nanos(t), 1);
        q.push(SimTime::from_nanos(t), 2);
        let popped: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(popped, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "scheduled into the past")]
    fn scheduling_into_past_panics() {
        let mut q = WheelQueue::new();
        q.push(SimTime::from_nanos(100), ());
        q.pop();
        q.push(SimTime::from_nanos(50), ());
    }

    #[test]
    fn watermark_and_peek_match_heap_queue() {
        let mut q = WheelQueue::new();
        q.push(SimTime::from_nanos(10), ());
        q.push(SimTime::from_nanos(30), ());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(10)));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(10));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(30));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn clear_retains_watermark() {
        let mut q = WheelQueue::new();
        q.push(SimTime::from_nanos(10), ());
        q.pop();
        q.push(SimTime::from_nanos(20), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_nanos(10));
    }

    /// The decisive property: against a randomized schedule-as-you-drain
    /// workload (including same-ns bursts, window-spanning jumps, and
    /// overflow distances), the wheel's full pop stream — times, seqs,
    /// payloads — is identical to the reference heap queue's.
    #[test]
    fn equivalent_to_event_queue_under_random_workload() {
        for seed in 0..20u64 {
            let mut rng = DetRng::seed_from_u64(mix(seed));
            let mut wheel = WheelQueue::new();
            let mut heap = EventQueue::new();
            let mut next_id = 0u64;
            // Seed both with an initial burst.
            for _ in 0..rng.range(1, 50) {
                let t = rng.next_below(100);
                wheel.push(SimTime::from_nanos(t), next_id);
                heap.push(SimTime::from_nanos(t), next_id);
                next_id += 1;
            }
            let mut steps = 0u32;
            loop {
                let (a, b) = (wheel.pop(), heap.pop());
                match (a, b) {
                    (None, None) => break,
                    (Some(x), Some(y)) => {
                        assert_eq!(x.at, y.at, "seed {seed}");
                        assert_eq!(x.seq, y.seq, "seed {seed}");
                        assert_eq!(x.payload, y.payload, "seed {seed}");
                        // Schedule follow-ups from the popped event, the
                        // way an engine does: same-ns, near, and far.
                        steps += 1;
                        if steps < 3000 {
                            for _ in 0..rng.next_below(3) {
                                let dt = match rng.next_below(10) {
                                    0 => 0,                              // same ns
                                    1..=6 => rng.next_below(64),         // near
                                    7..=8 => rng.next_below(4000),       // window edge
                                    _ => 4000 + rng.next_below(100_000), // overflow
                                };
                                let t = x.at.as_nanos() + dt;
                                wheel.push(SimTime::from_nanos(t), next_id);
                                heap.push(SimTime::from_nanos(t), next_id);
                                next_id += 1;
                            }
                        }
                    }
                    (a, b) => panic!("streams diverged at seed {seed}: {a:?} vs {b:?}"),
                }
                assert_eq!(wheel.len(), heap.len());
            }
        }
    }

    fn mix(seed: u64) -> u64 {
        seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xE1E2
    }
}
