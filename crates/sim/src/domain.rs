//! Per-domain event scheduling with conservative-lookahead batch
//! parallelism.
//!
//! A [`DomainScheduler`] splits one logical event queue into per-domain
//! *lanes* (one [`WheelQueue`] each) while preserving the exact total
//! order of the single-queue engine: every event carries a **global**
//! sequence number, and pop order is `(time, seq)` — identical to what
//! [`crate::EventQueue`] would have produced, independent of how many
//! domains or worker threads participate. A scheduler with one domain *is*
//! the single-queue engine, just behind one extra indirection.
//!
//! The execution model is nanosecond-batch with deterministic replay:
//!
//! 1. [`DomainScheduler::next_batch_time`] finds the earliest pending
//!    nanosecond T across all lanes.
//! 2. Each domain drains its lane's events at T
//!    ([`DomainScheduler::drain_lane_at`]) and executes them — batch
//!    events in ascending `seq`, then any same-T children it scheduled
//!    locally, FIFO, to exhaustion. Domains may run concurrently: the
//!    caller guarantees (via its domain partition and a ≥ 1 ns
//!    cross-domain delay) that same-T events in different domains never
//!    interact, so each domain sees exactly the state the sequential
//!    engine would have shown it.
//! 3. While executing, each domain **logs** every event it schedules
//!    ([`LoggedPush`]) instead of assigning sequence numbers: same-T local
//!    children as [`LoggedPush::Local`], everything else as
//!    [`LoggedPush::Future`] with its payload.
//! 4. At the barrier, [`DomainScheduler::commit_batch`] replays the batch
//!    single-threaded *by sequence number alone* — no payloads touched —
//!    reconstructing exactly the sequence numbers the single-queue engine
//!    would have assigned, and delivers every `Future` push to its
//!    destination lane under that number.
//!
//! Because the replay visits domains' events in each domain's own
//! execution order (batch `seq` order, then FIFO children), the k-th
//! replayed event of a domain is its k-th executed event, so logs line up
//! positionally and no payload needs to be re-examined.

use crate::time::SimTime;
use crate::wheel::WheelQueue;
use std::collections::BinaryHeap;

/// One scheduling decision logged during a domain's batch execution, in
/// the order the executing event issued them.
#[derive(Debug)]
pub enum LoggedPush<E> {
    /// A same-nanosecond child executed locally by the same domain (it
    /// never enters a lane); consumes one sequence number at replay and
    /// re-enters the replay order with its own log entry.
    Local,
    /// An event delivered to `domain`'s lane at a strictly later
    /// nanosecond.
    Future {
        /// Destination domain.
        domain: u32,
        /// Delivery time (strictly after the batch nanosecond).
        at: SimTime,
        /// The event payload, moved to the destination lane at commit.
        payload: E,
    },
}

/// The pushes issued by one executed event.
pub type EventLog<E> = Vec<LoggedPush<E>>;

/// Per-domain event lanes sharing one global `(time, seq)` order.
pub struct DomainScheduler<E> {
    lanes: Vec<WheelQueue<E>>,
    next_seq: u64,
}

impl<E> DomainScheduler<E> {
    /// A scheduler with `domains` lanes.
    pub fn new(domains: usize) -> Self {
        assert!(domains > 0, "at least one domain");
        DomainScheduler {
            lanes: (0..domains).map(|_| WheelQueue::new()).collect(),
            next_seq: 0,
        }
    }

    /// Number of lanes.
    pub fn domain_count(&self) -> usize {
        self.lanes.len()
    }

    /// Schedules `payload` on `domain`'s lane, assigning the next global
    /// sequence number. Use this for pre-run seeding and for any
    /// single-threaded phase; batch execution goes through logs +
    /// [`Self::commit_batch`] instead.
    pub fn push(&mut self, domain: usize, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.lanes[domain].push_at_seq(at, seq, payload);
    }

    /// Total pending events across all lanes.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(WheelQueue::len).sum()
    }

    /// True when every lane is empty.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(WheelQueue::is_empty)
    }

    /// The earliest pending nanosecond across all lanes.
    pub fn next_batch_time(&self) -> Option<SimTime> {
        self.lanes.iter().filter_map(WheelQueue::peek_time).min()
    }

    /// The `(domain, seq)` of the globally earliest pending event — the
    /// event a single queue would pop next. Ties cannot occur: sequence
    /// numbers are globally unique.
    pub fn peek_head(&self) -> Option<(usize, u64)> {
        self.lanes
            .iter()
            .enumerate()
            .filter_map(|(d, l)| l.peek().map(|(at, seq, _)| (at, seq, d)))
            .min_by_key(|&(at, seq, _)| (at, seq))
            .map(|(_, seq, d)| (d, seq))
    }

    /// Pops the globally earliest event (single-threaded use: the
    /// degenerate path and global events like stats resets).
    pub fn pop_head(&mut self) -> Option<(usize, SimTime, u64, E)> {
        let (d, _) = self.peek_head()?;
        let ev = self.lanes[d].pop().expect("peeked");
        Some((d, ev.at, ev.seq, ev.payload))
    }

    /// Direct mutable access to the lanes, for callers that execute
    /// domains on worker threads (each worker borrows its own lanes).
    pub fn lanes_mut(&mut self) -> &mut [WheelQueue<E>] {
        &mut self.lanes
    }

    /// Drains every event scheduled at exactly `t` from `lane` into
    /// `out` as `(seq, payload)`, ascending in `seq`. Standalone so
    /// worker threads can call it on a lane borrowed via
    /// [`Self::lanes_mut`].
    pub fn drain_lane_at(lane: &mut WheelQueue<E>, t: SimTime, out: &mut Vec<(u64, E)>) {
        while lane.peek_time() == Some(t) {
            let ev = lane.pop().expect("peeked");
            out.push((ev.seq, ev.payload));
        }
    }

    /// Replays a completed batch and delivers its future events.
    ///
    /// `batch_seqs[d]` lists domain `d`'s drained batch sequence numbers
    /// (ascending); `logs[d]` holds one [`EventLog`] per event domain `d`
    /// executed, in execution order — batch events first (ascending
    /// `seq`), then same-T children FIFO.
    ///
    /// # Panics
    ///
    /// Panics if the logs are inconsistent with the batch (a domain
    /// logged more or fewer executed events than the replay visits).
    pub fn commit_batch(&mut self, batch_seqs: &[Vec<u64>], logs: Vec<Vec<EventLog<E>>>) {
        assert_eq!(batch_seqs.len(), self.lanes.len());
        assert_eq!(logs.len(), self.lanes.len());
        // Min-heap over (seq, domain) via Reverse; sequence numbers are
        // globally unique so the order is total.
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u32)>> = BinaryHeap::new();
        for (d, seqs) in batch_seqs.iter().enumerate() {
            for &s in seqs {
                heap.push(std::cmp::Reverse((s, d as u32)));
            }
        }
        let mut logs: Vec<std::vec::IntoIter<EventLog<E>>> =
            logs.into_iter().map(Vec::into_iter).collect();
        while let Some(std::cmp::Reverse((_, d))) = heap.pop() {
            let log = logs[d as usize]
                .next()
                .expect("every replayed event has a log entry");
            for push in log {
                let seq = self.next_seq;
                self.next_seq += 1;
                match push {
                    LoggedPush::Local => heap.push(std::cmp::Reverse((seq, d))),
                    LoggedPush::Future {
                        domain,
                        at,
                        payload,
                    } => {
                        self.lanes[domain as usize].push_at_seq(at, seq, payload);
                    }
                }
            }
        }
        for (d, mut rest) in logs.into_iter().enumerate() {
            assert!(
                rest.next().is_none(),
                "domain {d} logged events the replay never visited"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;
    use std::collections::VecDeque;

    /// Toy dynamics shared by the reference and batch executors: an event
    /// `(d, t, k)` deterministically schedules same-T local children and
    /// strictly-later cross-domain events.
    fn step(n: usize, d: usize, t: u64, k: u64) -> (Vec<u64>, Vec<(usize, u64, u64)>) {
        let mut local = Vec::new();
        let mut future = Vec::new();
        if k.is_multiple_of(3) && k < 30 {
            local.push(k + 7);
        }
        if k.is_multiple_of(2) && k < 40 {
            future.push(((d + k as usize) % n, t + 1 + k % 5, k + 1));
            future.push(((d + 1) % n, t + 3 + k % 7, k + 2));
        }
        (local, future)
    }

    /// Single-queue reference: global `(time, seq)` order, per-domain
    /// execution traces.
    fn run_reference(n: usize, seeds: &[(usize, u64, u64)]) -> Vec<Vec<(u64, u64)>> {
        let mut q = EventQueue::new();
        for &(d, t, k) in seeds {
            q.push(SimTime::from_nanos(t), (d, k));
        }
        let mut traces = vec![Vec::new(); n];
        while let Some(ev) = q.pop() {
            let (d, k) = ev.payload;
            let t = ev.at.as_nanos();
            traces[d].push((t, k));
            let (local, future) = step(n, d, t, k);
            for lk in local {
                q.push(ev.at, (d, lk));
            }
            for (fd, ft, fk) in future {
                q.push(SimTime::from_nanos(ft), (fd, fk));
            }
        }
        traces
    }

    /// Batch executor: domains within a batch run in an arbitrary
    /// permutation (exercising order-independence), logs replayed at the
    /// barrier.
    fn run_batched(
        n: usize,
        seeds: &[(usize, u64, u64)],
        perm_salt: usize,
    ) -> Vec<Vec<(u64, u64)>> {
        let mut sched: DomainScheduler<u64> = DomainScheduler::new(n);
        for &(d, t, k) in seeds {
            sched.push(d, SimTime::from_nanos(t), k);
        }
        let mut traces = vec![Vec::new(); n];
        let mut round = 0usize;
        while let Some(t) = sched.next_batch_time() {
            let tn = t.as_nanos();
            let mut batch_seqs = vec![Vec::new(); n];
            let mut logs: Vec<Vec<EventLog<u64>>> = (0..n).map(|_| Vec::new()).collect();
            // Rotate the visit order every round: results must not care.
            for i in 0..n {
                let d = (i + perm_salt + round) % n;
                let mut drained = Vec::new();
                DomainScheduler::drain_lane_at(&mut sched.lanes_mut()[d], t, &mut drained);
                let mut fifo: VecDeque<u64> = VecDeque::new();
                for &(seq, k) in &drained {
                    batch_seqs[d].push(seq);
                    fifo.push_back(k);
                }
                while let Some(k) = fifo.pop_front() {
                    traces[d].push((tn, k));
                    let (local, future) = step(n, d, tn, k);
                    let mut log = Vec::new();
                    for lk in local {
                        fifo.push_back(lk);
                        log.push(LoggedPush::Local);
                    }
                    for (fd, ft, fk) in future {
                        assert!(ft > tn, "cross-batch pushes are strictly later");
                        log.push(LoggedPush::Future {
                            domain: fd as u32,
                            at: SimTime::from_nanos(ft),
                            payload: fk,
                        });
                    }
                    logs[d].push(log);
                }
            }
            sched.commit_batch(&batch_seqs, logs);
            round += 1;
        }
        traces
    }

    #[test]
    fn batched_execution_matches_single_queue_reference() {
        let seeds: Vec<(usize, u64, u64)> = (0..12usize)
            .map(|i| (i % 4, 10 + i as u64 % 3, i as u64))
            .collect();
        let reference = run_reference(4, &seeds);
        for perm_salt in 0..4 {
            assert_eq!(run_batched(4, &seeds, perm_salt), reference);
        }
    }

    #[test]
    fn single_domain_is_the_degenerate_case() {
        let seeds: Vec<(usize, u64, u64)> = (0..10).map(|i| (0, 5 + i % 4, i)).collect();
        assert_eq!(run_batched(1, &seeds, 0), run_reference(1, &seeds));
    }

    #[test]
    fn pop_order_is_time_then_global_seq_across_lanes() {
        // Tie-break audit: same-time events across lanes pop in global
        // push (seq) order, never lane order.
        let mut sched: DomainScheduler<&str> = DomainScheduler::new(3);
        let t = SimTime::from_nanos(100);
        sched.push(2, t, "first");
        sched.push(0, t, "second");
        sched.push(1, SimTime::from_nanos(99), "earlier");
        sched.push(2, t, "third");
        let mut order = Vec::new();
        while let Some((_, _, _, p)) = sched.pop_head() {
            order.push(p);
        }
        assert_eq!(order, vec!["earlier", "first", "second", "third"]);
    }

    #[test]
    #[should_panic(expected = "logged events the replay never visited")]
    fn commit_rejects_orphan_logs() {
        let mut sched: DomainScheduler<u64> = DomainScheduler::new(2);
        sched.push(0, SimTime::from_nanos(1), 7);
        let mut drained = Vec::new();
        DomainScheduler::drain_lane_at(
            &mut sched.lanes_mut()[0],
            SimTime::from_nanos(1),
            &mut drained,
        );
        let batch_seqs = vec![drained.iter().map(|&(s, _)| s).collect(), Vec::new()];
        // Domain 1 claims an executed event the batch never contained.
        let logs = vec![vec![Vec::new()], vec![Vec::new()]];
        sched.commit_batch(&batch_seqs, logs);
    }
}
