//! Log-bucketed latency histogram.
//!
//! HDR-style layout: values are bucketed by (exponent, mantissa-slice) with a
//! fixed number of sub-buckets per power of two, giving a bounded relative
//! error (~1/SUB_BUCKETS) at every scale from 1 ns to minutes. Quantile
//! queries return the *upper edge* of the containing bucket so reported tails
//! never understate the true tail.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Sub-buckets per power of two; 32 gives ≈3% relative error.
const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = 5; // log2(SUB_BUCKETS)
/// Enough exponent ranges to cover u64 nanoseconds.
const RANGES: usize = 64;

/// A streaming latency histogram with bounded relative error.
///
/// ```
/// use chiplet_sim::stats::LatencyHistogram;
/// use chiplet_sim::SimDuration;
///
/// let mut h = LatencyHistogram::new();
/// for ns in 1..=1000u64 {
///     h.record(SimDuration::from_nanos(ns));
/// }
/// let p50 = h.quantile(0.5).unwrap().as_nanos();
/// assert!((450..=560).contains(&p50), "p50 was {p50}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; RANGES * SUB_BUCKETS],
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Dense bucket layout: values `[0, 32)` get exact unit buckets; each
    /// binade `[2^m, 2^(m+1))` above that gets `SUB_BUCKETS / 2` sub-buckets.
    fn index_of(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            value as usize
        } else {
            let msb = 63 - value.leading_zeros();
            let range = (msb - SUB_BITS + 1) as usize;
            // Top (SUB_BITS - 1) fractional bits of the binade select the
            // sub-bucket: each binade [2^m, 2^(m+1)) gets SUB_BUCKETS/2 cells.
            let sub = ((value >> (msb - (SUB_BITS - 1))) as usize) & (SUB_BUCKETS / 2 - 1);
            SUB_BUCKETS + (range - 1) * (SUB_BUCKETS / 2) + sub
        }
    }

    /// Upper edge (inclusive) of the bucket at `index` under the dense layout.
    fn upper_of(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            index as u64
        } else {
            let rel = index - SUB_BUCKETS;
            let range = rel / (SUB_BUCKETS / 2) + 1;
            let sub = rel % (SUB_BUCKETS / 2);
            let msb = SUB_BITS as usize - 1 + range;
            let low = 1u64 << msb;
            let step = 1u64 << (msb - (SUB_BITS as usize - 1));
            low + step * (sub as u64 + 1) - 1
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        let idx = Self::index_of(ns);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Arithmetic mean, or `None` when empty. Exact (not bucketed).
    pub fn mean(&self) -> Option<SimDuration> {
        if self.total == 0 {
            None
        } else {
            Some(SimDuration::from_nanos(
                (self.sum_ns / self.total as u128) as u64,
            ))
        }
    }

    /// Mean as fractional nanoseconds, or NaN when empty.
    pub fn mean_ns_f64(&self) -> f64 {
        if self.total == 0 {
            f64::NAN
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// Smallest recorded sample (exact), or `None` when empty.
    pub fn min(&self) -> Option<SimDuration> {
        (self.total > 0).then(|| SimDuration::from_nanos(self.min_ns))
    }

    /// Largest recorded sample (exact), or `None` when empty.
    pub fn max(&self) -> Option<SimDuration> {
        (self.total > 0).then(|| SimDuration::from_nanos(self.max_ns))
    }

    /// The `q`-quantile (`q` in `[0, 1]`), or `None` when empty.
    ///
    /// Returns the upper edge of the bucket containing the quantile rank,
    /// clamped to the exact observed `[min, max]` range, so the reported
    /// value is within one bucket width (≈3%) above the true order
    /// statistic, never below the bucket that contains it, and never
    /// outside what was actually recorded: `quantile(1.0)` is exactly the
    /// observed maximum and `quantile(0.0)` exactly the observed minimum
    /// (the raw bucket edge could overstate either by the bucket's
    /// relative error).
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return Some(SimDuration::from_nanos(self.min_ns));
        }
        // Rank of the target order statistic, 1-based.
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(SimDuration::from_nanos(
                    Self::upper_of(i).clamp(self.min_ns, self.max_ns),
                ));
            }
        }
        Some(SimDuration::from_nanos(self.max_ns))
    }

    /// P50 convenience accessor.
    pub fn p50(&self) -> Option<SimDuration> {
        self.quantile(0.50)
    }

    /// P99 convenience accessor.
    pub fn p99(&self) -> Option<SimDuration> {
        self.quantile(0.99)
    }

    /// P999 convenience accessor (the paper's tail metric).
    pub fn p999(&self) -> Option<SimDuration> {
        self.quantile(0.999)
    }

    /// Merges another histogram into this one. All fields are integral,
    /// so merging per-domain shards in any order yields exactly the
    /// histogram a single sequential recorder would have produced.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum_ns = 0;
        self.min_ns = u64::MAX;
        self.max_ns = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h_from(values: &[u64]) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for &v in values {
            h.record(SimDuration::from_nanos(v));
        }
        h
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn small_values_are_exact() {
        // Values below SUB_BUCKETS land in exact unit buckets.
        let h = h_from(&[1, 2, 3, 4, 5]);
        assert_eq!(h.quantile(0.0).unwrap().as_nanos(), 1);
        assert_eq!(h.p50().unwrap().as_nanos(), 3);
        assert_eq!(h.quantile(1.0).unwrap().as_nanos(), 5);
        assert_eq!(h.mean().unwrap().as_nanos(), 3);
    }

    #[test]
    fn mean_is_exact_for_large_values() {
        let h = h_from(&[100, 200, 300]);
        assert_eq!(h.mean().unwrap().as_nanos(), 200);
        assert_eq!(h.min().unwrap().as_nanos(), 100);
        assert_eq!(h.max().unwrap().as_nanos(), 300);
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        // Uniform 1..=100_000: any quantile must be within ~7% of exact.
        let values: Vec<u64> = (1..=100_000).collect();
        let h = h_from(&values);
        for &(q, exact) in &[
            (0.5, 50_000u64),
            (0.9, 90_000),
            (0.99, 99_000),
            (0.999, 99_900),
        ] {
            let got = h.quantile(q).unwrap().as_nanos() as f64;
            let rel = (got - exact as f64) / exact as f64;
            assert!(
                (-0.001..=0.07).contains(&rel),
                "q={q}: got {got}, exact {exact}, rel {rel}"
            );
        }
    }

    #[test]
    fn p999_picks_tail_outliers() {
        // 9980 fast samples and 20 slow ones (0.2%): P999 must see the slow mode.
        let mut values = vec![100u64; 9980];
        values.extend([5000u64; 20]);
        let h = h_from(&values);
        assert!(h.p999().unwrap().as_nanos() >= 4600);
        assert!(h.p50().unwrap().as_nanos() <= 104);
    }

    #[test]
    fn quantile_never_exceeds_observed_max() {
        let h = h_from(&[999_937]); // awkward non-power-of-two
        assert_eq!(h.quantile(1.0).unwrap().as_nanos(), 999_937);
        assert_eq!(h.p999().unwrap().as_nanos(), 999_937);
    }

    #[test]
    fn single_sample_every_quantile_is_the_sample() {
        let h = h_from(&[777_215]);
        for q in [0.0, 0.001, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(
                h.quantile(q).unwrap().as_nanos(),
                777_215,
                "q={q} strayed from the only sample"
            );
        }
    }

    #[test]
    fn quantile_zero_is_exact_min() {
        // 1000's bucket has upper edge 1023; q=0 must report the recorded
        // minimum, not the bucket edge.
        let h = h_from(&[1000, 2000, 3000]);
        assert_eq!(h.quantile(0.0).unwrap().as_nanos(), 1000);
        assert_eq!(h.quantile(1.0).unwrap().as_nanos(), 3000);
    }

    #[test]
    fn quantiles_stay_within_observed_range() {
        // Two samples in the same bucket: every quantile must land inside
        // [min, max] even though the shared bucket edge exceeds both.
        let h = h_from(&[1000, 1001]);
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let v = h.quantile(q).unwrap().as_nanos();
            assert!((1000..=1001).contains(&v), "q={q}: {v} outside [1000,1001]");
        }
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = h_from(&[10, 20]);
        let b = h_from(&[30, 40]);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.mean().unwrap().as_nanos(), 25);
        assert_eq!(a.max().unwrap().as_nanos(), 40);
        assert_eq!(a.min().unwrap().as_nanos(), 10);
    }

    #[test]
    fn reset_empties() {
        let mut h = h_from(&[1, 2, 3]);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn index_monotone_in_value() {
        let mut last = 0usize;
        for v in 0..100_000u64 {
            let idx = LatencyHistogram::index_of(v);
            assert!(idx >= last, "index decreased at value {v}");
            last = idx;
        }
    }

    #[test]
    fn upper_edge_brackets_value() {
        for v in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1000,
            123_456,
            u32::MAX as u64,
        ] {
            let idx = LatencyHistogram::index_of(v);
            let hi = LatencyHistogram::upper_of(idx);
            assert!(hi >= v, "upper edge {hi} below value {v}");
            if idx > 0 {
                let lo_prev = LatencyHistogram::upper_of(idx - 1);
                assert!(lo_prev < v, "previous edge {lo_prev} not below value {v}");
            }
        }
    }
    #[test]
    fn merge_equals_sequential_recording() {
        let samples: Vec<u64> = (0..200).map(|i| i * i % 7919 + i).collect();
        let mut whole = LatencyHistogram::new();
        let mut shards = [
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        ];
        for (i, &s) in samples.iter().enumerate() {
            whole.record(SimDuration::from_nanos(s));
            shards[i % 3].record(SimDuration::from_nanos(s));
        }
        let mut merged = LatencyHistogram::new();
        // Merge in reverse shard order: order must not matter.
        for sh in shards.iter().rev() {
            merged.merge(sh);
        }
        assert_eq!(merged, whole);
    }
}
