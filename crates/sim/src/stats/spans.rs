//! Span-level transaction tracing.
//!
//! §4 #1 and #5 of the paper ask for telemetry "for each link and
//! intermediate hop" and a perf-like profiling utility. A [`TxnSpan`] is the
//! hop-resolved record of one sampled transaction: every capacity point it
//! crossed, with queue-enter / service-start / service-end timestamps, so a
//! run's latency can be attributed to the exact segment (limiter, GMI, NoC,
//! memory channel, propagation) where it was spent.
//!
//! The collector is embedder-agnostic: hops carry an opaque `u32` label the
//! embedding simulator assigns (the engine maps them to hop classes), and
//! transactions carry an opaque `group`/`lane` pair (flow and issuer). The
//! sampling decision itself is the embedder's — the collector only bounds
//! memory and preserves deterministic ordering (spans are stored in
//! completion order, which the event queue makes reproducible).

use serde::{Deserialize, Serialize};

/// One hop of a sampled transaction: its dwell at a single capacity point.
///
/// The three timestamps split the dwell into a queueing wait
/// (`queue_enter_ns → service_start_ns`) and a latency-contributing service
/// interval (`service_start_ns → service_end_ns`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HopEvent {
    /// Embedder-defined hop label (the engine stores a hop-class code).
    pub label: u32,
    /// When the transaction arrived at the point.
    pub queue_enter_ns: f64,
    /// When it reached the head of the queue.
    pub service_start_ns: f64,
    /// When its latency-contributing service at the point ended.
    pub service_end_ns: f64,
}

impl HopEvent {
    /// Queueing wait at this hop, ns.
    pub fn wait_ns(&self) -> f64 {
        self.service_start_ns - self.queue_enter_ns
    }

    /// Latency-contributing service time at this hop, ns.
    pub fn service_ns(&self) -> f64 {
        self.service_end_ns - self.service_start_ns
    }

    /// Total dwell (wait + service), ns.
    pub fn total_ns(&self) -> f64 {
        self.service_end_ns - self.queue_enter_ns
    }
}

/// The full hop-resolved record of one sampled transaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TxnSpan {
    /// Sample sequence number, in issue order.
    pub seq: u64,
    /// Embedder grouping (the engine stores the flow id).
    pub group: u32,
    /// Embedder lane (the engine stores the issuing core / DMA engine).
    pub lane: u32,
    /// Issue timestamp, ns.
    pub issue_ns: f64,
    /// Completion timestamp, ns.
    pub end_ns: f64,
    /// End-to-end latency the embedder charged the transaction, ns. The
    /// hops tile this exactly: `Σ hop.total_ns() == e2e_ns`.
    pub e2e_ns: f64,
    /// Hops in traversal order.
    pub hops: Vec<HopEvent>,
}

impl TxnSpan {
    /// Sum of all hop dwells, ns — equals `e2e_ns` up to float rounding.
    pub fn hop_sum_ns(&self) -> f64 {
        self.hops.iter().map(HopEvent::total_ns).sum()
    }
}

/// Bounded-memory collector of [`TxnSpan`]s.
///
/// `start` opens a span and returns a handle; `hop` appends hop events;
/// `finish` seals the span into the completed list. Once `cap` spans have
/// been collected, further `start` calls return `None` and are counted as
/// dropped — overhead and memory stay bounded no matter the run length.
#[derive(Debug, Clone)]
pub struct SpanCollector {
    open: Vec<TxnSpan>,
    free: Vec<u32>,
    done: Vec<TxnSpan>,
    cap: usize,
    dropped: u64,
    next_seq: u64,
}

impl SpanCollector {
    /// Creates a collector that keeps at most `cap` completed spans.
    pub fn new(cap: usize) -> Self {
        SpanCollector {
            open: Vec::new(),
            free: Vec::new(),
            done: Vec::new(),
            cap,
            dropped: 0,
            next_seq: 0,
        }
    }

    /// Opens a span for a sampled transaction. Returns `None` (and counts a
    /// drop) once the collector is full.
    pub fn start(&mut self, group: u32, lane: u32, issue_ns: f64) -> Option<u32> {
        if self.done.len() + (self.open.len() - self.free.len()) >= self.cap {
            self.dropped += 1;
            return None;
        }
        let span = TxnSpan {
            seq: self.next_seq,
            group,
            lane,
            issue_ns,
            end_ns: issue_ns,
            e2e_ns: 0.0,
            hops: Vec::with_capacity(8),
        };
        self.next_seq += 1;
        match self.free.pop() {
            Some(slot) => {
                self.open[slot as usize] = span;
                Some(slot)
            }
            None => {
                self.open.push(span);
                Some((self.open.len() - 1) as u32)
            }
        }
    }

    /// Appends a hop event to an open span.
    pub fn hop(
        &mut self,
        handle: u32,
        label: u32,
        queue_enter_ns: f64,
        service_start_ns: f64,
        service_end_ns: f64,
    ) {
        self.open[handle as usize].hops.push(HopEvent {
            label,
            queue_enter_ns,
            service_start_ns,
            service_end_ns,
        });
    }

    /// Seals an open span; the handle is recycled.
    pub fn finish(&mut self, handle: u32, end_ns: f64, e2e_ns: f64) {
        let mut span = std::mem::replace(
            &mut self.open[handle as usize],
            TxnSpan {
                seq: 0,
                group: 0,
                lane: 0,
                issue_ns: 0.0,
                end_ns: 0.0,
                e2e_ns: 0.0,
                hops: Vec::new(),
            },
        );
        span.end_ns = end_ns;
        span.e2e_ns = e2e_ns;
        self.done.push(span);
        self.free.push(handle);
    }

    /// Completed spans so far, in completion order.
    pub fn spans(&self) -> &[TxnSpan] {
        &self.done
    }

    /// Samples dropped because the collector was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the collector: completed spans plus the dropped count.
    /// Transactions still open (in flight at the horizon) are discarded.
    pub fn into_parts(self) -> (Vec<TxnSpan>, u64) {
        (self.done, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_tile_the_latency() {
        let mut c = SpanCollector::new(16);
        let h = c.start(0, 3, 100.0).unwrap();
        c.hop(h, 1, 100.0, 110.0, 110.0); // 10 ns wait
        c.hop(h, 2, 110.0, 112.0, 115.0); // 2 ns wait + 3 ns service
        c.hop(h, 9, 115.0, 115.0, 240.0); // 125 ns propagation
        c.finish(h, 240.0, 140.0);
        let s = &c.spans()[0];
        assert_eq!(s.hops.len(), 3);
        assert!((s.hop_sum_ns() - s.e2e_ns).abs() < 1e-9);
        assert_eq!(s.group, 0);
        assert_eq!(s.lane, 3);
        assert_eq!(s.seq, 0);
    }

    #[test]
    fn handles_are_recycled_and_seq_advances() {
        let mut c = SpanCollector::new(16);
        let h0 = c.start(0, 0, 0.0).unwrap();
        c.finish(h0, 1.0, 1.0);
        let h1 = c.start(1, 1, 2.0).unwrap();
        assert_eq!(h0, h1, "slot should be recycled");
        c.finish(h1, 3.0, 1.0);
        assert_eq!(c.spans()[0].seq, 0);
        assert_eq!(c.spans()[1].seq, 1);
        assert_eq!(c.spans()[1].group, 1);
    }

    #[test]
    fn cap_bounds_memory_and_counts_drops() {
        let mut c = SpanCollector::new(2);
        let a = c.start(0, 0, 0.0).unwrap();
        let b = c.start(0, 1, 0.0).unwrap();
        assert!(c.start(0, 2, 0.0).is_none());
        c.finish(a, 1.0, 1.0);
        c.finish(b, 1.0, 1.0);
        // Still full: completed spans count against the cap.
        assert!(c.start(0, 3, 0.0).is_none());
        assert_eq!(c.dropped(), 2);
        let (spans, dropped) = c.into_parts();
        assert_eq!(spans.len(), 2);
        assert_eq!(dropped, 2);
    }

    #[test]
    fn open_spans_are_discarded() {
        let mut c = SpanCollector::new(4);
        let _ = c.start(0, 0, 0.0).unwrap();
        let h = c.start(0, 1, 0.0).unwrap();
        c.finish(h, 5.0, 5.0);
        let (spans, _) = c.into_parts();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].lane, 1);
    }
}
