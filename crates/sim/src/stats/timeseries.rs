//! Windowed bandwidth traces.
//!
//! Figure 5 of the paper plots per-flow achieved bandwidth over a 6-second
//! horizon, sampled in fixed windows. [`BandwidthTrace`] accumulates bytes
//! delivered into fixed-width time windows and yields a `(t, GB/s)` series.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};
use crate::units::{Bandwidth, ByteSize};

/// One point of a bandwidth trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Start of the window.
    pub at: SimTime,
    /// Average bandwidth achieved during the window.
    pub bandwidth: Bandwidth,
}

/// Accumulates delivered bytes into fixed-width windows.
///
/// Deliveries must be reported in nondecreasing time order (which the event
/// queue guarantees); a delivery closes any windows that ended before it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BandwidthTrace {
    window: SimDuration,
    current_start: SimTime,
    current_bytes: u64,
    points: Vec<TracePoint>,
}

impl BandwidthTrace {
    /// Creates a trace with the given sampling window.
    ///
    /// # Panics
    ///
    /// Panics on a zero window.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "trace window must be positive");
        BandwidthTrace {
            window,
            current_start: SimTime::ZERO,
            current_bytes: 0,
            points: Vec::new(),
        }
    }

    /// The sampling window width.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    fn flush_until(&mut self, at: SimTime) {
        while at >= self.current_start + self.window {
            let bw =
                Bandwidth::from_bytes_per_s(self.current_bytes as f64 / self.window.as_secs_f64());
            self.points.push(TracePoint {
                at: self.current_start,
                bandwidth: bw,
            });
            self.current_start += self.window;
            self.current_bytes = 0;
        }
    }

    /// Records `size` bytes delivered at instant `at`.
    pub fn record(&mut self, at: SimTime, size: ByteSize) {
        self.flush_until(at);
        self.current_bytes += size.as_bytes();
    }

    /// Closes all windows up to `end` and returns the finished series.
    pub fn finish(mut self, end: SimTime) -> Vec<TracePoint> {
        self.flush_until(end);
        self.points
    }

    /// Windows finished so far (not including the in-progress one).
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }
}

/// One point of a gauge trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaugePoint {
    /// Start of the window.
    pub at: SimTime,
    /// Mean of the sampled values during the window (0 when none).
    pub mean: f64,
    /// Largest sampled value during the window (0 when none).
    pub max: f64,
}

/// Accumulates instantaneous gauge samples (queue depth, outstanding
/// transactions) into the same fixed-width, half-open windows
/// `[start, start + window)` that [`BandwidthTrace`] uses, stamped at the
/// window start.
///
/// Samples must arrive in nondecreasing time order; a sample closes any
/// windows that ended before it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaugeTrace {
    window: SimDuration,
    current_start: SimTime,
    current_sum: f64,
    current_max: f64,
    current_count: u64,
    points: Vec<GaugePoint>,
}

impl GaugeTrace {
    /// Creates a trace with the given sampling window.
    ///
    /// # Panics
    ///
    /// Panics on a zero window.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "trace window must be positive");
        GaugeTrace {
            window,
            current_start: SimTime::ZERO,
            current_sum: 0.0,
            current_max: 0.0,
            current_count: 0,
            points: Vec::new(),
        }
    }

    /// The sampling window width.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    fn flush_until(&mut self, at: SimTime) {
        while at >= self.current_start + self.window {
            let mean = if self.current_count == 0 {
                0.0
            } else {
                self.current_sum / self.current_count as f64
            };
            self.points.push(GaugePoint {
                at: self.current_start,
                mean,
                max: self.current_max,
            });
            self.current_start += self.window;
            self.current_sum = 0.0;
            self.current_max = 0.0;
            self.current_count = 0;
        }
    }

    /// Records one gauge sample taken at instant `at`.
    pub fn record(&mut self, at: SimTime, value: f64) {
        self.flush_until(at);
        self.current_sum += value;
        if value > self.current_max {
            self.current_max = value;
        }
        self.current_count += 1;
    }

    /// Closes all windows up to `end` and returns the finished series.
    pub fn finish(mut self, end: SimTime) -> Vec<GaugePoint> {
        self.flush_until(end);
        self.points
    }

    /// Windows finished so far (not including the in-progress one).
    pub fn points(&self) -> &[GaugePoint] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_trace() {
        // 64 B every ns = 64 GB/s, sampled in 1 µs windows.
        let mut trace = BandwidthTrace::new(SimDuration::from_micros(1));
        for ns in 0..3000u64 {
            trace.record(SimTime::from_nanos(ns), ByteSize::CACHELINE);
        }
        let pts = trace.finish(SimTime::from_nanos(3000));
        assert_eq!(pts.len(), 3);
        for p in &pts {
            assert!((p.bandwidth.as_gb_per_s() - 64.0).abs() < 1e-9);
        }
        assert_eq!(pts[0].at, SimTime::ZERO);
        assert_eq!(pts[1].at, SimTime::from_micros(1));
    }

    #[test]
    fn idle_windows_report_zero() {
        let mut trace = BandwidthTrace::new(SimDuration::from_micros(1));
        trace.record(SimTime::from_nanos(100), ByteSize::from_bytes(1000));
        // Nothing delivered in window [1µs, 2µs).
        trace.record(SimTime::from_nanos(2100), ByteSize::from_bytes(2000));
        let pts = trace.finish(SimTime::from_micros(3));
        assert_eq!(pts.len(), 3);
        assert!(pts[0].bandwidth.as_gb_per_s() > 0.0);
        assert_eq!(pts[1].bandwidth, Bandwidth::ZERO);
        assert!(pts[2].bandwidth.as_gb_per_s() > 0.0);
    }

    #[test]
    fn finish_closes_partial_horizon() {
        let mut trace = BandwidthTrace::new(SimDuration::from_millis(10));
        trace.record(SimTime::from_millis(5), ByteSize::from_mib(1));
        let pts = trace.finish(SimTime::from_millis(40));
        assert_eq!(pts.len(), 4);
        assert!(pts[0].bandwidth.as_gb_per_s() > 0.0);
        assert_eq!(pts[3].bandwidth, Bandwidth::ZERO);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = BandwidthTrace::new(SimDuration::ZERO);
    }

    #[test]
    fn gauge_windows_report_mean_and_max() {
        let mut g = GaugeTrace::new(SimDuration::from_micros(1));
        g.record(SimTime::from_nanos(100), 2.0);
        g.record(SimTime::from_nanos(200), 4.0);
        // Window [1µs, 2µs) has no samples.
        g.record(SimTime::from_nanos(2100), 7.0);
        let pts = g.finish(SimTime::from_micros(3));
        assert_eq!(pts.len(), 3);
        assert!((pts[0].mean - 3.0).abs() < 1e-12);
        assert_eq!(pts[0].max, 4.0);
        assert_eq!(pts[0].at, SimTime::ZERO);
        assert_eq!(pts[1].mean, 0.0);
        assert_eq!(pts[1].max, 0.0);
        assert_eq!(pts[2].max, 7.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn gauge_zero_window_rejected() {
        let _ = GaugeTrace::new(SimDuration::ZERO);
    }
}
