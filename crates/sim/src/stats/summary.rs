//! Scalar streaming summary (Welford).

use serde::{Deserialize, Serialize};

/// Streaming mean/variance/min/max over `f64` samples, using Welford's
/// numerically stable online algorithm.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean, or NaN when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance, or NaN when empty.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation, or NaN when empty.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or NaN when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest sample, or NaN when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another summary into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_nan() {
        let s = Summary::new();
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
        assert!(s.min().is_nan());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn simple_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 100.0).collect();
        let mut whole = Summary::new();
        xs.iter().for_each(|&x| whole.record(x));

        let mut left = Summary::new();
        let mut right = Summary::new();
        xs[..400].iter().for_each(|&x| left.record(x));
        xs[400..].iter().for_each(|&x| right.record(x));
        left.merge(&right);

        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::new();
        s.record(3.0);
        let before = s.clone();
        s.merge(&Summary::new());
        assert_eq!(s.count(), before.count());
        assert_eq!(s.mean(), before.mean());

        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 3.0);
    }
}
