//! Streaming statistics.
//!
//! The paper reports average and P999 tail latency (Figure 3, Table 2) and
//! windowed bandwidth traces (Figure 5). These collectors are streaming —
//! O(1) per sample — because bandwidth experiments record millions of
//! transaction completions.

mod histogram;
mod spans;
mod summary;
mod timeseries;

pub use histogram::LatencyHistogram;
pub use spans::{HopEvent, SpanCollector, TxnSpan};
pub use summary::Summary;
pub use timeseries::{BandwidthTrace, GaugePoint, GaugeTrace, TracePoint};
