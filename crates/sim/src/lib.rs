//! # chiplet-sim
//!
//! Deterministic discrete-event simulation core underpinning the server chiplet
//! networking reproduction.
//!
//! This crate deliberately contains **no domain knowledge** about chiplets; it
//! provides the four primitives every engine in the workspace builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-granularity virtual time,
//! * [`EventQueue`] — a total-order event queue with stable FIFO tie-breaking so
//!   that every run with the same seed is bit-identical,
//! * [`DetRng`] — a seedable deterministic random-number generator,
//! * [`stats`] — streaming statistics (log-bucket latency histograms with tail
//!   quantiles, Welford mean/variance, windowed bandwidth time series),
//! * [`DemandSchedule`] — piecewise-constant offered-load schedules shared by
//!   every engine in the workspace.
//!
//! The design follows the smoltcp school: event-driven, allocation-conscious,
//! simple and robust, with behaviour that is identical run-to-run. Simulations
//! are CPU-bound deterministic computations, so there is no async runtime here;
//! parallelism (when needed for parameter sweeps) lives in the benchmark
//! harness, not the engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domain;
pub mod event;
pub mod metrics;
pub mod profile;
pub mod rng;
pub mod schedule;
pub mod stats;
pub mod time;
pub mod units;
pub mod wheel;

pub use domain::{DomainScheduler, EventLog, LoggedPush};
pub use event::{EventQueue, ScheduledEvent};
pub use metrics::{MetricsSink, NullSink, SeriesHandle, SeriesKind};
pub use profile::{DepthHistogram, PhaseId, PhaseProfiler, PhaseReport, PhaseStat};
pub use rng::DetRng;
pub use schedule::DemandSchedule;
pub use time::{SimDuration, SimTime};
pub use units::{Bandwidth, ByteSize};
pub use wheel::WheelQueue;
