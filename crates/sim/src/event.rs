//! The event queue.
//!
//! A discrete-event simulation is a loop over a priority queue ordered by
//! virtual time. Determinism requires a *total* order: when two events share a
//! timestamp, they must pop in a stable order. We break ties by insertion
//! sequence number (FIFO among equal timestamps), which makes every simulation
//! replayable bit-for-bit from its seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event extracted from the queue: when it fires and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The instant the event fires.
    pub at: SimTime,
    /// Monotone insertion index; exposes the deterministic tie-break order.
    pub seq: u64,
    /// The caller's payload.
    pub payload: E,
}

/// Internal heap entry. `BinaryHeap` is a max-heap, so ordering is reversed:
/// the *smallest* `(at, seq)` must compare greatest.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: earliest time (then lowest seq) is the heap maximum.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// Events are popped in nondecreasing time order; events scheduled for the
/// same instant pop in the order they were pushed.
///
/// ```
/// use chiplet_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(20), "late");
/// q.push(SimTime::from_nanos(10), "early");
/// q.push(SimTime::from_nanos(10), "early-second");
///
/// assert_eq!(q.pop().unwrap().payload, "early");
/// assert_eq!(q.pop().unwrap().payload, "early-second");
/// assert_eq!(q.pop().unwrap().payload, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Time of the last popped event; used to detect scheduling into the past.
    watermark: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Schedules `payload` to fire at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the last popped event's time: an engine
    /// scheduling into the past is a logic bug that would silently corrupt
    /// causality, so it fails fast.
    pub fn push(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.watermark,
            "event scheduled into the past: {} < current time {}",
            at,
            self.watermark
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, advancing the watermark.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop().map(|e| {
            self.watermark = e.at;
            ScheduledEvent {
                at: e.at,
                seq: e.seq,
                payload: e.payload,
            }
        })
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The time of the most recently popped event (the current simulation
    /// time from the queue's perspective).
    pub fn now(&self) -> SimTime {
        self.watermark
    }

    /// Discards all pending events but keeps the watermark and sequence
    /// counter, preserving determinism of subsequent pushes.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5u64, 3, 9, 1, 7] {
            q.push(SimTime::from_nanos(t), t);
        }
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e.payload);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(42);
        for i in 0..100 {
            q.push(t, i);
        }
        let popped: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn watermark_tracks_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), ());
        q.push(SimTime::from_nanos(30), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(10));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(30));
    }

    #[test]
    #[should_panic(expected = "scheduled into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(100), ());
        q.pop();
        q.push(SimTime::from_nanos(50), ());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(7), 'a');
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_retains_watermark() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), ());
        q.pop();
        q.push(SimTime::from_nanos(20), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_nanos(10));
    }
}
