//! Metrics over fluid traces.
//!
//! The harvest-time metric of Figure 5 — how long an unthrottled flow takes
//! to claim bandwidth another flow released — is reused by the fig5/fig6
//! studies and the BDP-control experiments, so it lives here rather than in
//! each binary.

use chiplet_sim::stats::TracePoint;
use chiplet_sim::{Bandwidth, SimTime};

/// Milliseconds after `from` until the trace first reaches `threshold`.
///
/// Points before `from` are ignored; returns `None` when the trace never
/// reaches the threshold (e.g. an unstable link that keeps oscillating).
pub fn harvest_time_ms(trace: &[TracePoint], from: SimTime, threshold: Bandwidth) -> Option<u64> {
    let thr = threshold.as_gb_per_s();
    trace
        .iter()
        .filter(|p| p.at >= from)
        .find(|p| p.bandwidth.as_gb_per_s() >= thr)
        .map(|p| (p.at.as_nanos() - from.as_nanos()) / 1_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(ms: u64, gb: f64) -> TracePoint {
        TracePoint {
            at: SimTime::from_millis(ms),
            bandwidth: Bandwidth::from_gb_per_s(gb),
        }
    }

    #[test]
    fn finds_first_crossing_after_from() {
        let trace = vec![
            pt(0, 20.0), // before `from`: ignored even though above threshold
            pt(2000, 10.0),
            pt(2050, 12.0),
            pt(2100, 18.0),
            pt(2150, 19.0),
        ];
        let t = harvest_time_ms(
            &trace,
            SimTime::from_secs(2),
            Bandwidth::from_gb_per_s(18.0),
        );
        assert_eq!(t, Some(100));
    }

    #[test]
    fn none_when_never_reached() {
        let trace = vec![pt(2000, 10.0), pt(2100, 11.0)];
        assert_eq!(
            harvest_time_ms(
                &trace,
                SimTime::from_secs(2),
                Bandwidth::from_gb_per_s(18.0)
            ),
            None
        );
    }

    #[test]
    fn empty_trace_is_none() {
        assert_eq!(harvest_time_ms(&[], SimTime::ZERO, Bandwidth::ZERO), None);
    }
}
