//! The sender-driven equilibrium allocator.
//!
//! §3.5: under over-subscription, "the flow with a higher demand takes more
//! bandwidth than its equal share" (Figure 4, cases 2/4), while Figure 5
//! shows that a flow throttled *below* its fair share keeps its full demand
//! (the unthrottled competitor takes exactly the unused bandwidth). The
//! equilibrium that matches both observations is **bounded-proportional**:
//!
//! 1. flows whose demand does not exceed their max-min fair share are fully
//!    satisfied (their modest in-flight needs always fit the hardware MLP
//!    budget);
//! 2. the remaining capacity is split among the rest in proportion to
//!    demand — the aggressive sender's extra in-flight pressure wins a
//!    proportionally larger share of the traffic-oblivious FIFO arbiter.
//!
//! The over-subscriber split runs as *proportional progressive filling*:
//! pin the flows of the most-constrained link at their proportional share,
//! release the capacity they no longer need on their other links, and
//! repeat with the remaining flows. Restarting after every pin is what
//! keeps each saturated link fully utilized — a one-shot scaling would
//! strand the capacity freed by flows bottlenecked elsewhere.

/// Reusable work buffers for the allocators.
///
/// One epoch of [`proportional_allocate`] allocates roughly ten short-lived
/// vectors; a fluid run executes thousands of epochs. Holding the buffers
/// here and calling [`proportional_allocate_into`] makes the steady-state
/// epoch allocation-free. The rates produced are **bit-identical** to the
/// allocating entry points — only the storage is reused, never the
/// arithmetic order.
#[derive(Debug, Default, Clone)]
pub struct AllocScratch {
    fair: Vec<f64>,
    satisfied: Vec<bool>,
    residual: Vec<f64>,
    active: Vec<usize>,
    next_active: Vec<usize>,
    weights: Vec<f64>,
    usage: Vec<f64>,
    // max_min buffers.
    mm_frozen: Vec<bool>,
    mm_residual: Vec<f64>,
    mm_active: Vec<usize>,
    mm_count: Vec<usize>,
}

/// Computes the sender-driven equilibrium allocation.
///
/// * `demands[i]` — flow `i`'s offered rate (any consistent unit); use
///   `f64::INFINITY` for an unthrottled flow.
/// * `flow_links[i]` — indices into `capacities` of the links flow `i`
///   crosses. An **empty** link list means the flow does not touch the
///   shared fabric: a finite demand is granted verbatim and an unthrottled
///   (infinite-demand) flow gets `0.0`, since no link bounds it — never
///   the old `f64::MAX / 4` sentinel.
/// * `capacities[l]` — link `l`'s capacity.
///
/// Returns per-flow rates: feasible on every link, never above demand,
/// max-min-protective for below-fair-share flows, demand-proportional
/// among the over-subscribers on each saturated link, and
/// work-conserving — a saturated link crossed by an unthrottled flow is
/// fully utilized.
pub fn proportional_allocate(
    demands: &[f64],
    flow_links: &[Vec<usize>],
    capacities: &[f64],
) -> Vec<f64> {
    let mut out = Vec::new();
    proportional_allocate_into(
        demands,
        flow_links,
        capacities,
        &mut AllocScratch::default(),
        &mut out,
    );
    out
}

/// [`proportional_allocate`] into caller-provided buffers: `out` receives
/// the per-flow rates (cleared first), `scratch` supplies every internal
/// work vector. Allocation-free once the buffers have grown to the
/// instance size; rates are bit-identical to the allocating entry point.
pub fn proportional_allocate_into(
    demands: &[f64],
    flow_links: &[Vec<usize>],
    capacities: &[f64],
    scratch: &mut AllocScratch,
    out: &mut Vec<f64>,
) {
    assert_eq!(demands.len(), flow_links.len());
    let n = demands.len();

    // Phase A: max-min fair rates (progressive filling).
    let AllocScratch {
        fair,
        satisfied,
        residual,
        active,
        next_active,
        weights,
        usage,
        mm_frozen,
        mm_residual,
        mm_active,
        mm_count,
    } = scratch;
    max_min_into(
        demands,
        flow_links,
        capacities,
        fair,
        mm_frozen,
        mm_residual,
        mm_active,
        mm_count,
    );

    // Flows satisfied at their max-min rate keep their demand.
    satisfied.clear();
    satisfied.extend(
        demands
            .iter()
            .zip(fair.iter())
            .map(|(&d, &f)| d.is_finite() && d <= f + 1e-9),
    );

    let rate = out;
    rate.clear();
    rate.resize(n, 0.0);
    residual.clear();
    residual.extend_from_slice(capacities);
    for i in 0..n {
        if satisfied[i] {
            rate[i] = demands[i].max(0.0);
            for &l in &flow_links[i] {
                residual[l] = (residual[l] - rate[i]).max(0.0);
            }
        }
    }

    // Phase B: the rest split the residual capacity proportionally to
    // demand via proportional progressive filling. Each round pins the
    // flows of the tightest over-subscribed link at their proportional
    // share and treats them as satisfied, so capacity they release on
    // their *other* links is redistributed to the remaining flows in the
    // next round instead of being stranded (work conservation).
    //
    // Unthrottled fabric-less flows (infinite demand, no links) stay at
    // 0.0: nothing bounds them, so no finite rate is meaningful.
    active.clear();
    active.extend((0..n).filter(|&i| !satisfied[i] && !flow_links[i].is_empty()));
    // Each round pins at least one flow, so n rounds always suffice.
    for _ in 0..=n {
        if active.is_empty() {
            break;
        }
        // Pinning weight: the demand (finite) or the tightest remaining
        // residual (unthrottled).
        weights.clear();
        weights.extend(active.iter().map(|&i| {
            if demands[i].is_finite() {
                demands[i].max(0.0)
            } else {
                flow_links[i]
                    .iter()
                    .map(|&l| residual[l])
                    .fold(f64::INFINITY, f64::min)
            }
        }));
        usage.clear();
        usage.resize(capacities.len(), 0.0);
        for (k, &i) in active.iter().enumerate() {
            for &l in &flow_links[i] {
                usage[l] += weights[k];
            }
        }
        // The most-constrained link decides who gets pinned this round.
        let mut worst = 1.0f64;
        let mut bottleneck = None;
        for (l, &u) in usage.iter().enumerate() {
            if u > residual[l] && u > 0.0 {
                let s = residual[l] / u;
                if s < worst {
                    worst = s;
                    bottleneck = Some(l);
                }
            }
        }
        let Some(bl) = bottleneck else {
            // No link over-subscribed: every remaining flow takes its
            // full weight.
            for (k, &i) in active.iter().enumerate() {
                rate[i] = weights[k];
                for &l in &flow_links[i] {
                    residual[l] = (residual[l] - weights[k]).max(0.0);
                }
            }
            break;
        };
        next_active.clear();
        for (k, &i) in active.iter().enumerate() {
            if flow_links[i].contains(&bl) {
                let r = weights[k] * worst;
                rate[i] = r;
                for &l in &flow_links[i] {
                    residual[l] = (residual[l] - r).max(0.0);
                }
            } else {
                next_active.push(i);
            }
        }
        std::mem::swap(active, next_active);
    }
}

/// Max-min fair rates by progressive filling (demand-capped).
///
/// A flow with an **empty** link list does not touch the shared fabric:
/// a finite demand is returned verbatim and an unthrottled
/// (infinite-demand) flow gets `0.0` — no link bounds it, so no finite
/// "fair" rate exists, and the old `f64::MAX / 4` sentinel leaked absurd
/// throughputs into downstream reports.
pub fn max_min(demands: &[f64], flow_links: &[Vec<usize>], capacities: &[f64]) -> Vec<f64> {
    let mut rate = Vec::new();
    max_min_into(
        demands,
        flow_links,
        capacities,
        &mut rate,
        &mut Vec::new(),
        &mut Vec::new(),
        &mut Vec::new(),
        &mut Vec::new(),
    );
    rate
}

/// [`max_min`] into caller-provided buffers (bit-identical rates).
#[allow(clippy::too_many_arguments)]
fn max_min_into(
    demands: &[f64],
    flow_links: &[Vec<usize>],
    capacities: &[f64],
    rate: &mut Vec<f64>,
    frozen: &mut Vec<bool>,
    residual: &mut Vec<f64>,
    active: &mut Vec<usize>,
    count: &mut Vec<usize>,
) {
    assert_eq!(demands.len(), flow_links.len());
    let n = demands.len();
    rate.clear();
    rate.resize(n, 0.0);
    frozen.clear();
    frozen.extend(demands.iter().map(|&d| d <= 0.0));
    residual.clear();
    residual.extend_from_slice(capacities);
    for i in 0..n {
        if flow_links[i].is_empty() && !frozen[i] {
            rate[i] = if demands[i].is_finite() {
                demands[i]
            } else {
                0.0
            };
            frozen[i] = true;
        }
    }

    for _ in 0..=n {
        active.clear();
        active.extend((0..n).filter(|&i| !frozen[i]));
        if active.is_empty() {
            break;
        }
        // Count active flows per link.
        count.clear();
        count.resize(capacities.len(), 0);
        for &i in active.iter() {
            for &l in &flow_links[i] {
                count[l] += 1;
            }
        }
        // The fill can rise until a demand is met or a link exhausts.
        let mut delta = f64::INFINITY;
        for &i in active.iter() {
            if demands[i].is_finite() {
                delta = delta.min(demands[i] - rate[i]);
            }
        }
        for (l, &c) in count.iter().enumerate() {
            if c > 0 {
                delta = delta.min(residual[l] / c as f64);
            }
        }
        if !delta.is_finite() {
            for &i in active.iter() {
                rate[i] = f64::MAX / 4.0;
                frozen[i] = true;
            }
            break;
        }
        let delta = delta.max(0.0);
        for &i in active.iter() {
            rate[i] += delta;
            for &l in &flow_links[i] {
                residual[l] -= delta;
            }
        }
        for &i in active.iter() {
            let met = demands[i].is_finite() && rate[i] >= demands[i] - 1e-9;
            let stuck = flow_links[i].iter().any(|&l| residual[l] <= 1e-9);
            if met || stuck {
                frozen[i] = true;
            }
        }
        if frozen.iter().all(|&f| f) {
            break;
        }
    }
}

/// An incremental equilibrium solver: [`proportional_allocate`] behind a
/// demand memo.
///
/// The fluid engine re-solves the equilibrium every integration epoch, yet
/// between demand-schedule breakpoints the demand vector — and therefore
/// the equilibrium, a pure function of `(demands, topology)` — cannot
/// change. This wrapper re-solves only when a demand differs **bitwise**
/// from the previous epoch's (or after [`IncrementalAllocator::invalidate`],
/// required whenever `flow_links`/`capacities` change), returning the
/// cached rates otherwise. Rates are bit-identical to calling the
/// from-scratch solver every epoch; the steady state performs one `f64`
/// comparison per flow and zero allocations.
#[derive(Debug, Default, Clone)]
pub struct IncrementalAllocator {
    last_demands: Vec<f64>,
    rates: Vec<f64>,
    valid: bool,
    scratch: AllocScratch,
    memo_hits: u64,
    memo_misses: u64,
}

impl IncrementalAllocator {
    /// An empty allocator; the first [`IncrementalAllocator::allocate`]
    /// call always solves.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the memo: the next call re-solves unconditionally. Call this
    /// whenever the flow set, link sets, or capacities change — the memo
    /// keys on demands alone.
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// The equilibrium rates for `demands`, re-solving only when a demand
    /// changed bitwise since the previous call.
    pub fn allocate(
        &mut self,
        demands: &[f64],
        flow_links: &[Vec<usize>],
        capacities: &[f64],
    ) -> &[f64] {
        let unchanged = self.valid
            && self.last_demands.len() == demands.len()
            && self
                .last_demands
                .iter()
                .zip(demands)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !unchanged {
            self.memo_misses += 1;
            proportional_allocate_into(
                demands,
                flow_links,
                capacities,
                &mut self.scratch,
                &mut self.rates,
            );
            self.last_demands.clear();
            self.last_demands.extend_from_slice(demands);
            self.valid = true;
        } else {
            self.memo_hits += 1;
        }
        &self.rates
    }

    /// Calls served from the memo without re-solving.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// Calls that ran the full solver (demand change or invalidation).
    pub fn memo_misses(&self) -> u64 {
        self.memo_misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_subscribed_flows_get_demands() {
        let rates = proportional_allocate(&[5.0, 8.0], &[vec![0], vec![0]], &[30.0]);
        assert!((rates[0] - 5.0).abs() < 1e-9);
        assert!((rates[1] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn over_subscribed_split_is_proportional() {
        // Demands 30 and 20 over capacity 33, both above the 16.5 fair
        // share → 19.8 and 13.2 (3:2 kept) — Figure 4 case 4.
        let rates = proportional_allocate(&[30.0, 20.0], &[vec![0], vec![0]], &[33.0]);
        assert!((rates[0] + rates[1] - 33.0).abs() < 1e-6);
        assert!((rates[0] / rates[1] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn equal_demands_split_equally() {
        let rates = proportional_allocate(&[25.0, 25.0], &[vec![0], vec![0]], &[33.0]);
        assert!((rates[0] - rates[1]).abs() < 1e-9);
        assert!((rates[0] - 16.5).abs() < 1e-6);
    }

    #[test]
    fn unthrottled_pair_splits_capacity() {
        let inf = f64::INFINITY;
        let rates = proportional_allocate(&[inf, inf], &[vec![0], vec![0]], &[40.0]);
        assert!((rates[0] - 20.0).abs() < 1e-6);
        assert!((rates[1] - 20.0).abs() < 1e-6);
    }

    #[test]
    fn below_fair_share_flow_is_protected() {
        // Figure 5's premise: a flow throttled below its fair share keeps
        // its demand; the aggressive one takes exactly the rest.
        let rates = proportional_allocate(&[10.0, 40.0], &[vec![0], vec![0]], &[25.0]);
        assert!((rates[0] - 10.0).abs() < 1e-6, "{rates:?}");
        assert!((rates[1] - 15.0).abs() < 1e-6, "{rates:?}");
    }

    #[test]
    fn fig5_equilibrium_shape() {
        // Capacity 33.2; flow 0 throttled to half − 2; flow 1 unthrottled.
        let cap = 33.2;
        let d0 = cap / 2.0 - 2.0;
        let rates = proportional_allocate(&[d0, f64::INFINITY], &[vec![0], vec![0]], &[cap]);
        assert!((rates[0] - d0).abs() < 1e-6, "{rates:?}");
        assert!((rates[1] - (cap / 2.0 + 2.0)).abs() < 1e-6, "{rates:?}");
    }

    #[test]
    fn multi_link_takes_tightest_bottleneck() {
        let rates = proportional_allocate(
            &[f64::INFINITY, 50.0],
            &[vec![0, 1], vec![1]],
            &[10.0, 100.0],
        );
        assert!((rates[0] - 10.0).abs() < 1e-6, "{rates:?}");
        assert!((rates[1] - 50.0).abs() < 1e-6);
    }

    #[test]
    fn feasibility_on_shared_chain() {
        let demands = [f64::INFINITY, f64::INFINITY, 7.0];
        let links = [vec![0, 1], vec![1, 2], vec![2]];
        let caps = [20.0, 18.0, 16.0];
        let rates = proportional_allocate(&demands, &links, &caps);
        for (l, &cap) in caps.iter().enumerate() {
            let used: f64 = links
                .iter()
                .zip(&rates)
                .filter(|(ls, _)| ls.contains(&l))
                .map(|(_, r)| r)
                .sum();
            assert!(used <= cap + 1e-6, "link {l}: {used} > {cap}");
        }
        assert!(rates[2] <= 7.0 + 1e-9);
    }

    #[test]
    fn max_min_basics() {
        let rates = max_min(&[5.0, f64::INFINITY], &[vec![0], vec![0]], &[30.0]);
        assert!((rates[0] - 5.0).abs() < 1e-9);
        assert!((rates[1] - 25.0).abs() < 1e-9);
    }

    #[test]
    fn work_conservation_after_cross_link_throttle() {
        // Three flows, two links. Flow 0 wants 50 through links 0 and 1
        // but link 0 caps it at 10; flow 2 keeps its modest 5. The old
        // one-shot scaling computed flow 1's share while flow 0 still
        // claimed 50 on link 1 and never redistributed after flow 0 fell
        // to 10, stranding ~23 GB/s of link 1. §3.5: the unthrottled
        // competitor takes exactly the unused bandwidth.
        let demands = [50.0, f64::INFINITY, 5.0];
        let links = [vec![0, 1], vec![1], vec![1]];
        let caps = [10.0, 100.0];
        let rates = proportional_allocate(&demands, &links, &caps);
        assert!((rates[0] - 10.0).abs() < 1e-6, "{rates:?}");
        assert!((rates[2] - 5.0).abs() < 1e-6, "{rates:?}");
        assert!(
            (rates[1] - 85.0).abs() < 1e-6,
            "link 1 capacity stranded: {rates:?}"
        );
        let used: f64 = rates.iter().sum();
        assert!((used - 100.0).abs() < 1e-6, "link 1 under-utilized: {used}");
    }

    #[test]
    fn memo_counts_hits_and_misses() {
        let mut alloc = IncrementalAllocator::new();
        let links = [vec![0], vec![0]];
        let caps = [30.0];
        alloc.allocate(&[5.0, 8.0], &links, &caps);
        alloc.allocate(&[5.0, 8.0], &links, &caps);
        alloc.allocate(&[5.0, 8.0], &links, &caps);
        assert_eq!((alloc.memo_misses(), alloc.memo_hits()), (1, 2));
        alloc.allocate(&[5.0, 9.0], &links, &caps);
        assert_eq!((alloc.memo_misses(), alloc.memo_hits()), (2, 2));
        alloc.invalidate();
        alloc.allocate(&[5.0, 9.0], &links, &caps);
        assert_eq!((alloc.memo_misses(), alloc.memo_hits()), (3, 2));
    }

    #[test]
    fn empty_link_list_is_demand_or_zero() {
        // A fabric-less finite flow keeps its demand; a fabric-less
        // unthrottled flow gets 0, not the f64::MAX / 4 sentinel. Flows
        // on real links are unaffected.
        let demands = [5.0, f64::INFINITY, f64::INFINITY];
        let links = [vec![], vec![], vec![0]];
        let rates = proportional_allocate(&demands, &links, &[10.0]);
        assert!((rates[0] - 5.0).abs() < 1e-9, "{rates:?}");
        assert_eq!(rates[1], 0.0, "{rates:?}");
        assert!((rates[2] - 10.0).abs() < 1e-6, "{rates:?}");

        let fair = max_min(&demands, &links, &[10.0]);
        assert!((fair[0] - 5.0).abs() < 1e-9, "{fair:?}");
        assert_eq!(fair[1], 0.0, "{fair:?}");
        assert!(fair[2] <= 10.0 + 1e-9, "{fair:?}");
        assert!(
            rates.iter().chain(&fair).all(|&r| r < 1e12),
            "sentinel leaked: {rates:?} {fair:?}"
        );
    }
}
