//! The fluid simulation loop.
//!
//! Fixed-step integration: at every tick the engine evaluates each flow's
//! demand schedule, computes the sender-driven equilibrium, and relaxes the
//! achieved rates toward it — upward with the link's harvest time constant,
//! downward instantly. Links flagged unstable add AR(1) noise to harvested
//! bandwidth (the 7302 IF behavior the paper attributes to the intra-CC
//! queueing module).

use chiplet_sim::stats::TracePoint;
use chiplet_sim::{
    Bandwidth, DetRng, MetricsSink, NullSink, SeriesHandle, SeriesKind, SimDuration, SimTime,
};
use serde::{Deserialize, Serialize};

use crate::alloc::IncrementalAllocator;

/// Harvest-noise parameters for an unstable link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Instability {
    /// Noise amplitude as a fraction of the flow's *harvested* bandwidth
    /// (the amount above its long-run equal share).
    pub amplitude: f64,
    /// AR(1) correlation per tick, in `[0, 1)`.
    pub correlation: f64,
}

/// A shared link in the fluid model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FluidLink {
    /// Display name ("IF", "GMI", "P-Link").
    pub name: String,
    /// Directional capacity.
    pub capacity: Bandwidth,
    /// Harvest ramp time constant: reaching ~95% of newly available
    /// bandwidth takes ≈3τ.
    pub harvest_tau: SimDuration,
    /// Harvest instability, when present.
    pub instability: Option<Instability>,
}

impl FluidLink {
    /// An EPYC 9634 Infinity-Fabric-class link: ~100 ms harvesting.
    pub fn if_9634() -> Self {
        FluidLink {
            name: "IF".into(),
            capacity: Bandwidth::from_gb_per_s(33.2),
            harvest_tau: SimDuration::from_millis(33),
            instability: None,
        }
    }

    /// An EPYC 9634 P-Link/CXL-class link: ~500 ms harvesting.
    pub fn plink_9634() -> Self {
        FluidLink {
            name: "P-Link".into(),
            capacity: Bandwidth::from_gb_per_s(24.3),
            harvest_tau: SimDuration::from_millis(165),
            instability: None,
        }
    }

    /// An EPYC 7302 Infinity-Fabric-class link: harvesting with the
    /// "drastic variation" the paper observes.
    pub fn if_7302() -> Self {
        FluidLink {
            name: "IF".into(),
            capacity: Bandwidth::from_gb_per_s(25.1),
            harvest_tau: SimDuration::from_millis(33),
            instability: Some(Instability {
                amplitude: 0.9,
                correlation: 0.7,
            }),
        }
    }
}

pub use chiplet_sim::schedule::DemandSchedule;

/// One flow in the fluid model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FluidFlowSpec {
    /// Display name.
    pub name: String,
    /// Demand over time.
    pub demand: DemandSchedule,
    /// Indices into the link table of the links crossed.
    pub links: Vec<usize>,
}

/// The fluid engine.
pub struct FluidSim {
    links: Vec<FluidLink>,
    flows: Vec<FluidFlowSpec>,
}

impl FluidSim {
    /// Creates an engine over a link table.
    pub fn new(links: Vec<FluidLink>) -> Self {
        FluidSim {
            links,
            flows: Vec::new(),
        }
    }

    /// Adds a flow.
    ///
    /// # Panics
    ///
    /// Panics on a link index out of range.
    pub fn add_flow(&mut self, flow: FluidFlowSpec) {
        for &l in &flow.links {
            assert!(l < self.links.len(), "flow '{}': bad link {l}", flow.name);
        }
        self.flows.push(flow);
    }

    /// Runs to `horizon` with step `dt`, sampling every `sample` interval.
    /// Returns one trace per flow, in addition order.
    ///
    /// # Panics
    ///
    /// Panics on a zero `dt` or `sample`.
    pub fn run(
        &self,
        horizon: SimTime,
        dt: SimDuration,
        sample: SimDuration,
        seed: u64,
    ) -> Vec<Vec<TracePoint>> {
        self.run_instrumented(horizon, dt, sample, seed, &mut NullSink)
    }

    /// Like [`FluidSim::run`], additionally reporting per-epoch telemetry
    /// into `sink` (timestamps are sim time — ticks, not wall clock):
    ///
    /// * `fluid_ticks` — integration epochs executed;
    /// * `fluid_flow_bytes{flow}` — bytes delivered per epoch at the
    ///   post-feasibility observed rate;
    /// * `fluid_flow_rate_gb_s{flow}` — the observed-rate distribution;
    /// * `fluid_harvest_ramp_ticks{flow}` — epochs spent ramping toward a
    ///   higher equilibrium (τ-limited harvesting);
    /// * `fluid_flow_final_rate_gb_s{flow}` — the rate at the horizon.
    ///
    /// # Panics
    ///
    /// Panics on a zero `dt` or `sample`.
    pub fn run_instrumented(
        &self,
        horizon: SimTime,
        dt: SimDuration,
        sample: SimDuration,
        seed: u64,
        sink: &mut dyn MetricsSink,
    ) -> Vec<Vec<TracePoint>> {
        assert!(
            !dt.is_zero() && !sample.is_zero(),
            "dt and sample must be positive"
        );
        let n = self.flows.len();
        let mut rng = DetRng::seed_from_u64(seed);
        let caps: Vec<f64> = self
            .links
            .iter()
            .map(|l| l.capacity.as_gb_per_s())
            .collect();
        let flow_links: Vec<Vec<usize>> = self.flows.iter().map(|f| f.links.clone()).collect();

        // Per-flow achieved rate (GB/s) and AR(1) noise state.
        let mut rate = vec![0.0f64; n];
        let mut noise = vec![0.0f64; n];
        // Long-run equal share per flow (for the instability reference):
        // equal split of its tightest link among the flows crossing it.
        let equal_share: Vec<f64> = (0..n)
            .map(|i| {
                self.flows[i]
                    .links
                    .iter()
                    .map(|&l| {
                        let crossing = flow_links.iter().filter(|ls| ls.contains(&l)).count();
                        caps[l] / crossing.max(1) as f64
                    })
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();

        // Per-flow constants, hoisted out of the tick loop: the ramp
        // coefficient (the slowest crossed link's τ and the fixed dt give a
        // fixed exponential step) and the governing instability (first
        // flagged link crossed, if any).
        let dt_s = dt.as_secs_f64();
        let ramp_k: Vec<f64> = self
            .flows
            .iter()
            .map(|f| {
                let tau = f
                    .links
                    .iter()
                    .map(|&l| self.links[l].harvest_tau.as_secs_f64())
                    .fold(0.0f64, f64::max);
                if tau > 0.0 {
                    1.0 - (-dt_s / tau).exp()
                } else {
                    1.0
                }
            })
            .collect();
        let instability: Vec<Option<Instability>> = self
            .flows
            .iter()
            .map(|f| {
                f.links
                    .iter()
                    .filter_map(|&l| self.links[l].instability)
                    .next()
            })
            .collect();
        // Link → crossing flows, ascending flow order (the feasibility sum
        // must accumulate in the same order as before).
        let mut link_flows: Vec<Vec<usize>> = vec![Vec::new(); self.links.len()];
        for (i, links) in flow_links.iter().enumerate() {
            for &l in links {
                link_flows[l].push(i);
            }
        }

        let mut traces: Vec<Vec<TracePoint>> = vec![Vec::new(); n];
        let mut accum = vec![0.0f64; n];
        let mut accum_ticks = 0u64;
        let mut next_sample = SimTime::ZERO + sample;

        // Per-tick series, resolved to dense sink handles lazily — at first
        // sample, so a sink that materializes series on first touch sees
        // the same creation order as with the string methods. `None` =
        // unresolved; `Some(None)` = the sink takes strings only.
        let mut h_ticks: Option<Option<SeriesHandle>> = None;
        let mut h_ramp: Vec<Option<Option<SeriesHandle>>> = vec![None; n];
        let mut h_bytes: Vec<Option<Option<SeriesHandle>>> = vec![None; n];
        let mut h_rate: Vec<Option<Option<SeriesHandle>>> = vec![None; n];

        // Demands are piecewise-constant, so the demand vector — and with it
        // the equilibrium, a pure function of (demands, topology) — can only
        // change at a schedule breakpoint. Re-evaluate the schedules only at
        // the first tick at/after each breakpoint; the incremental allocator
        // then re-solves only when a demand actually changed bitwise.
        let mut alloc = IncrementalAllocator::new();
        let mut demands = vec![0.0f64; n];
        let mut observed = vec![0.0f64; n];
        let mut next_change: Option<SimTime> = Some(SimTime::ZERO);
        let mut t = SimTime::ZERO;
        while t < horizon {
            if next_change.is_some_and(|c| t >= c) {
                for (d, f) in demands.iter_mut().zip(&self.flows) {
                    *d = f.demand.at(t).map_or(f64::INFINITY, |b| b.as_gb_per_s());
                }
                next_change = self
                    .flows
                    .iter()
                    .filter_map(|f| f.demand.next_change_after(t))
                    .min();
            }
            let equilibrium = alloc.allocate(&demands, &flow_links, &caps);

            // Relax toward equilibrium: instant down, τ-limited up.
            for i in 0..n {
                if equilibrium[i] <= rate[i] {
                    rate[i] = equilibrium[i];
                } else {
                    let labels = [("flow", self.flows[i].name.as_str())];
                    match *h_ramp[i].get_or_insert_with(|| {
                        sink.series_handle(SeriesKind::Counter, "fluid_harvest_ramp_ticks", &labels)
                    }) {
                        Some(h) => sink.counter_add_at_handle(h, t, 1.0),
                        None => sink.counter_add_at("fluid_harvest_ramp_ticks", &labels, t, 1.0),
                    }
                    rate[i] += (equilibrium[i] - rate[i]) * ramp_k[i];
                }
            }

            // Instability: noisy harvested bandwidth on flagged links.
            observed.copy_from_slice(&rate);
            for i in 0..n {
                if let Some(inst) = instability[i] {
                    let harvested = (rate[i] - equal_share[i]).max(0.0);
                    if harvested > 1e-9 {
                        let eps = rng.next_f64() * 2.0 - 1.0;
                        noise[i] = inst.correlation * noise[i] + (1.0 - inst.correlation) * eps;
                        observed[i] = (rate[i] + harvested * inst.amplitude * noise[i]).max(0.0);
                    } else {
                        noise[i] = 0.0;
                    }
                }
            }

            // Enforce feasibility after noise.
            for (l, &cap) in caps.iter().enumerate() {
                let used: f64 = link_flows[l].iter().map(|&i| observed[i]).sum();
                if used > cap {
                    let s = cap / used;
                    for &i in &link_flows[l] {
                        observed[i] *= s;
                    }
                }
            }

            match *h_ticks
                .get_or_insert_with(|| sink.series_handle(SeriesKind::Counter, "fluid_ticks", &[]))
            {
                Some(h) => sink.counter_add_handle(h, 1.0),
                None => sink.counter_add("fluid_ticks", &[], 1.0),
            }
            for i in 0..n {
                accum[i] += observed[i];
                let labels = [("flow", self.flows[i].name.as_str())];
                // GB/s sustained for dt seconds → bytes this epoch.
                match *h_bytes[i].get_or_insert_with(|| {
                    sink.series_handle(SeriesKind::Counter, "fluid_flow_bytes", &labels)
                }) {
                    Some(h) => sink.counter_add_at_handle(h, t, observed[i] * dt_s * 1e9),
                    None => sink.counter_add_at(
                        "fluid_flow_bytes",
                        &labels,
                        t,
                        observed[i] * dt_s * 1e9,
                    ),
                }
                match *h_rate[i].get_or_insert_with(|| {
                    sink.series_handle(SeriesKind::Histogram, "fluid_flow_rate_gb_s", &labels)
                }) {
                    Some(h) => sink.observe_handle(h, t, observed[i]),
                    None => sink.observe("fluid_flow_rate_gb_s", &labels, t, observed[i]),
                }
            }
            accum_ticks += 1;
            t += dt;

            if t >= next_sample {
                for i in 0..n {
                    let avg = accum[i] / accum_ticks as f64;
                    traces[i].push(TracePoint {
                        at: next_sample - sample,
                        bandwidth: Bandwidth::from_gb_per_s(avg),
                    });
                    accum[i] = 0.0;
                }
                accum_ticks = 0;
                next_sample += sample;
            }
        }
        for (flow, &final_rate) in self.flows.iter().zip(rate.iter()) {
            sink.gauge_set(
                "fluid_flow_final_rate_gb_s",
                &[("flow", flow.name.as_str())],
                final_rate,
            );
        }
        // Allocator memo effectiveness (self-profiling): how many epochs
        // re-solved the equilibrium vs. reused the cached rates.
        sink.counter_add("fluid_alloc_memo_hits", &[], alloc.memo_hits() as f64);
        sink.counter_add("fluid_alloc_memo_misses", &[], alloc.memo_misses() as f64);
        traces
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gb(x: f64) -> Bandwidth {
        Bandwidth::from_gb_per_s(x)
    }

    /// The Figure 5 scenario: flow 0 throttled by 2 GB/s during [2,3) s and
    /// [4,5) s; flow 1 unthrottled.
    fn fig5(link: FluidLink) -> (FluidSim, f64) {
        let cap = link.capacity.as_gb_per_s();
        let mut sim = FluidSim::new(vec![link]);
        let half = cap / 2.0;
        sim.add_flow(FluidFlowSpec {
            name: "flow0".into(),
            demand: DemandSchedule::piecewise(vec![
                (SimTime::ZERO, None),
                (SimTime::from_secs(2), Some(gb(half - 2.0))),
                (SimTime::from_secs(3), None),
                (SimTime::from_secs(4), Some(gb(half - 2.0))),
                (SimTime::from_secs(5), None),
            ]),
            links: vec![0],
        });
        sim.add_flow(FluidFlowSpec {
            name: "flow1".into(),
            demand: DemandSchedule::constant(None),
            links: vec![0],
        });
        (sim, cap)
    }

    fn value_at(trace: &[TracePoint], t_ms: u64) -> f64 {
        trace
            .iter()
            .rev()
            .find(|p| p.at <= SimTime::from_millis(t_ms))
            .map(|p| p.bandwidth.as_gb_per_s())
            .unwrap()
    }

    #[test]
    fn steady_state_is_equal_split() {
        let (sim, cap) = fig5(FluidLink::if_9634());
        let traces = sim.run(
            SimTime::from_secs(6),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
            1,
        );
        // At 1.9 s (before the throttle) both flows sit at half capacity.
        for tr in &traces {
            let v = value_at(tr, 1900);
            assert!((v - cap / 2.0).abs() < 0.2, "steady {v} vs {}", cap / 2.0);
        }
    }

    #[test]
    fn harvesting_takes_about_100ms_on_if() {
        let (sim, cap) = fig5(FluidLink::if_9634());
        let traces = sim.run(
            SimTime::from_secs(6),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
            1,
        );
        let flow1 = &traces[1];
        let target = cap / 2.0 + 2.0;
        // Immediately after the throttle flow 1 has not yet harvested...
        let early = value_at(flow1, 2020);
        assert!(early < target - 0.5, "early {early} vs target {target}");
        // ...but within ~150 ms it has.
        let after = value_at(flow1, 2150);
        assert!(after > target - 0.3, "after 150 ms: {after} vs {target}");
        // And the release is reclaimed quickly after 3 s.
        let reclaimed = value_at(flow1, 3200);
        assert!((reclaimed - cap / 2.0).abs() < 0.5, "reclaim {reclaimed}");
    }

    #[test]
    fn plink_harvests_slower_than_if() {
        let run = |link: FluidLink| {
            let (sim, cap) = fig5(link);
            let traces = sim.run(
                SimTime::from_secs(6),
                SimDuration::from_millis(1),
                SimDuration::from_millis(10),
                1,
            );
            let target = cap / 2.0 + 2.0;
            // Time (ms after 2000) when flow 1 first reaches 95% of the
            // harvestable extra.
            let t = traces[1]
                .iter()
                .filter(|p| p.at >= SimTime::from_secs(2))
                .find(|p| p.bandwidth.as_gb_per_s() >= cap / 2.0 + 1.9)
                .map(|p| p.at.as_nanos() / 1_000_000 - 2000);
            (t, target)
        };
        let (t_if, _) = run(FluidLink::if_9634());
        let (t_plink, _) = run(FluidLink::plink_9634());
        let t_if = t_if.expect("IF harvest completes");
        let t_plink = t_plink.expect("P-Link harvest completes");
        assert!(
            t_if < 200 && t_plink > 300 && t_plink < 900,
            "harvest times: IF {t_if} ms, P-Link {t_plink} ms"
        );
    }

    #[test]
    fn the_7302_if_is_unstable() {
        let variance_of = |link: FluidLink| {
            let (sim, _) = fig5(link);
            let traces = sim.run(
                SimTime::from_secs(6),
                SimDuration::from_millis(1),
                SimDuration::from_millis(10),
                7,
            );
            // Flow 1's variance during the second throttle window.
            let vals: Vec<f64> = traces[1]
                .iter()
                .filter(|p| p.at >= SimTime::from_millis(4300) && p.at < SimTime::from_millis(4900))
                .map(|p| p.bandwidth.as_gb_per_s())
                .collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64
        };
        let stable = variance_of(FluidLink::if_9634());
        let unstable = variance_of(FluidLink::if_7302());
        assert!(
            unstable > stable * 10.0 + 0.01,
            "variance: unstable {unstable} vs stable {stable}"
        );
    }

    #[test]
    fn conservation_never_exceeds_capacity() {
        let (sim, cap) = fig5(FluidLink::if_7302());
        let traces = sim.run(
            SimTime::from_secs(6),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
            3,
        );
        for (p0, p1) in traces[0].iter().zip(&traces[1]) {
            let sum = p0.bandwidth.as_gb_per_s() + p1.bandwidth.as_gb_per_s();
            assert!(sum <= cap + 1e-6, "sum {sum} exceeds {cap}");
        }
    }

    #[test]
    fn determinism_per_seed() {
        let (sim, _) = fig5(FluidLink::if_7302());
        let a = sim.run(
            SimTime::from_secs(2),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
            9,
        );
        let (sim2, _) = fig5(FluidLink::if_7302());
        let b = sim2.run(
            SimTime::from_secs(2),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
            9,
        );
        assert_eq!(a.len(), b.len());
        for (ta, tb) in a.iter().zip(&b) {
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn instrumentation_counts_epochs_without_perturbing_the_run() {
        #[derive(Default)]
        struct Tally {
            ticks: f64,
            bytes: f64,
            ramps: f64,
            rate_samples: u64,
            finals: usize,
        }
        impl MetricsSink for Tally {
            fn counter_add(&mut self, name: &str, _labels: &[(&str, &str)], v: f64) {
                match name {
                    "fluid_ticks" => self.ticks += v,
                    "fluid_flow_bytes" => self.bytes += v,
                    "fluid_harvest_ramp_ticks" => self.ramps += v,
                    _ => {}
                }
            }

            fn gauge_set(&mut self, name: &str, _labels: &[(&str, &str)], _v: f64) {
                if name == "fluid_flow_final_rate_gb_s" {
                    self.finals += 1;
                }
            }

            fn observe(&mut self, name: &str, _labels: &[(&str, &str)], _at: SimTime, _v: f64) {
                if name == "fluid_flow_rate_gb_s" {
                    self.rate_samples += 1;
                }
            }
        }

        let (sim, cap) = fig5(FluidLink::if_9634());
        let horizon = SimTime::from_secs(2);
        let dt = SimDuration::from_millis(1);
        let sample = SimDuration::from_millis(10);
        let mut tally = Tally::default();
        let traces = sim.run_instrumented(horizon, dt, sample, 1, &mut tally);
        assert_eq!(tally.ticks, 2000.0);
        assert_eq!(tally.rate_samples, 2 * 2000);
        assert!(tally.ramps > 0.0, "the startup ramp counts as harvesting");
        assert_eq!(tally.finals, 2);
        // Total delivered bytes can't exceed link capacity × elapsed time.
        assert!(
            tally.bytes <= cap * 2.0 * 1e9 * (1.0 + 1e-9),
            "{}",
            tally.bytes
        );
        assert!(tally.bytes > cap * 1e9, "link is mostly full after ramp");
        // The sink never perturbs results: identical traces either way.
        assert_eq!(traces, sim.run(horizon, dt, sample, 1));
    }

    #[test]
    #[should_panic(expected = "bad link")]
    fn bad_link_index_rejected() {
        let mut sim = FluidSim::new(vec![FluidLink::if_9634()]);
        sim.add_flow(FluidFlowSpec {
            name: "x".into(),
            demand: DemandSchedule::constant(None),
            links: vec![5],
        });
    }
}
