//! # chiplet-fluid
//!
//! A flow-level fluid engine for second-scale bandwidth-sharing dynamics.
//!
//! Figure 5 of *Server Chiplet Networking* runs two competing flows for six
//! seconds and watches how quickly the unthrottled flow harvests bandwidth
//! the throttled one releases (~100 ms on the Infinity Fabric, ~500 ms on
//! the P-Link of the EPYC 9634, with "drastic variation" on the 7302's IF).
//! Six seconds at 5+ GT/s is ~30 billion transactions — far beyond
//! transaction-level simulation — so this crate models flows as fluids:
//!
//! * the **equilibrium allocator** splits each link's capacity among its
//!   flows proportionally to demand (the sender-driven sharing the
//!   transaction engine exhibits, §3.5);
//! * **harvest dynamics**: a flow's achieved rate relaxes *upward* toward
//!   its equilibrium with a per-link time constant τ (ramping in-flight
//!   requests takes time), but follows decreases immediately (backpressure
//!   is instant);
//! * **instability**: links flagged unstable (the 7302's IF with its
//!   intra-CC queueing module) add AR(1) noise to harvested bandwidth.
//!
//! The engine is deterministic for a given seed and produces per-flow
//! bandwidth traces compatible with `chiplet-sim`'s [`TracePoint`].
//!
//! [`TracePoint`]: chiplet_sim::stats::TracePoint

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod metrics;
pub mod sim;

pub use alloc::{
    max_min, proportional_allocate, proportional_allocate_into, AllocScratch, IncrementalAllocator,
};
pub use metrics::harvest_time_ms;
pub use sim::{DemandSchedule, FluidFlowSpec, FluidLink, FluidSim, Instability};
