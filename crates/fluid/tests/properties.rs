//! Property-based tests for the sender-driven equilibrium allocator.
//!
//! §3.5's contract, checked over random instances: rates are feasible on
//! every link, never exceed demand, and every saturated link is *work
//! conserving* — a flow that wants more than it got must be pinned by some
//! fully-utilized link it crosses, never left short on a link with spare
//! capacity.

use chiplet_fluid::{max_min, proportional_allocate, IncrementalAllocator};
use proptest::prelude::*;

/// A random allocation instance: link capacities plus per-flow demands
/// (None = unthrottled) and non-empty link subsets.
fn arb_instance() -> impl Strategy<Value = (Vec<f64>, Vec<Option<f64>>, Vec<Vec<usize>>)> {
    (
        prop::collection::vec(1.0f64..100.0, 1..5),
        prop::collection::vec(
            (
                prop::option::of(0.5f64..120.0),
                prop::collection::vec(0usize..64, 1..4),
            ),
            1..8,
        ),
    )
        .prop_map(|(caps, raw_flows)| {
            let n_links = caps.len();
            let mut demands = Vec::new();
            let mut links = Vec::new();
            for (demand, raw) in raw_flows {
                let mut ls: Vec<usize> = raw.into_iter().map(|l| l % n_links).collect();
                ls.sort_unstable();
                ls.dedup();
                demands.push(demand);
                links.push(ls);
            }
            (caps, demands, links)
        })
}

fn usage_per_link(caps: &[f64], links: &[Vec<usize>], rates: &[f64]) -> Vec<f64> {
    let mut usage = vec![0.0; caps.len()];
    for (ls, &r) in links.iter().zip(rates) {
        for &l in ls {
            usage[l] += r;
        }
    }
    usage
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Rates never exceed any link capacity and never exceed demand.
    #[test]
    fn feasible_and_demand_bounded((caps, demands, links) in arb_instance()) {
        let d: Vec<f64> = demands.iter().map(|o| o.unwrap_or(f64::INFINITY)).collect();
        let rates = proportional_allocate(&d, &links, &caps);
        for (i, &r) in rates.iter().enumerate() {
            prop_assert!(r >= 0.0, "flow {i} negative: {r}");
            prop_assert!(r <= d[i] + 1e-6, "flow {i}: rate {r} above demand {}", d[i]);
        }
        let usage = usage_per_link(&caps, &links, &rates);
        for (l, (&u, &c)) in usage.iter().zip(&caps).enumerate() {
            prop_assert!(u <= c + 1e-6 * (1.0 + c), "link {l}: usage {u} above capacity {c}");
        }
    }

    /// Work conservation: a flow allocated less than its demand must cross
    /// a saturated link — equivalently, no link with spare capacity has a
    /// flow on it that is throttled solely by the allocator. In particular
    /// every saturated link crossed by an unthrottled flow is fully used.
    #[test]
    fn work_conserving((caps, demands, links) in arb_instance()) {
        let d: Vec<f64> = demands.iter().map(|o| o.unwrap_or(f64::INFINITY)).collect();
        let rates = proportional_allocate(&d, &links, &caps);
        let usage = usage_per_link(&caps, &links, &rates);
        let saturated: Vec<bool> = usage
            .iter()
            .zip(&caps)
            .map(|(&u, &c)| u >= c - 1e-6 * (1.0 + c))
            .collect();
        for (i, &r) in rates.iter().enumerate() {
            let wants_more = r < d[i] - 1e-6;
            if wants_more {
                prop_assert!(
                    links[i].iter().any(|&l| saturated[l]),
                    "flow {i} (demand {}, rate {r}) is short with all links unsaturated: \
                     usage {usage:?} caps {caps:?}",
                    d[i]
                );
            }
        }
    }

    /// The max-min phase alone is also feasible and demand-bounded, and
    /// never emits the old f64::MAX / 4 unbounded sentinel.
    #[test]
    fn max_min_feasible((caps, demands, links) in arb_instance()) {
        let d: Vec<f64> = demands.iter().map(|o| o.unwrap_or(f64::INFINITY)).collect();
        let fair = max_min(&d, &links, &caps);
        for (i, &f) in fair.iter().enumerate() {
            prop_assert!(f >= 0.0);
            prop_assert!(f <= d[i] + 1e-6);
            prop_assert!(f < 1e12, "flow {i}: unbounded sentinel {f}");
        }
        let usage = usage_per_link(&caps, &links, &fair);
        for (l, (&u, &c)) in usage.iter().zip(&caps).enumerate() {
            prop_assert!(u <= c + 1e-6 * (1.0 + c), "link {l}: {u} > {c}");
        }
    }
}

/// Maps a unit sample to an epoch demand: a quarter unthrottled (∞), a
/// quarter departed/paused (0), the rest a finite offered load.
fn demand_from_unit(u: f64) -> f64 {
    if u < 0.25 {
        f64::INFINITY
    } else if u < 0.5 {
        0.0
    } else {
        0.5 + (u - 0.5) * 2.0 * 119.5
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The incremental epoch allocator is **bit-identical** to the
    /// from-scratch solver at every step of a randomized flow
    /// arrival/departure/demand-change sequence — including steps whose
    /// demand vector repeats the previous one, where it skips the solve
    /// and serves the memoized rates. The pool holds a few demand vectors
    /// (∞ = unthrottled, 0 = departed, finite = offered load); the index
    /// sequence replays them with repeats, modelling arrivals, departures,
    /// and demand changes over a fixed flow population.
    #[test]
    fn incremental_matches_from_scratch(
        (caps, flow_slots, links) in arb_instance(),
        pool_raw in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 8..9), 1..4),
        seq in prop::collection::vec(0usize..4, 2..16),
    ) {
        let n_flows = flow_slots.len();
        let pool: Vec<Vec<f64>> = pool_raw
            .iter()
            .map(|row| row[..n_flows].iter().copied().map(demand_from_unit).collect())
            .collect();
        let mut inc = IncrementalAllocator::new();
        for &s in &seq {
            let demands = &pool[s % pool.len()];
            let fresh = proportional_allocate(demands, &links, &caps);
            let got = inc.allocate(demands, &links, &caps);
            prop_assert_eq!(got.len(), fresh.len());
            for (i, (a, b)) in got.iter().zip(&fresh).enumerate() {
                prop_assert!(
                    a.to_bits() == b.to_bits(),
                    "flow {}: incremental {} != from-scratch {}",
                    i, a, b
                );
            }
        }
    }
}
