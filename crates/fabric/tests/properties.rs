//! Property-based tests for link and traffic-control models.

use chiplet_fabric::{Dir, DirectionalChannel, FifoServer, FlitFraming, SlotLimiter, TokenBucket};
use chiplet_sim::Bandwidth;
use proptest::prelude::*;

proptest! {
    /// FIFO invariants: departures are strictly increasing across arrivals
    /// presented in nondecreasing time order, wait is nonnegative, and
    /// depart = max(arrival, previous depart) + service.
    #[test]
    fn fifo_server_invariants(
        gaps in proptest::collection::vec(0.0f64..50.0, 1..200),
        gb in 1.0f64..400.0,
    ) {
        let mut s = FifoServer::new(Bandwidth::from_gb_per_s(gb));
        let mut now = 0.0;
        let mut last_depart = 0.0;
        for gap in gaps {
            now += gap;
            let a = s.admit(now, 64);
            prop_assert!(a.wait_ns >= 0.0);
            prop_assert!(a.depart_ns > last_depart);
            let expected = now.max(last_depart) + a.service_ns;
            prop_assert!((a.depart_ns - expected).abs() < 1e-9);
            last_depart = a.depart_ns;
        }
    }

    /// A server never serves more bytes than capacity × elapsed time.
    #[test]
    fn fifo_server_respects_capacity(
        arrivals in proptest::collection::vec((0.0f64..1000.0, 64u64..4096), 1..200),
        gb in 1.0f64..100.0,
    ) {
        let mut s = FifoServer::new(Bandwidth::from_gb_per_s(gb));
        let mut sorted = arrivals;
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        for &(t, bytes) in &sorted {
            s.admit(t, bytes);
        }
        let horizon = s.next_free_ns();
        let max_bytes = gb * horizon; // GB/s == B/ns
        prop_assert!(s.bytes_served() as f64 <= max_bytes + 1e-6,
            "served {} over {} ns at {} GB/s", s.bytes_served(), horizon, gb);
    }

    /// Slot limiter conservation: grants − releases == slots held, and
    /// never more than capacity held.
    #[test]
    fn limiter_conserves_slots(ops in proptest::collection::vec(prop::bool::ANY, 1..500), cap in 1u32..64) {
        let mut l: SlotLimiter<u64> = SlotLimiter::new(cap);
        let mut held: i64 = 0; // successful grants (immediate or via transfer)
        let mut next_id = 0u64;
        for acquire in ops {
            if acquire {
                if l.acquire(next_id) {
                    held += 1;
                }
                next_id += 1;
            } else if (held > 0 || l.waiting() > 0) && l.in_use() > 0 {
                if l.release().is_some() {
                    // slot transferred: held stays (one out, one in)
                } else {
                    held -= 1;
                }
            }
            prop_assert!(l.in_use() <= cap);
            prop_assert_eq!(l.in_use() as i64, held);
        }
    }

    /// Token bucket: pacing by earliest_conforming achieves the configured
    /// rate within 5% over a long horizon.
    #[test]
    fn token_bucket_rate_accuracy(gb in 0.5f64..50.0, burst_lines in 1u64..32) {
        let mut b = TokenBucket::new(Bandwidth::from_gb_per_s(gb), burst_lines * 64);
        let horizon = 200_000.0; // 200 µs
        let mut t = 0.0;
        let mut sent = 0u64;
        loop {
            t = b.earliest_conforming(t, 64);
            if t >= horizon {
                break;
            }
            b.consume(t, 64);
            sent += 64;
        }
        let rate_gb = sent as f64 / horizon;
        prop_assert!((rate_gb - gb).abs() <= gb * 0.05 + 0.01,
            "achieved {rate_gb} vs configured {gb}");
    }

    /// Bucket tokens never exceed burst.
    #[test]
    fn token_bucket_never_exceeds_burst(
        events in proptest::collection::vec((0.0f64..10_000.0, 1u64..512), 1..100),
        gb in 0.5f64..100.0,
        burst in 64u64..65536,
    ) {
        let mut b = TokenBucket::new(Bandwidth::from_gb_per_s(gb), burst);
        let mut sorted = events;
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        for &(t, bytes) in &sorted {
            prop_assert!(b.available(t) <= burst as f64 + 1e-9);
            b.consume(t, bytes);
        }
    }

    /// FLIT framing: wire bytes ≥ payload, and per-FLIT payload never
    /// exceeds the format's payload capacity.
    #[test]
    fn framing_overhead_bounds(payload in 1u64..1_000_000) {
        for f in [FlitFraming::CXL_68B, FlitFraming::CXL_256B] {
            let wire = f.wire_bytes(payload);
            let flits = f.flits_for(payload);
            prop_assert!(wire >= payload);
            prop_assert_eq!(wire, flits * f.flit_bytes as u64);
            prop_assert!(flits * f.payload_bytes as u64 >= payload);
            // One fewer FLIT would not fit the payload.
            let fits_in_fewer = (flits - 1) * f.payload_bytes as u64 >= payload;
            prop_assert!(!fits_in_fewer);
        }
    }

    /// Directional independence: traffic in one direction never changes the
    /// other direction's admissions.
    #[test]
    fn channel_directions_independent(
        reads in proptest::collection::vec(0.0f64..100.0, 0..50),
        writes in proptest::collection::vec(0.0f64..100.0, 1..50),
    ) {
        let mk = || DirectionalChannel::new(
            Some(Bandwidth::from_gb_per_s(30.0)),
            Some(Bandwidth::from_gb_per_s(20.0)),
        );
        let mut with_reads = mk();
        let mut without = mk();
        let mut rs = reads;
        rs.sort_by(f64::total_cmp);
        let mut ws = writes;
        ws.sort_by(f64::total_cmp);
        for &t in &rs {
            with_reads.admit(Dir::Read, t, 64);
        }
        for &t in &ws {
            let a = with_reads.admit(Dir::Write, t, 64);
            let b = without.admit(Dir::Write, t, 64);
            prop_assert_eq!(a.depart_ns, b.depart_ns);
        }
    }
}
