//! The FIFO bandwidth server.
//!
//! A link direction serves transactions one at a time at its capacity. The
//! classic virtual-clock formulation needs no queue storage: a transaction
//! arriving at time `t` departs at `max(t, next_free) + size/rate`, and
//! `next_free` advances to the departure. Arrivals must be presented in
//! nondecreasing time order (the event queue guarantees this), which makes
//! service order FIFO — the traffic-oblivious arbitration the paper
//! identifies as the root of sender-driven partitioning.

use chiplet_sim::Bandwidth;
use serde::{Deserialize, Serialize};

/// The outcome of admitting one transaction to a server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Admission {
    /// When the transaction finishes service (its data has fully crossed).
    pub depart_ns: f64,
    /// Time spent waiting behind earlier transactions.
    pub wait_ns: f64,
    /// Pure serialization time of this transaction.
    pub service_ns: f64,
}

/// A work-conserving FIFO serializer at a fixed byte rate.
///
/// ```
/// use chiplet_fabric::FifoServer;
/// use chiplet_sim::Bandwidth;
///
/// // 64 GB/s serves a 64-byte line in exactly 1 ns.
/// let mut s = FifoServer::new(Bandwidth::from_gb_per_s(64.0));
/// let a = s.admit(0.0, 64);
/// let b = s.admit(0.0, 64); // arrives together, queues behind the first
/// assert_eq!(a.depart_ns, 1.0);
/// assert_eq!(b.depart_ns, 2.0);
/// assert_eq!(b.wait_ns, 1.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FifoServer {
    bytes_per_ns: f64,
    next_free_ns: f64,
    /// Total bytes admitted.
    bytes_served: u64,
    /// Total busy (serving) time, ns.
    busy_ns: f64,
    /// Transactions admitted.
    admitted: u64,
    /// Accumulated waiting time, ns.
    total_wait_ns: f64,
    /// Largest single wait, ns.
    max_wait_ns: f64,
}

impl FifoServer {
    /// Creates a server with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive capacity: a zero-rate link is a
    /// configuration error, not a valid model.
    pub fn new(capacity: Bandwidth) -> Self {
        assert!(
            capacity.is_positive(),
            "FifoServer requires positive capacity, got {capacity}"
        );
        FifoServer {
            bytes_per_ns: capacity.bytes_per_ns(),
            next_free_ns: 0.0,
            bytes_served: 0,
            busy_ns: 0.0,
            admitted: 0,
            total_wait_ns: 0.0,
            max_wait_ns: 0.0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_s(self.bytes_per_ns * 1e9)
    }

    /// Replaces the capacity (used by the traffic manager's reconfiguration
    /// path). In-flight accounting is preserved; only future service times
    /// change.
    pub fn set_capacity(&mut self, capacity: Bandwidth) {
        assert!(capacity.is_positive(), "capacity must stay positive");
        self.bytes_per_ns = capacity.bytes_per_ns();
    }

    /// Admits a transaction of `bytes` arriving at `now_ns`.
    ///
    /// Arrivals must be presented in nondecreasing time order (the caller's
    /// event ordering guarantees FIFO correctness).
    pub fn admit(&mut self, now_ns: f64, bytes: u64) -> Admission {
        self.admit_with_extra(now_ns, bytes, 0.0)
    }

    /// Admits a transaction whose service takes `extra_ns` beyond pure
    /// serialization — the DRAM bank-conflict/refresh path: the slow access
    /// also delays everything queued behind it.
    pub fn admit_with_extra(&mut self, now_ns: f64, bytes: u64, extra_ns: f64) -> Admission {
        let service_ns = bytes as f64 / self.bytes_per_ns + extra_ns;
        let start = if self.next_free_ns > now_ns {
            self.next_free_ns
        } else {
            now_ns
        };
        let wait_ns = start - now_ns;
        let depart_ns = start + service_ns;
        self.next_free_ns = depart_ns;
        self.bytes_served += bytes;
        self.busy_ns += service_ns;
        self.admitted += 1;
        self.total_wait_ns += wait_ns;
        if wait_ns > self.max_wait_ns {
            self.max_wait_ns = wait_ns;
        }
        Admission {
            depart_ns,
            wait_ns,
            service_ns,
        }
    }

    /// Earliest time a new arrival would begin service.
    pub fn next_free_ns(&self) -> f64 {
        self.next_free_ns
    }

    /// Current backlog an arrival at `now_ns` would wait behind, ns.
    pub fn backlog_ns(&self, now_ns: f64) -> f64 {
        (self.next_free_ns - now_ns).max(0.0)
    }

    /// Total bytes admitted so far.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served
    }

    /// Transactions admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Fraction of `[0, horizon_ns]` the server spent serving.
    pub fn utilization(&self, horizon_ns: f64) -> f64 {
        if horizon_ns <= 0.0 {
            0.0
        } else {
            (self.busy_ns / horizon_ns).min(1.0)
        }
    }

    /// Mean queueing wait across all admissions, ns.
    pub fn mean_wait_ns(&self) -> f64 {
        if self.admitted == 0 {
            0.0
        } else {
            self.total_wait_ns / self.admitted as f64
        }
    }

    /// Largest single queueing wait observed, ns.
    pub fn max_wait_ns(&self) -> f64 {
        self.max_wait_ns
    }

    /// Achieved throughput over `[0, horizon_ns]`.
    pub fn throughput(&self, horizon_ns: f64) -> Bandwidth {
        if horizon_ns <= 0.0 {
            Bandwidth::ZERO
        } else {
            Bandwidth::from_bytes_per_s(self.bytes_served as f64 / (horizon_ns / 1e9))
        }
    }

    /// Clears statistics but keeps the clock, for warmup-discard protocols.
    pub fn reset_stats(&mut self) {
        self.bytes_served = 0;
        self.busy_ns = 0.0;
        self.admitted = 0;
        self.total_wait_ns = 0.0;
        self.max_wait_ns = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(gb: f64) -> FifoServer {
        FifoServer::new(Bandwidth::from_gb_per_s(gb))
    }

    #[test]
    fn idle_server_serves_immediately() {
        let mut s = server(32.0);
        let a = s.admit(100.0, 64);
        assert_eq!(a.wait_ns, 0.0);
        assert_eq!(a.service_ns, 2.0);
        assert_eq!(a.depart_ns, 102.0);
    }

    #[test]
    fn back_to_back_arrivals_queue() {
        let mut s = server(64.0);
        let mut depart = 0.0;
        for i in 0..10 {
            let a = s.admit(0.0, 64);
            assert_eq!(a.wait_ns, i as f64);
            assert!(a.depart_ns > depart);
            depart = a.depart_ns;
        }
        assert_eq!(depart, 10.0);
        assert_eq!(s.max_wait_ns(), 9.0);
    }

    #[test]
    fn gaps_leave_server_idle() {
        let mut s = server(64.0);
        s.admit(0.0, 64);
        let a = s.admit(100.0, 64);
        assert_eq!(a.wait_ns, 0.0);
        assert_eq!(a.depart_ns, 101.0);
        // Utilization over 101 ns: 2 ns busy.
        assert!((s.utilization(101.0) - 2.0 / 101.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_is_capacity_when_saturated() {
        let mut s = server(25.0);
        // Saturate for 1 µs: offered far above capacity.
        let mut t = 0.0;
        while t < 1000.0 {
            s.admit(t, 64);
            t += 0.5; // 128 GB/s offered
        }
        let tp = s.throughput(s.next_free_ns());
        assert!(
            (tp.as_gb_per_s() - 25.0).abs() < 0.5,
            "throughput {tp} should be ~capacity"
        );
    }

    #[test]
    fn fifo_shares_are_proportional_to_arrival_rates() {
        // Two interleaved arrival streams at 2:1 rate ratio through a
        // saturated server: served bytes split 2:1 (sender-driven sharing).
        let mut s = server(10.0);
        let mut served = [0u64, 0u64];
        let horizon = 10_000.0;
        let mut t: f64 = 0.0;
        let mut k = 0u64;
        while t < horizon {
            // Stream 0 arrives every 4 ns (16 GB/s), stream 1 every 8 ns (8 GB/s).
            let stream = if k % 3 == 2 { 1 } else { 0 };
            let a = s.admit(t, 64);
            if a.depart_ns <= horizon {
                served[stream] += 64;
            }
            k += 1;
            t += if k.is_multiple_of(3) { 2.0 } else { 1.0 };
        }
        let ratio = served[0] as f64 / served[1] as f64;
        assert!((1.8..=2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn set_capacity_changes_future_service() {
        let mut s = server(64.0);
        assert_eq!(s.admit(0.0, 64).service_ns, 1.0);
        s.set_capacity(Bandwidth::from_gb_per_s(32.0));
        assert_eq!(s.admit(10.0, 64).service_ns, 2.0);
    }

    #[test]
    fn reset_stats_keeps_clock() {
        let mut s = server(64.0);
        s.admit(0.0, 6400);
        let free = s.next_free_ns();
        s.reset_stats();
        assert_eq!(s.bytes_served(), 0);
        assert_eq!(s.next_free_ns(), free);
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_rejected() {
        let _ = FifoServer::new(Bandwidth::ZERO);
    }

    #[test]
    fn extra_service_delays_successors() {
        let mut s = server(64.0);
        let slow = s.admit_with_extra(0.0, 64, 300.0);
        assert_eq!(slow.service_ns, 301.0);
        assert_eq!(slow.depart_ns, 301.0);
        // The next transaction queues behind the slow one.
        let next = s.admit(1.0, 64);
        assert_eq!(next.wait_ns, 300.0);
    }

    #[test]
    fn mean_wait_tracks_congestion() {
        let mut light = server(64.0);
        let mut heavy = server(64.0);
        for i in 0..100 {
            light.admit(i as f64 * 10.0, 64); // 6.4 GB/s offered
            heavy.admit(i as f64 * 0.5, 64); // 128 GB/s offered
        }
        assert!(light.mean_wait_ns() < 0.01);
        assert!(heavy.mean_wait_ns() > 10.0);
    }
}
