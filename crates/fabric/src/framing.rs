//! CXL.mem FLIT framing.
//!
//! §2.3: "a CXL mem transaction, encoded as the FLIT size (68/256B), goes
//! from a compute chiplet and I/O chiplet to a CXL DIMM". A 64 B cacheline
//! rides in a 68 B FLIT (64 B data + 4 B header/CRC) in the 68 B format, or
//! packs with others into a 256 B FLIT (240 B usable payload after framing).
//! The wire-byte inflation is why CXL links deliver less *payload* bandwidth
//! than their raw rate.

use serde::{Deserialize, Serialize};

/// FLIT framing parameters for a CXL-style serial link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlitFraming {
    /// Total FLIT size on the wire, bytes.
    pub flit_bytes: u32,
    /// Payload bytes a FLIT carries.
    pub payload_bytes: u32,
}

impl FlitFraming {
    /// The 68 B FLIT format: one 64 B cacheline per FLIT.
    pub const CXL_68B: FlitFraming = FlitFraming {
        flit_bytes: 68,
        payload_bytes: 64,
    };

    /// The 256 B FLIT format: 240 B of payload after framing overhead.
    pub const CXL_256B: FlitFraming = FlitFraming {
        flit_bytes: 256,
        payload_bytes: 240,
    };

    /// Chooses the standard framing for a spec's `flit_bytes` field.
    ///
    /// # Panics
    ///
    /// Panics on a FLIT size that is not 68 or 256 (the two formats the CXL
    /// spec and the paper name).
    pub fn for_flit_size(flit_bytes: u32) -> Self {
        match flit_bytes {
            68 => Self::CXL_68B,
            256 => Self::CXL_256B,
            other => panic!("unsupported CXL FLIT size {other}, expected 68 or 256"),
        }
    }

    /// FLITs needed to carry `payload` bytes.
    pub fn flits_for(&self, payload: u64) -> u64 {
        payload.div_ceil(self.payload_bytes as u64)
    }

    /// Wire bytes consumed to carry `payload` bytes.
    pub fn wire_bytes(&self, payload: u64) -> u64 {
        self.flits_for(payload) * self.flit_bytes as u64
    }

    /// Payload efficiency: payload / wire for large transfers.
    pub fn efficiency(&self) -> f64 {
        self.payload_bytes as f64 / self.flit_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cacheline_in_68b_flit() {
        let f = FlitFraming::CXL_68B;
        assert_eq!(f.flits_for(64), 1);
        assert_eq!(f.wire_bytes(64), 68);
        assert!((f.efficiency() - 64.0 / 68.0).abs() < 1e-12);
    }

    #[test]
    fn large_transfer_in_256b_flits() {
        let f = FlitFraming::CXL_256B;
        // 4 KiB = 4096 B: ceil(4096/240) = 18 FLITs = 4608 wire bytes.
        assert_eq!(f.flits_for(4096), 18);
        assert_eq!(f.wire_bytes(4096), 4608);
    }

    #[test]
    fn partial_flit_rounds_up() {
        let f = FlitFraming::CXL_68B;
        assert_eq!(f.flits_for(1), 1);
        assert_eq!(f.flits_for(65), 2);
        assert_eq!(f.wire_bytes(65), 136);
    }

    #[test]
    fn spec_selection() {
        assert_eq!(FlitFraming::for_flit_size(68), FlitFraming::CXL_68B);
        assert_eq!(FlitFraming::for_flit_size(256), FlitFraming::CXL_256B);
    }

    #[test]
    #[should_panic(expected = "unsupported CXL FLIT size")]
    fn odd_flit_size_rejected() {
        let _ = FlitFraming::for_flit_size(128);
    }

    #[test]
    fn efficiency_relation_between_formats() {
        // For cacheline-granular traffic the 68 B format is the tighter fit
        // (64/68 ≈ 0.941 vs 240/256 = 0.9375): a single line wastes 192
        // payload bytes of a 256 B FLIT.
        assert!(FlitFraming::CXL_68B.efficiency() > FlitFraming::CXL_256B.efficiency());
        assert!(FlitFraming::CXL_68B.wire_bytes(64) < FlitFraming::CXL_256B.wire_bytes(64));
    }
}
