//! Directional link channels.
//!
//! A physical link carries reads and writes in opposite directions: read
//! data flows toward the core, write data away from it. The paper observes
//! (§3.5, Figure 6) that read/write interference appears only when a link is
//! saturated *in one direction* — so each direction gets its own
//! [`FifoServer`], and an uncapped direction admits instantly.

use chiplet_sim::Bandwidth;
use serde::{Deserialize, Serialize};

use crate::server::{Admission, FifoServer};

/// The direction of a data transfer relative to the requesting core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dir {
    /// Read: data flows toward the core (response direction).
    Read,
    /// Write: data flows away from the core.
    Write,
}

impl Dir {
    /// Both directions, reads first.
    pub const BOTH: [Dir; 2] = [Dir::Read, Dir::Write];
}

impl core::fmt::Display for Dir {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Dir::Read => "read",
            Dir::Write => "write",
        })
    }
}

/// A physical link with independent read- and write-direction capacity.
///
/// A direction without a configured capacity is not a contention point in
/// the model: admissions pass through with zero wait and zero service time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DirectionalChannel {
    read: Option<FifoServer>,
    write: Option<FifoServer>,
}

impl DirectionalChannel {
    /// Creates a channel; `None` for a direction means uncapped.
    pub fn new(read_cap: Option<Bandwidth>, write_cap: Option<Bandwidth>) -> Self {
        DirectionalChannel {
            read: read_cap.map(FifoServer::new),
            write: write_cap.map(FifoServer::new),
        }
    }

    /// Admits a transfer of `bytes` in `dir` at `now_ns`.
    pub fn admit(&mut self, dir: Dir, now_ns: f64, bytes: u64) -> Admission {
        self.admit_with_extra(dir, now_ns, bytes, 0.0)
    }

    /// Admits a transfer whose service takes `extra_ns` beyond serialization
    /// (memory-device variability). An uncapped direction still applies the
    /// extra as pure delay.
    pub fn admit_with_extra(
        &mut self,
        dir: Dir,
        now_ns: f64,
        bytes: u64,
        extra_ns: f64,
    ) -> Admission {
        match self.server_mut(dir) {
            Some(s) => s.admit_with_extra(now_ns, bytes, extra_ns),
            None => Admission {
                depart_ns: now_ns + extra_ns,
                wait_ns: 0.0,
                service_ns: extra_ns,
            },
        }
    }

    /// The server for a direction, if capped.
    pub fn server(&self, dir: Dir) -> Option<&FifoServer> {
        match dir {
            Dir::Read => self.read.as_ref(),
            Dir::Write => self.write.as_ref(),
        }
    }

    fn server_mut(&mut self, dir: Dir) -> Option<&mut FifoServer> {
        match dir {
            Dir::Read => self.read.as_mut(),
            Dir::Write => self.write.as_mut(),
        }
    }

    /// True when `dir` has a configured capacity.
    pub fn is_capped(&self, dir: Dir) -> bool {
        self.server(dir).is_some()
    }

    /// Backlog an arrival in `dir` at `now_ns` would wait behind, ns.
    pub fn backlog_ns(&self, dir: Dir, now_ns: f64) -> f64 {
        self.server(dir).map_or(0.0, |s| s.backlog_ns(now_ns))
    }

    /// Bytes served in `dir` so far.
    pub fn bytes_served(&self, dir: Dir) -> u64 {
        self.server(dir).map_or(0, FifoServer::bytes_served)
    }

    /// Utilization of `dir` over `[0, horizon_ns]`; 0 for uncapped.
    pub fn utilization(&self, dir: Dir, horizon_ns: f64) -> f64 {
        self.server(dir).map_or(0.0, |s| s.utilization(horizon_ns))
    }

    /// Resets statistics in both directions (clocks are preserved).
    pub fn reset_stats(&mut self) {
        if let Some(s) = self.read.as_mut() {
            s.reset_stats();
        }
        if let Some(s) = self.write.as_mut() {
            s.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gb(x: f64) -> Bandwidth {
        Bandwidth::from_gb_per_s(x)
    }

    #[test]
    fn directions_are_independent() {
        let mut ch = DirectionalChannel::new(Some(gb(64.0)), Some(gb(64.0)));
        // Saturate the read direction.
        for i in 0..100 {
            ch.admit(Dir::Read, i as f64 * 0.1, 64);
        }
        assert!(ch.backlog_ns(Dir::Read, 10.0) > 50.0);
        // Writes are unaffected.
        let a = ch.admit(Dir::Write, 10.0, 64);
        assert_eq!(a.wait_ns, 0.0);
    }

    #[test]
    fn uncapped_direction_passes_through() {
        let mut ch = DirectionalChannel::new(Some(gb(10.0)), None);
        assert!(!ch.is_capped(Dir::Write));
        let a = ch.admit(Dir::Write, 5.0, 4096);
        assert_eq!(a.depart_ns, 5.0);
        assert_eq!(a.service_ns, 0.0);
        assert_eq!(ch.bytes_served(Dir::Write), 0);
    }

    #[test]
    fn asymmetric_capacities() {
        // GMI-like: read 33.2 GB/s, write 23.6 GB/s.
        let mut ch = DirectionalChannel::new(Some(gb(33.2)), Some(gb(23.6)));
        let r = ch.admit(Dir::Read, 0.0, 64);
        let w = ch.admit(Dir::Write, 0.0, 64);
        assert!(w.service_ns > r.service_ns);
    }

    #[test]
    fn utilization_per_direction() {
        let mut ch = DirectionalChannel::new(Some(gb(64.0)), Some(gb(64.0)));
        ch.admit(Dir::Read, 0.0, 640); // 10 ns busy
        assert!((ch.utilization(Dir::Read, 100.0) - 0.1).abs() < 1e-12);
        assert_eq!(ch.utilization(Dir::Write, 100.0), 0.0);
    }
}
