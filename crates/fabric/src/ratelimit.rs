//! Token-bucket rate limiting.
//!
//! Two users: the workload generator's NOP-equivalent offered-load control
//! (the paper throttles flows by interleaving NOP instructions), and the
//! software traffic manager's `RateLimit` policy (Implication #3 suggests
//! rate limiters akin to OS traffic policers for inter-chiplet traffic).

use chiplet_sim::Bandwidth;
use serde::{Deserialize, Serialize};

/// A byte-granularity token bucket.
///
/// Tokens (bytes) accrue at `rate` up to `burst`. A request of `n` bytes
/// conforms once the bucket holds `n` tokens; [`TokenBucket::earliest_conforming`]
/// computes when that happens without mutating state, and
/// [`TokenBucket::consume`] debits it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenBucket {
    bytes_per_ns: f64,
    burst_bytes: f64,
    tokens: f64,
    last_refill_ns: f64,
}

impl TokenBucket {
    /// Creates a bucket at `rate` with `burst_bytes` depth, initially full.
    ///
    /// # Panics
    ///
    /// Panics on non-positive rate or zero burst.
    pub fn new(rate: Bandwidth, burst_bytes: u64) -> Self {
        assert!(rate.is_positive(), "token bucket needs a positive rate");
        assert!(burst_bytes > 0, "token bucket needs a positive burst");
        TokenBucket {
            bytes_per_ns: rate.bytes_per_ns(),
            burst_bytes: burst_bytes as f64,
            tokens: burst_bytes as f64,
            last_refill_ns: 0.0,
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_s(self.bytes_per_ns * 1e9)
    }

    /// Changes the rate going forward (traffic-manager reconfiguration).
    pub fn set_rate(&mut self, rate: Bandwidth, now_ns: f64) {
        assert!(rate.is_positive(), "rate must stay positive");
        self.refill(now_ns);
        self.bytes_per_ns = rate.bytes_per_ns();
    }

    fn refill(&mut self, now_ns: f64) {
        if now_ns > self.last_refill_ns {
            self.tokens = (self.tokens + (now_ns - self.last_refill_ns) * self.bytes_per_ns)
                .min(self.burst_bytes);
            self.last_refill_ns = now_ns;
        }
    }

    /// Earliest time at or after `now_ns` when `bytes` tokens will be
    /// available. Does not consume.
    pub fn earliest_conforming(&self, now_ns: f64, bytes: u64) -> f64 {
        let elapsed = (now_ns - self.last_refill_ns).max(0.0);
        let tokens_now = (self.tokens + elapsed * self.bytes_per_ns).min(self.burst_bytes);
        let deficit = bytes as f64 - tokens_now;
        if deficit <= 0.0 {
            now_ns
        } else {
            now_ns + deficit / self.bytes_per_ns
        }
    }

    /// Consumes `bytes` tokens at `now_ns`. The bucket may go negative if
    /// the caller consumes before conformance; prefer waiting until
    /// [`TokenBucket::earliest_conforming`].
    pub fn consume(&mut self, now_ns: f64, bytes: u64) {
        self.refill(now_ns);
        self.tokens -= bytes as f64;
    }

    /// Tokens available at `now_ns` (read-only).
    pub fn available(&self, now_ns: f64) -> f64 {
        let elapsed = (now_ns - self.last_refill_ns).max(0.0);
        (self.tokens + elapsed * self.bytes_per_ns).min(self.burst_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bucket(gb: f64, burst: u64) -> TokenBucket {
        TokenBucket::new(Bandwidth::from_gb_per_s(gb), burst)
    }

    #[test]
    fn starts_full() {
        let b = bucket(1.0, 128);
        assert_eq!(b.available(0.0), 128.0);
        assert_eq!(b.earliest_conforming(0.0, 128), 0.0);
    }

    #[test]
    fn drains_and_refills() {
        let mut b = bucket(64.0, 64); // 64 GB/s = 64 B/ns
        b.consume(0.0, 64);
        assert_eq!(b.available(0.0), 0.0);
        // One ns later a full line is back.
        assert_eq!(b.available(1.0), 64.0);
        assert_eq!(b.earliest_conforming(0.0, 64), 1.0);
    }

    #[test]
    fn burst_caps_accumulation() {
        let mut b = bucket(64.0, 128);
        b.consume(0.0, 0);
        assert_eq!(b.available(1_000_000.0), 128.0);
    }

    #[test]
    fn conforming_time_scales_with_rate() {
        let mut b = bucket(1.0, 64); // 1 GB/s = 1 B/ns
        b.consume(0.0, 64);
        // Need 64 B at 1 B/ns: 64 ns.
        assert_eq!(b.earliest_conforming(0.0, 64), 64.0);
        let mut fast = bucket(64.0, 64);
        fast.consume(0.0, 64);
        assert_eq!(fast.earliest_conforming(0.0, 64), 1.0);
    }

    #[test]
    fn paced_stream_achieves_configured_rate() {
        // Issue 64 B requests as early as conforming; average rate must be
        // the bucket rate.
        let mut b = bucket(10.0, 64);
        let mut t = 0.0;
        let mut sent = 0u64;
        while t < 100_000.0 {
            t = b.earliest_conforming(t, 64);
            if t >= 100_000.0 {
                break;
            }
            b.consume(t, 64);
            sent += 64;
        }
        let rate = sent as f64 / 100_000.0; // bytes per ns == GB/s
        assert!((rate - 10.0).abs() < 0.5, "rate {rate} GB/s");
    }

    #[test]
    fn set_rate_applies_forward() {
        let mut b = bucket(1.0, 64);
        b.consume(0.0, 64);
        b.set_rate(Bandwidth::from_gb_per_s(64.0), 0.0);
        assert_eq!(b.earliest_conforming(0.0, 64), 1.0);
    }
}
