//! The outstanding-request limiter.
//!
//! §3.2: "Within a compute (sub)-chiplet, there is a traffic control module
//! that limits the number of outstanding requests. It employs a queueless
//! structure (like Phantom Queue) and uses tokens and backpressure for
//! overload control."
//!
//! [`SlotLimiter`] models that module: a fixed pool of slots (tokens) with a
//! FIFO wait list for requests that arrive when the pool is empty. Slots are
//! shared between reads and writes, which is the mechanism behind the
//! within-chiplet read→write interference of Figure 6 (a saturated read
//! stream exhausts the shared pool and starves writes).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// A token pool with FIFO backpressure.
///
/// Generic over the caller's pending-request handle `T` (the engine uses a
/// transaction id).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlotLimiter<T> {
    capacity: u32,
    in_use: u32,
    waiters: VecDeque<T>,
    /// Peak simultaneous waiters, for telemetry.
    peak_waiters: usize,
    /// Total acquisitions that had to wait.
    stalled_acquisitions: u64,
    /// Total acquisitions.
    acquisitions: u64,
}

impl<T> SlotLimiter<T> {
    /// Creates a limiter with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity (nothing could ever pass).
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "limiter needs at least one slot");
        SlotLimiter {
            capacity,
            in_use: 0,
            waiters: VecDeque::new(),
            peak_waiters: 0,
            stalled_acquisitions: 0,
            acquisitions: 0,
        }
    }

    /// Attempts to take a slot. On success returns `true`; otherwise the
    /// handle joins the FIFO wait list and will be handed back by a future
    /// [`SlotLimiter::release`].
    pub fn acquire(&mut self, waiter: T) -> bool {
        self.acquisitions += 1;
        if self.in_use < self.capacity && self.waiters.is_empty() {
            self.in_use += 1;
            true
        } else {
            self.stalled_acquisitions += 1;
            self.waiters.push_back(waiter);
            self.peak_waiters = self.peak_waiters.max(self.waiters.len());
            false
        }
    }

    /// Returns a slot. If a request is waiting, the slot transfers to it and
    /// its handle is returned so the caller can resume it.
    ///
    /// # Panics
    ///
    /// Panics if no slot is outstanding (a release without an acquire is an
    /// engine logic error).
    pub fn release(&mut self) -> Option<T> {
        assert!(self.in_use > 0, "release without outstanding slot");
        match self.waiters.pop_front() {
            Some(w) => Some(w), // slot transfers directly to the waiter
            None => {
                self.in_use -= 1;
                None
            }
        }
    }

    /// Total slots.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Slots currently held.
    pub fn in_use(&self) -> u32 {
        self.in_use
    }

    /// Requests currently waiting.
    pub fn waiting(&self) -> usize {
        self.waiters.len()
    }

    /// Largest wait-list length seen.
    pub fn peak_waiters(&self) -> usize {
        self.peak_waiters
    }

    /// Fraction of acquisitions that had to wait.
    pub fn stall_fraction(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.stalled_acquisitions as f64 / self.acquisitions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_until_full() {
        let mut l: SlotLimiter<u32> = SlotLimiter::new(3);
        assert!(l.acquire(1));
        assert!(l.acquire(2));
        assert!(l.acquire(3));
        assert!(!l.acquire(4));
        assert_eq!(l.in_use(), 3);
        assert_eq!(l.waiting(), 1);
    }

    #[test]
    fn release_hands_slot_to_waiter_fifo() {
        let mut l: SlotLimiter<u32> = SlotLimiter::new(1);
        assert!(l.acquire(10));
        assert!(!l.acquire(11));
        assert!(!l.acquire(12));
        // FIFO: 11 resumes before 12.
        assert_eq!(l.release(), Some(11));
        assert_eq!(l.release(), Some(12));
        assert_eq!(l.release(), None);
        assert_eq!(l.in_use(), 0);
    }

    #[test]
    fn slot_count_is_conserved() {
        let mut l: SlotLimiter<u32> = SlotLimiter::new(2);
        assert!(l.acquire(1));
        assert!(l.acquire(2));
        assert!(!l.acquire(3));
        // Slot transfers to 3 without in_use dropping.
        assert_eq!(l.release(), Some(3));
        assert_eq!(l.in_use(), 2);
        assert_eq!(l.release(), None);
        assert_eq!(l.release(), None);
        assert_eq!(l.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "release without outstanding slot")]
    fn release_without_acquire_panics() {
        let mut l: SlotLimiter<u32> = SlotLimiter::new(1);
        let _ = l.release();
    }

    #[test]
    fn stall_statistics() {
        let mut l: SlotLimiter<u32> = SlotLimiter::new(1);
        assert!(l.acquire(1));
        assert!(!l.acquire(2));
        assert!(!l.acquire(3));
        assert_eq!(l.peak_waiters(), 2);
        assert!((l.stall_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        let _: SlotLimiter<u32> = SlotLimiter::new(0);
    }
}
