//! # chiplet-fabric
//!
//! Link and traffic-control models for server chiplet networking.
//!
//! The paper's L1/L2 layers are an agglomeration of heterogeneous links —
//! Infinity Fabric, GMI, I/O-die NoC segments, P-Link, PCIe/CXL lanes — each
//! with its own directional capacity, plus "queueless" token-based traffic
//! control modules at the compute-chiplet boundary (§3.2). This crate models
//! those as composable primitives:
//!
//! * [`FifoServer`] — a work-conserving FIFO serializer at a fixed byte rate;
//!   the building block of every link direction. FIFO service of interleaved
//!   arrivals is what makes bandwidth partitioning *sender-driven* (§3.5).
//! * [`DirectionalChannel`] — a read-direction and a write-direction server
//!   joined as one physical link, reproducing the paper's observation that
//!   read/write interference only occurs when one *direction* saturates (§3.5).
//! * [`SlotLimiter`] — the Phantom-Queue-like outstanding-request limiter
//!   (tokens + backpressure) at the CCX/CCD boundary, with slots *shared*
//!   between reads and writes.
//! * [`TokenBucket`] — a byte-granularity rate limiter used both for
//!   NOP-style offered-load control in workloads and by the software traffic
//!   manager's policies.
//! * [`FlitFraming`] — CXL.mem FLIT framing overhead (68/256 B FLITs carrying
//!   64 B cachelines).
//!
//! All models keep time as `f64` nanoseconds internally so that sub-ns
//! service times (e.g. 64 B at 366 GB/s ≈ 0.17 ns) accumulate exactly; the
//! engine rounds to whole-ns event times only when scheduling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod framing;
pub mod limiter;
pub mod ratelimit;
pub mod server;

pub use channel::{Dir, DirectionalChannel};
pub use framing::FlitFraming;
pub use limiter::SlotLimiter;
pub use ratelimit::TokenBucket;
pub use server::{Admission, FifoServer};
