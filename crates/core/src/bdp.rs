//! Bandwidth-delay-product monitoring.
//!
//! Implication #3: "Dynamic monitoring end-to-end runtime BDP and using it
//! for traffic control becomes vital in server chiplet networking."
//! [`BdpMonitor`] maintains EWMA estimates of a path's achieved bandwidth
//! and latency and derives the BDP — the in-flight byte budget a sender
//! needs to keep the path busy without queue buildup. The engine's
//! rate-gated in-flight budgets are exactly this quantity with headroom.

use chiplet_sim::{Bandwidth, ByteSize};
use serde::{Deserialize, Serialize};

/// An EWMA-based BDP estimator for one flow/path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BdpMonitor {
    alpha: f64,
    bw_bytes_per_ns: f64,
    latency_ns: f64,
    samples: u64,
}

impl BdpMonitor {
    /// Creates a monitor with smoothing factor `alpha` in `(0, 1]`
    /// (1 = no smoothing; common choice 0.1–0.3).
    ///
    /// # Panics
    ///
    /// Panics for `alpha` outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        BdpMonitor {
            alpha,
            bw_bytes_per_ns: 0.0,
            latency_ns: 0.0,
            samples: 0,
        }
    }

    /// Feeds one observation window: achieved bandwidth and mean latency.
    pub fn observe(&mut self, bandwidth: Bandwidth, latency_ns: f64) {
        let bw = bandwidth.bytes_per_ns();
        if self.samples == 0 {
            self.bw_bytes_per_ns = bw;
            self.latency_ns = latency_ns;
        } else {
            self.bw_bytes_per_ns += self.alpha * (bw - self.bw_bytes_per_ns);
            self.latency_ns += self.alpha * (latency_ns - self.latency_ns);
        }
        self.samples += 1;
    }

    /// Number of observations so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Current bandwidth estimate.
    pub fn bandwidth(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_s(self.bw_bytes_per_ns * 1e9)
    }

    /// Current latency estimate, ns.
    pub fn latency_ns(&self) -> f64 {
        self.latency_ns
    }

    /// The bandwidth-delay product: bytes in flight needed to fill the path.
    pub fn bdp(&self) -> ByteSize {
        ByteSize::from_bytes((self.bw_bytes_per_ns * self.latency_ns).round() as u64)
    }

    /// Recommended outstanding cachelines (BDP / 64, at least 1) — the
    /// traffic-control knob the paper envisions.
    pub fn recommended_inflight(&self) -> u32 {
        (self.bdp().as_bytes()).div_ceil(64).max(1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_initializes() {
        let mut m = BdpMonitor::new(0.2);
        m.observe(Bandwidth::from_gb_per_s(32.0), 125.0);
        assert_eq!(m.samples(), 1);
        // 32 B/ns × 125 ns = 4000 B.
        assert_eq!(m.bdp().as_bytes(), 4000);
        assert_eq!(m.recommended_inflight(), 63);
    }

    #[test]
    fn ewma_converges_to_steady_state() {
        let mut m = BdpMonitor::new(0.3);
        for _ in 0..100 {
            m.observe(Bandwidth::from_gb_per_s(10.0), 200.0);
        }
        assert!((m.bandwidth().as_gb_per_s() - 10.0).abs() < 1e-9);
        assert!((m.latency_ns() - 200.0).abs() < 1e-9);
        assert_eq!(m.bdp().as_bytes(), 2000);
    }

    #[test]
    fn ewma_tracks_change_gradually() {
        let mut m = BdpMonitor::new(0.5);
        m.observe(Bandwidth::from_gb_per_s(10.0), 100.0);
        m.observe(Bandwidth::from_gb_per_s(20.0), 100.0);
        let bw = m.bandwidth().as_gb_per_s();
        assert!(bw > 10.0 && bw < 20.0, "{bw}");
    }

    #[test]
    fn inflight_has_floor_of_one() {
        let mut m = BdpMonitor::new(1.0);
        m.observe(Bandwidth::from_gb_per_s(0.001), 1.0);
        assert_eq!(m.recommended_inflight(), 1);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn bad_alpha_rejected() {
        let _ = BdpMonitor::new(0.0);
    }

    #[test]
    fn chiplet_bdp_larger_than_monolithic() {
        // Implication #3's premise: longer paths at equal bandwidth mean
        // larger BDPs.
        let mut chiplet = BdpMonitor::new(1.0);
        chiplet.observe(Bandwidth::from_gb_per_s(32.0), 148.0); // diagonal
        let mut mono = BdpMonitor::new(1.0);
        mono.observe(Bandwidth::from_gb_per_s(32.0), 106.0);
        assert!(chiplet.bdp() > mono.bdp());
    }
}
