//! The chiplet-net profiler (§4 #5).
//!
//! "We advocate for a system-level perf-like profiling utility, entrenched
//! with the server SoC, that collaboratively combines the hardware
//! architectural PMU with time-series-based probabilistic and compact data
//! structures (like Sketches) to distill application-specific execution
//! telemetry."
//!
//! [`Profiler`] is that utility's core: it ingests one record per completed
//! transaction (source unit, destination, bytes, latency) and maintains,
//! in bounded memory regardless of traffic volume:
//!
//! * a Count-Min sketch of bytes per (source, destination) pair,
//! * a SpaceSaving heavy-hitter table of the hottest pairs,
//! * DDSketch-style latency quantiles, global and per flow.
//!
//! Enable it on a run with [`EngineConfig::profile`]; the engine feeds it
//! at every completion and attaches a [`ProfileReport`] to the result.
//!
//! [`EngineConfig::profile`]: crate::engine::EngineConfig::profile

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::flow::FlowId;
use crate::sketch::{CountMinSketch, QuantileSketch, SpaceSaving};

/// The most per-flow latency sketches the profiler keeps at once.
///
/// When a new flow arrives at the cap, the coldest tracked flow (fewest
/// samples; smallest `FlowId` on ties) is evicted, SpaceSaving-style, and
/// [`ProfileReport::evicted_flows`] counts the evictions — the map stays
/// bounded no matter how many flows a workload churns through.
pub const PER_FLOW_CAP: usize = 64;

/// Per-transaction profiling state.
#[derive(Debug)]
pub struct Profiler {
    bytes_by_pair: CountMinSketch,
    heavy: SpaceSaving<(u32, u32)>,
    latency: QuantileSketch,
    per_flow: BTreeMap<FlowId, QuantileSketch>,
    evicted_flows: u64,
    records: u64,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// Creates a profiler with default accuracies (1% byte error, 16 heavy
    /// hitters, 1% latency quantile error) and the default sketch seed 0.
    pub fn new() -> Self {
        Self::with_seed(0)
    }

    /// Creates a profiler whose Count-Min hashers derive from `seed`:
    /// identical seeds make [`ProfileReport`] byte-identical run-to-run.
    pub fn with_seed(seed: u64) -> Self {
        Profiler {
            bytes_by_pair: CountMinSketch::with_error_seeded(0.01, 0.01, seed),
            heavy: SpaceSaving::new(16),
            latency: QuantileSketch::new(0.01),
            per_flow: BTreeMap::new(),
            evicted_flows: 0,
            records: 0,
        }
    }

    /// Ingests one completed transaction.
    pub fn observe(&mut self, flow: FlowId, src: u32, dest: u32, bytes: u64, latency_ns: f64) {
        self.records += 1;
        self.bytes_by_pair.update(&(src, dest), bytes);
        self.heavy.update((src, dest), bytes);
        self.latency.record(latency_ns);
        if !self.per_flow.contains_key(&flow) && self.per_flow.len() >= PER_FLOW_CAP {
            let coldest = self
                .per_flow
                .iter()
                .min_by(|a, b| a.1.count().cmp(&b.1.count()).then_with(|| a.0.cmp(b.0)))
                .map(|(&f, _)| f)
                .expect("per_flow is non-empty at the cap");
            self.per_flow.remove(&coldest);
            self.evicted_flows += 1;
        }
        self.per_flow
            .entry(flow)
            .or_insert_with(|| QuantileSketch::new(0.01))
            .record(latency_ns);
    }

    /// Flows evicted from the bounded per-flow sketch map so far.
    pub fn evicted_flows(&self) -> u64 {
        self.evicted_flows
    }

    /// Transactions observed.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes estimate for a (source, destination) pair — never below truth.
    pub fn bytes_estimate(&self, src: u32, dest: u32) -> u64 {
        self.bytes_by_pair.estimate(&(src, dest))
    }

    /// Finalizes into a serializable report.
    pub fn report(&self) -> ProfileReport {
        let mut flows: Vec<FlowProfile> = self
            .per_flow
            .iter()
            .map(|(&flow, sk)| FlowProfile {
                flow,
                samples: sk.count(),
                p50_ns: sk.quantile(0.5).unwrap_or(0.0),
                p99_ns: sk.quantile(0.99).unwrap_or(0.0),
                p999_ns: sk.quantile(0.999).unwrap_or(0.0),
            })
            .collect();
        flows.sort_by_key(|f| f.flow);
        ProfileReport {
            records: self.records,
            heavy_hitters: self
                .heavy
                .heavy_hitters()
                .into_iter()
                .map(|((src, dest), bytes)| HeavyPair { src, dest, bytes })
                .collect(),
            global_p50_ns: self.latency.quantile(0.5).unwrap_or(0.0),
            global_p99_ns: self.latency.quantile(0.99).unwrap_or(0.0),
            global_p999_ns: self.latency.quantile(0.999).unwrap_or(0.0),
            flows,
            evicted_flows: self.evicted_flows,
            memory_bytes: self.bytes_by_pair.memory_bytes()
                + self.latency.memory_bytes()
                + self
                    .per_flow
                    .values()
                    .map(QuantileSketch::memory_bytes)
                    .sum::<usize>(),
        }
    }
}

/// A hot (source, destination) pair. Sources are compute chiplets (or
/// device rows past them); destinations are UMCs (or CXL devices past them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeavyPair {
    /// Source unit row.
    pub src: u32,
    /// Destination unit column.
    pub dest: u32,
    /// Byte upper bound (SpaceSaving overestimate).
    pub bytes: u64,
}

/// Per-flow latency quantiles from the profiler's sketches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowProfile {
    /// The flow.
    pub flow: FlowId,
    /// Samples observed.
    pub samples: u64,
    /// Median latency, ns.
    pub p50_ns: f64,
    /// P99 latency, ns.
    pub p99_ns: f64,
    /// P999 latency, ns.
    pub p999_ns: f64,
}

/// The profiler's serializable output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Transactions observed.
    pub records: u64,
    /// Hottest (source, destination) pairs, heaviest first.
    pub heavy_hitters: Vec<HeavyPair>,
    /// Global median latency, ns.
    pub global_p50_ns: f64,
    /// Global P99 latency, ns.
    pub global_p99_ns: f64,
    /// Global P999 latency, ns.
    pub global_p999_ns: f64,
    /// Per-flow quantiles.
    pub flows: Vec<FlowProfile>,
    /// Flows evicted from the bounded per-flow map ([`PER_FLOW_CAP`]).
    #[serde(default)]
    pub evicted_flows: u64,
    /// Total sketch memory, bytes — bounded regardless of traffic.
    pub memory_bytes: usize,
}

impl ProfileReport {
    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is always serializable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observes_and_reports() {
        let mut p = Profiler::new();
        for i in 0..10_000u64 {
            let flow = FlowId((i % 2) as u32);
            p.observe(
                flow,
                (i % 4) as u32,
                (i % 8) as u32,
                64,
                100.0 + (i % 50) as f64,
            );
        }
        let r = p.report();
        assert_eq!(r.records, 10_000);
        assert_eq!(r.flows.len(), 2);
        assert!(r.global_p50_ns > 100.0 && r.global_p50_ns < 160.0);
        assert!(r.global_p999_ns >= r.global_p99_ns);
        assert!(!r.heavy_hitters.is_empty());
    }

    #[test]
    fn heavy_hitter_finds_the_elephant() {
        let mut p = Profiler::new();
        for _ in 0..5_000 {
            p.observe(FlowId(0), 0, 0, 64, 120.0);
        }
        for i in 0..5_000u64 {
            p.observe(FlowId(1), 1 + (i % 3) as u32, (i % 8) as u32, 8, 130.0);
        }
        let r = p.report();
        assert_eq!((r.heavy_hitters[0].src, r.heavy_hitters[0].dest), (0, 0));
        // Count-Min never underestimates the elephant.
        assert!(p.bytes_estimate(0, 0) >= 5_000 * 64);
    }

    #[test]
    fn memory_is_bounded() {
        let mut p = Profiler::new();
        for i in 0..200_000u64 {
            p.observe(
                FlowId(0),
                (i % 12) as u32,
                (i % 12) as u32,
                64,
                (i % 1000) as f64,
            );
        }
        let r = p.report();
        assert!(r.memory_bytes < 512 * 1024, "{} bytes", r.memory_bytes);
    }

    #[test]
    fn per_flow_map_is_bounded_with_eviction() {
        let mut p = Profiler::new();
        // One hot flow, then a churn of cold one-sample flows.
        for _ in 0..1000 {
            p.observe(FlowId(0), 0, 0, 64, 100.0);
        }
        for i in 1..=500u32 {
            p.observe(FlowId(i), 0, 0, 64, 200.0);
        }
        let r = p.report();
        assert!(
            r.flows.len() <= PER_FLOW_CAP,
            "{} flows kept",
            r.flows.len()
        );
        assert_eq!(r.evicted_flows, 500 - (PER_FLOW_CAP as u64 - 1));
        // The hot flow survives the churn — only coldest flows are evicted.
        assert!(r
            .flows
            .iter()
            .any(|f| f.flow == FlowId(0) && f.samples == 1000));
    }

    #[test]
    fn identical_seeds_give_byte_identical_reports() {
        let run = |seed| {
            let mut p = Profiler::with_seed(seed);
            for i in 0..20_000u64 {
                p.observe(
                    FlowId((i % 5) as u32),
                    (i % 9) as u32,
                    (i % 11) as u32,
                    64,
                    100.0 + (i % 300) as f64,
                );
            }
            p.report().to_json()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn report_round_trips_json() {
        let mut p = Profiler::new();
        p.observe(FlowId(3), 1, 2, 64, 150.0);
        let r = p.report();
        let back: ProfileReport = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }
}
