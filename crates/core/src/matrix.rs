//! Intra-server traffic matrices.
//!
//! Implication #2: "developing an intra-server traffic matrix [51, 92] is
//! essential for maximizing the data transmission performance." The engine
//! records the ground-truth matrix (bytes per compute-chiplet → destination
//! pair); this module adds the estimation problem those citations study:
//! reconstructing the matrix from *link counters only* with a gravity
//! model, and quantifying the estimation error.

use serde::{Deserialize, Serialize};

use crate::telemetry::MatrixCell;

/// A dense CCD × destination traffic matrix (bytes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    rows: u32,
    cols: u32,
    bytes: Vec<u64>,
}

impl TrafficMatrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: u32, cols: u32) -> Self {
        TrafficMatrix {
            rows,
            cols,
            bytes: vec![0; rows as usize * cols as usize],
        }
    }

    /// Builds from telemetry cells.
    pub fn from_cells(rows: u32, cols: u32, cells: &[MatrixCell]) -> Self {
        let mut m = Self::zeros(rows, cols);
        for c in cells {
            m.add(c.ccd, c.dest, c.bytes);
        }
        m
    }

    /// Source (CCD) count.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Destination count.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Adds bytes to a cell.
    pub fn add(&mut self, row: u32, col: u32, bytes: u64) {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of range"
        );
        self.bytes[row as usize * self.cols as usize + col as usize] += bytes;
    }

    /// Reads a cell.
    pub fn get(&self, row: u32, col: u32) -> u64 {
        self.bytes[row as usize * self.cols as usize + col as usize]
    }

    /// Per-source totals (what a per-CCD GMI byte counter sees).
    pub fn row_sums(&self) -> Vec<u64> {
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self.get(r, c)).sum())
            .collect()
    }

    /// Per-destination totals (what a per-UMC byte counter sees).
    pub fn col_sums(&self) -> Vec<u64> {
        (0..self.cols)
            .map(|c| (0..self.rows).map(|r| self.get(r, c)).sum())
            .collect()
    }

    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Gravity-model estimate from link counters alone:
    /// `T̂[i][j] = row_i × col_j / total`. This is exact for product-form
    /// traffic (every source spreads over destinations in the same
    /// proportions) and an approximation otherwise — the tomography
    /// baseline of Medina et al. and Vardi.
    ///
    /// Empty marginals never divide by zero: an all-zero counter set
    /// returns the zero matrix, and an idle CCD (zero row) or untouched
    /// destination (zero column) estimates 0 for every cell it touches —
    /// no NaN can reach the output.
    pub fn gravity_estimate(row_sums: &[u64], col_sums: &[u64]) -> TrafficMatrix {
        let rows = row_sums.len() as u32;
        let cols = col_sums.len() as u32;
        let total: u64 = row_sums.iter().sum();
        let mut m = Self::zeros(rows, cols);
        if total == 0 {
            return m;
        }
        for (i, &r) in row_sums.iter().enumerate() {
            for (j, &c) in col_sums.iter().enumerate() {
                let est = (r as f64 * c as f64 / total as f64).round() as u64;
                m.bytes[i * cols as usize + j] = est;
            }
        }
        m
    }

    /// Relative L1 estimation error against a ground truth: Σ|Δ| / Σtruth.
    pub fn relative_error(&self, truth: &TrafficMatrix) -> f64 {
        assert_eq!(self.rows, truth.rows);
        assert_eq!(self.cols, truth.cols);
        let denom = truth.total();
        if denom == 0 {
            return 0.0;
        }
        let num: u64 = self
            .bytes
            .iter()
            .zip(&truth.bytes)
            .map(|(&a, &b)| a.abs_diff(b))
            .sum();
        num as f64 / denom as f64
    }

    /// The hottest (source, destination) pair, if any traffic exists.
    pub fn hottest(&self) -> Option<(u32, u32, u64)> {
        self.bytes
            .iter()
            .enumerate()
            .filter(|(_, &b)| b > 0)
            .max_by_key(|(_, &b)| b)
            .map(|(i, &b)| {
                (
                    (i / self.cols as usize) as u32,
                    (i % self.cols as usize) as u32,
                    b,
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_are_consistent() {
        let mut m = TrafficMatrix::zeros(2, 3);
        m.add(0, 0, 10);
        m.add(0, 2, 20);
        m.add(1, 1, 30);
        assert_eq!(m.row_sums(), vec![30, 30]);
        assert_eq!(m.col_sums(), vec![10, 30, 20]);
        assert_eq!(m.total(), 60);
    }

    #[test]
    fn gravity_is_exact_for_product_form() {
        // Both sources spread 50/30/20 over destinations; gravity recovers
        // the matrix exactly.
        let mut truth = TrafficMatrix::zeros(2, 3);
        for (j, frac) in [(0u32, 50u64), (1, 30), (2, 20)] {
            truth.add(0, j, frac * 2);
            truth.add(1, j, frac);
        }
        let est = TrafficMatrix::gravity_estimate(&truth.row_sums(), &truth.col_sums());
        assert_eq!(est.relative_error(&truth), 0.0);
    }

    #[test]
    fn gravity_errs_on_skewed_traffic() {
        // Source 0 only talks to dest 0, source 1 only to dest 1: gravity
        // smears traffic across both.
        let mut truth = TrafficMatrix::zeros(2, 2);
        truth.add(0, 0, 100);
        truth.add(1, 1, 100);
        let est = TrafficMatrix::gravity_estimate(&truth.row_sums(), &truth.col_sums());
        let err = est.relative_error(&truth);
        assert!(
            err > 0.5,
            "gravity should err on anti-diagonal traffic: {err}"
        );
        // But marginals are preserved.
        assert_eq!(est.row_sums(), truth.row_sums());
        assert_eq!(est.col_sums(), truth.col_sums());
    }

    #[test]
    fn hottest_pair() {
        let mut m = TrafficMatrix::zeros(3, 3);
        m.add(2, 1, 5);
        m.add(1, 2, 50);
        assert_eq!(m.hottest(), Some((1, 2, 50)));
        assert_eq!(TrafficMatrix::zeros(2, 2).hottest(), None);
    }

    #[test]
    fn from_cells_round_trip() {
        let cells = vec![
            MatrixCell {
                ccd: 0,
                dest: 1,
                bytes: 640,
            },
            MatrixCell {
                ccd: 1,
                dest: 0,
                bytes: 128,
            },
        ];
        let m = TrafficMatrix::from_cells(2, 2, &cells);
        assert_eq!(m.get(0, 1), 640);
        assert_eq!(m.get(1, 0), 128);
        assert_eq!(m.get(0, 0), 0);
    }

    #[test]
    fn empty_gravity_is_zero() {
        let est = TrafficMatrix::gravity_estimate(&[0, 0], &[0, 0]);
        assert_eq!(est.total(), 0);
    }

    #[test]
    fn gravity_handles_an_idle_ccd() {
        // CCD 1 is idle (zero row) and UMC 2 untouched (zero column): its
        // estimates must be exactly zero — never NaN — and the active
        // marginals preserved.
        let mut truth = TrafficMatrix::zeros(3, 3);
        truth.add(0, 0, 600);
        truth.add(0, 1, 200);
        truth.add(2, 0, 300);
        truth.add(2, 1, 100);
        let est = TrafficMatrix::gravity_estimate(&truth.row_sums(), &truth.col_sums());
        for j in 0..3 {
            assert_eq!(est.get(1, j), 0, "idle CCD row must estimate zero");
        }
        for i in 0..3 {
            assert_eq!(est.get(i, 2), 0, "untouched UMC column must estimate zero");
        }
        assert_eq!(est.row_sums(), truth.row_sums());
        assert_eq!(est.col_sums(), truth.col_sums());
        assert_eq!(est.relative_error(&truth), 0.0, "product-form here");
    }
}
