//! The unified metrics registry (§4 #5's counter half).
//!
//! Every layer of the workspace reports runtime telemetry into one
//! [`MetricsRegistry`]: the event engine at transaction completion, the
//! fluid engine per integration epoch, and the sweep runner per executed
//! point. Three series kinds exist:
//!
//! * **counters** — monotone totals (bytes, completions, ticks), optionally
//!   attributed to fixed sim-time windows;
//! * **gauges** — last-value samples (achieved GB/s, utilization);
//! * **histograms** — [`QuantileSketch`]-backed distributions with
//!   **windowed sketch telemetry**: observations land both in a whole-run
//!   sketch and in the sketch of the fixed sim-time window containing
//!   their timestamp. Window boundaries are *simulated* time, never wall
//!   clock, so dumps are byte-identical run-to-run; and because DDSketch
//!   merging is exact bucket addition, merging all window sketches
//!   reproduces the whole-run sketch exactly ([`WindowedSketch::merged`]).
//!
//! Series are keyed by sorted label sets (`flow`, `link_id`, `dir`,
//! `backend`, `scenario`, `sweep_point`) inside `BTreeMap`s, so iteration —
//! and therefore the [OpenMetrics] text exposition
//! ([`MetricsRegistry::to_openmetrics`]) — is deterministic. Families
//! marked *volatile* (wall time, pool occupancy, cache hit/miss: anything
//! execution-dependent) are excluded from the default exposition to keep
//! the byte-identity guarantee, and included only by
//! [`MetricsRegistry::to_openmetrics_with_volatile`].
//!
//! [OpenMetrics]: https://github.com/OpenObservability/OpenMetrics

use std::collections::{BTreeMap, BTreeSet};

use chiplet_sim::{MetricsSink, SeriesHandle, SeriesKind, SimDuration, SimTime};

use crate::sketch::QuantileSketch;

/// Default relative accuracy of histogram sketches.
pub const DEFAULT_ALPHA: f64 = 0.01;

/// Default histogram window when a registry is built with
/// [`MetricsRegistry::new`].
pub const DEFAULT_WINDOW: SimDuration = SimDuration::from_millis(1);

/// The quantiles every histogram family exposes.
const QUANTILES: [(f64, &str); 4] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")];

/// Sample suffixes OpenMetrics permits on top of a family name.
const SAMPLE_SUFFIXES: [&str; 5] = ["_total", "_count", "_sum", "_bucket", "_created"];

/// What a metric family measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotone total; exposed with an `_total` sample suffix.
    Counter,
    /// A last-value sample.
    Gauge,
    /// A windowed quantile sketch; exposed as an OpenMetrics summary.
    Histogram,
}

impl MetricKind {
    fn om_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "summary",
        }
    }
}

/// A sorted `(key, value)` label list — the series key within a family.
pub type LabelSet = Vec<(String, String)>;

fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut v: LabelSet = labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    v.sort();
    v
}

/// A quantile sketch with sim-time-windowed snapshots.
///
/// Each observation lands in the whole-run sketch *and* in the sketch of
/// the window `⌊at / window⌋` containing its timestamp. Windows hold full
/// [`QuantileSketch`]es, so any window's quantiles can be queried after the
/// run, and [`WindowedSketch::merged`] (the union of all windows) equals
/// the whole-run sketch exactly — DDSketch merging is bucket-count
/// addition, so no information is lost at window boundaries.
#[derive(Debug, Clone)]
pub struct WindowedSketch {
    window: SimDuration,
    alpha: f64,
    /// `(window index, sketch)`, ascending by index.
    windows: Vec<(u64, QuantileSketch)>,
    total: QuantileSketch,
    sum: f64,
}

impl WindowedSketch {
    /// Creates a sketch with the default accuracy ([`DEFAULT_ALPHA`]).
    ///
    /// # Panics
    ///
    /// Panics on a zero window.
    pub fn new(window: SimDuration) -> Self {
        Self::with_alpha(window, DEFAULT_ALPHA)
    }

    /// Creates a sketch with relative accuracy `alpha`.
    ///
    /// # Panics
    ///
    /// Panics on a zero window or out-of-range `alpha`.
    pub fn with_alpha(window: SimDuration, alpha: f64) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        WindowedSketch {
            window,
            alpha,
            windows: Vec::new(),
            total: QuantileSketch::new(alpha),
            sum: 0.0,
        }
    }

    /// The window width.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// The configured relative accuracy.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.total.count()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The whole-run sketch.
    pub fn total(&self) -> &QuantileSketch {
        &self.total
    }

    /// Records one observation at sim time `at`.
    pub fn record(&mut self, at: SimTime, v: f64) {
        let idx = at.as_nanos() / self.window.as_nanos();
        // The common case is in-order arrival into the latest window;
        // merged registries may interleave, so fall back to binary search.
        match self.windows.last_mut() {
            Some((last, sk)) if *last == idx => sk.record(v),
            Some((last, _)) if *last < idx => {
                let mut sk = QuantileSketch::new(self.alpha);
                sk.record(v);
                self.windows.push((idx, sk));
            }
            None => {
                let mut sk = QuantileSketch::new(self.alpha);
                sk.record(v);
                self.windows.push((idx, sk));
            }
            Some(_) => match self.windows.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.windows[pos].1.record(v),
                Err(pos) => {
                    let mut sk = QuantileSketch::new(self.alpha);
                    sk.record(v);
                    self.windows.insert(pos, (idx, sk));
                }
            },
        }
        self.total.record(v);
        self.sum += v;
    }

    /// The non-empty windows, ascending: `(window start, sketch)`.
    pub fn windows(&self) -> impl Iterator<Item = (SimTime, &QuantileSketch)> {
        let w = self.window.as_nanos();
        self.windows
            .iter()
            .map(move |(i, sk)| (SimTime::from_nanos(i * w), sk))
    }

    /// Merges every window sketch into one — provably equal to
    /// [`WindowedSketch::total`] (same counts, same quantile answers).
    pub fn merged(&self) -> QuantileSketch {
        let mut out = QuantileSketch::new(self.alpha);
        for (_, sk) in &self.windows {
            out.merge(sk);
        }
        out
    }

    /// Merges another windowed sketch (same window and accuracy).
    ///
    /// # Panics
    ///
    /// Panics on mismatched windows or accuracies.
    pub fn merge(&mut self, other: &WindowedSketch) {
        assert!(
            self.window == other.window,
            "cannot merge windowed sketches with different windows"
        );
        for (idx, sk) in &other.windows {
            match self.windows.binary_search_by_key(idx, |&(i, _)| i) {
                Ok(pos) => self.windows[pos].1.merge(sk),
                Err(pos) => self.windows.insert(pos, (*idx, sk.clone())),
            }
        }
        self.total.merge(&other.total);
        self.sum += other.sum;
    }
}

/// Per-window increments of a counter series.
#[derive(Debug, Clone, Default)]
struct CounterWindows {
    window_ns: u64,
    /// `(window index, increment)`, ascending by index.
    buckets: Vec<(u64, f64)>,
}

impl CounterWindows {
    fn add(&mut self, window_ns: u64, at: SimTime, v: f64) {
        debug_assert!(window_ns > 0);
        if self.window_ns == 0 {
            self.window_ns = window_ns;
        }
        assert!(
            self.window_ns == window_ns,
            "cannot window one counter series at two widths"
        );
        let idx = at.as_nanos() / self.window_ns;
        match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += v,
            Err(pos) => self.buckets.insert(pos, (idx, v)),
        }
    }

    fn merge(&mut self, other: &CounterWindows) {
        if other.window_ns == 0 {
            return;
        }
        for &(idx, v) in &other.buckets {
            self.add(
                other.window_ns,
                SimTime::from_nanos(idx * other.window_ns),
                v,
            );
        }
    }
}

#[derive(Debug, Clone)]
enum SeriesValue {
    Counter { total: f64, windows: CounterWindows },
    Gauge(f64),
    Histogram(WindowedSketch),
}

/// One named metric family: a kind, help text, and its series.
///
/// Series *values* live in the registry's dense slot arena; the family
/// maps each sorted label set to its slot index, so hot-path recording
/// through a [`SeriesHandle`] is a single `Vec` index while iteration (and
/// the OpenMetrics exposition) stays `BTreeMap`-ordered and deterministic.
#[derive(Debug, Clone)]
pub struct MetricFamily {
    kind: MetricKind,
    help: String,
    volatile: bool,
    series: BTreeMap<LabelSet, u32>,
}

impl MetricFamily {
    /// What the family measures.
    pub fn kind(&self) -> MetricKind {
        self.kind
    }

    /// The family's help text.
    pub fn help(&self) -> &str {
        &self.help
    }

    /// True for execution-dependent families excluded from the
    /// deterministic exposition.
    pub fn is_volatile(&self) -> bool {
        self.volatile
    }

    /// Number of series in the family.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }
}

/// The registry: named families of counters, gauges, and windowed
/// histograms. See the [module docs](self) for the model.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    window: SimDuration,
    families: BTreeMap<String, MetricFamily>,
    /// The dense series arena; family maps index into it.
    slots: Vec<SeriesValue>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A registry windowing histograms at [`DEFAULT_WINDOW`].
    pub fn new() -> Self {
        Self::with_window(DEFAULT_WINDOW)
    }

    /// A registry windowing histograms (and windowed counters) at `window`
    /// of sim time.
    ///
    /// # Panics
    ///
    /// Panics on a zero window.
    pub fn with_window(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        MetricsRegistry {
            window,
            families: BTreeMap::new(),
            slots: Vec::new(),
        }
    }

    /// The histogram window width new series get.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// True when no family holds any series.
    pub fn is_empty(&self) -> bool {
        self.families.values().all(|f| f.series.is_empty())
    }

    /// The families, by name.
    pub fn families(&self) -> impl Iterator<Item = (&str, &MetricFamily)> {
        self.families.iter().map(|(n, f)| (n.as_str(), f))
    }

    /// Looks a family up by name.
    pub fn family(&self, name: &str) -> Option<&MetricFamily> {
        self.families.get(name)
    }

    /// Declares a family's kind and help text (idempotent; creating the
    /// family on first use). Samples may arrive before or after.
    ///
    /// # Panics
    ///
    /// Panics when the family already exists with a different kind.
    pub fn describe(&mut self, name: &str, kind: MetricKind, help: &str) {
        let fam = self.family_mut(name, kind);
        if fam.help.is_empty() {
            fam.help = help.to_string();
        }
    }

    /// Like [`MetricsRegistry::describe`], additionally marking the family
    /// volatile: execution-dependent (wall time, pool occupancy, cache
    /// hits), excluded from the deterministic exposition.
    pub fn describe_volatile(&mut self, name: &str, kind: MetricKind, help: &str) {
        self.describe(name, kind, help);
        self.families
            .get_mut(name)
            .expect("describe created the family")
            .volatile = true;
    }

    fn family_mut(&mut self, name: &str, kind: MetricKind) -> &mut MetricFamily {
        family_mut(&mut self.families, name, kind)
    }

    /// The slot index for `(name, kind, labels)`, creating the family and
    /// an `init()`-valued slot on first touch.
    fn slot_for(
        &mut self,
        name: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        init: impl FnOnce() -> SeriesValue,
    ) -> u32 {
        let fam = family_mut(&mut self.families, name, kind);
        let slots = &mut self.slots;
        *fam.series.entry(label_set(labels)).or_insert_with(|| {
            let idx = u32::try_from(slots.len()).expect("series arena overflow");
            slots.push(init());
            idx
        })
    }

    /// Resolves `(kind, name, labels)` to a dense handle, creating the
    /// series (zero-valued / empty) if absent. Recording through the
    /// handle skips the per-sample name lookup and label-set allocation of
    /// the string methods.
    ///
    /// # Panics
    ///
    /// Panics when the family already exists with a different kind.
    pub fn series_handle(
        &mut self,
        kind: SeriesKind,
        name: &str,
        labels: &[(&str, &str)],
    ) -> SeriesHandle {
        let window = self.window;
        let (mk, init): (MetricKind, fn(SimDuration) -> SeriesValue) = match kind {
            SeriesKind::Counter => (MetricKind::Counter, |_| SeriesValue::Counter {
                total: 0.0,
                windows: CounterWindows::default(),
            }),
            SeriesKind::Gauge => (MetricKind::Gauge, |_| SeriesValue::Gauge(0.0)),
            SeriesKind::Histogram => (MetricKind::Histogram, |w| {
                SeriesValue::Histogram(WindowedSketch::new(w))
            }),
        };
        SeriesHandle(self.slot_for(name, mk, labels, || init(window)))
    }

    /// Adds `v` to the counter slot behind `h`.
    pub fn counter_add_handle(&mut self, h: SeriesHandle, v: f64) {
        match &mut self.slots[h.0 as usize] {
            SeriesValue::Counter { total, .. } => *total += v,
            _ => panic!("handle {h:?} is not a counter"),
        }
    }

    /// Adds `v` to the counter slot behind `h`, windowed at `at`.
    pub fn counter_add_at_handle(&mut self, h: SeriesHandle, at: SimTime, v: f64) {
        let window_ns = self.window.as_nanos();
        match &mut self.slots[h.0 as usize] {
            SeriesValue::Counter { total, windows } => {
                *total += v;
                windows.add(window_ns, at, v);
            }
            _ => panic!("handle {h:?} is not a counter"),
        }
    }

    /// Sets the gauge slot behind `h` to `v`.
    pub fn gauge_set_handle(&mut self, h: SeriesHandle, v: f64) {
        match &mut self.slots[h.0 as usize] {
            SeriesValue::Gauge(g) => *g = v,
            _ => panic!("handle {h:?} is not a gauge"),
        }
    }

    /// Records one observation into the histogram slot behind `h`.
    pub fn observe_handle(&mut self, h: SeriesHandle, at: SimTime, v: f64) {
        match &mut self.slots[h.0 as usize] {
            SeriesValue::Histogram(sk) => sk.record(at, v),
            _ => panic!("handle {h:?} is not a histogram"),
        }
    }

    /// Adds `v` to a counter series.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let idx = self.slot_for(name, MetricKind::Counter, labels, || SeriesValue::Counter {
            total: 0.0,
            windows: CounterWindows::default(),
        });
        match &mut self.slots[idx as usize] {
            SeriesValue::Counter { total, .. } => *total += v,
            _ => unreachable!("family_mut checked the kind"),
        }
    }

    /// Adds `v` to a counter series, also attributing it to the sim-time
    /// window containing `at`.
    pub fn counter_add_at(&mut self, name: &str, labels: &[(&str, &str)], at: SimTime, v: f64) {
        let window_ns = self.window.as_nanos();
        let idx = self.slot_for(name, MetricKind::Counter, labels, || SeriesValue::Counter {
            total: 0.0,
            windows: CounterWindows::default(),
        });
        match &mut self.slots[idx as usize] {
            SeriesValue::Counter { total, windows } => {
                *total += v;
                windows.add(window_ns, at, v);
            }
            _ => unreachable!("family_mut checked the kind"),
        }
    }

    /// Sets a gauge series to `v`.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let idx = self.slot_for(name, MetricKind::Gauge, labels, || SeriesValue::Gauge(0.0));
        self.slots[idx as usize] = SeriesValue::Gauge(v);
    }

    /// Records one observation into a windowed-histogram series.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], at: SimTime, v: f64) {
        let window = self.window;
        let idx = self.slot_for(name, MetricKind::Histogram, labels, || {
            SeriesValue::Histogram(WindowedSketch::new(window))
        });
        match &mut self.slots[idx as usize] {
            SeriesValue::Histogram(sk) => sk.record(at, v),
            _ => unreachable!("family_mut checked the kind"),
        }
    }

    /// Merges a pre-built windowed sketch into a histogram series.
    pub fn merge_histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        sketch: &WindowedSketch,
    ) {
        let idx = self.slot_for(name, MetricKind::Histogram, labels, || {
            SeriesValue::Histogram(WindowedSketch::new(sketch.window()))
        });
        match &mut self.slots[idx as usize] {
            SeriesValue::Histogram(sk) => sk.merge(sketch),
            _ => unreachable!("family_mut checked the kind"),
        }
    }

    fn slot(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SeriesValue> {
        let idx = *self.families.get(name)?.series.get(&label_set(labels))?;
        Some(&self.slots[idx as usize])
    }

    /// A counter series' total, if it exists.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.slot(name, labels)? {
            SeriesValue::Counter { total, .. } => Some(*total),
            _ => None,
        }
    }

    /// A gauge series' value, if it exists.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.slot(name, labels)? {
            SeriesValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// A histogram series' windowed sketch, if it exists.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&WindowedSketch> {
        match self.slot(name, labels)? {
            SeriesValue::Histogram(sk) => Some(sk),
            _ => None,
        }
    }

    /// Merges every series of `other` into this registry, extending each
    /// series' label set with `extra` pairs (e.g. `backend`, `scenario`,
    /// `sweep_point`). Counters add, gauges take the incoming value,
    /// histograms merge sketches; family help and volatility are adopted
    /// where this registry has none.
    ///
    /// # Panics
    ///
    /// Panics when a family exists in both registries with different
    /// kinds, or when merged histogram series disagree on window/accuracy.
    pub fn merge_labeled(&mut self, other: &MetricsRegistry, extra: &[(&str, &str)]) {
        for (name, fam) in &other.families {
            let dst = self.family_mut(name, fam.kind);
            if dst.help.is_empty() {
                dst.help = fam.help.clone();
            }
            dst.volatile = dst.volatile || fam.volatile;
            for (labels, &src_idx) in &fam.series {
                let value = &other.slots[src_idx as usize];
                let mut key = labels.clone();
                key.extend(extra.iter().map(|&(k, v)| (k.to_string(), v.to_string())));
                key.sort();
                let dst = self.families.get_mut(name).expect("family exists");
                let slots = &mut self.slots;
                let idx = *dst.series.entry(key).or_insert_with(|| {
                    let idx = u32::try_from(slots.len()).expect("series arena overflow");
                    slots.push(match value {
                        SeriesValue::Counter { .. } => SeriesValue::Counter {
                            total: 0.0,
                            windows: CounterWindows::default(),
                        },
                        SeriesValue::Gauge(_) => SeriesValue::Gauge(0.0),
                        SeriesValue::Histogram(sk) => SeriesValue::Histogram(
                            WindowedSketch::with_alpha(sk.window(), sk.alpha()),
                        ),
                    });
                    idx
                });
                match (&mut self.slots[idx as usize], value) {
                    (
                        SeriesValue::Counter { total, windows },
                        SeriesValue::Counter {
                            total: t2,
                            windows: w2,
                        },
                    ) => {
                        *total += t2;
                        windows.merge(w2);
                    }
                    (SeriesValue::Gauge(g), SeriesValue::Gauge(g2)) => *g = *g2,
                    (SeriesValue::Histogram(sk), SeriesValue::Histogram(sk2)) => sk.merge(sk2),
                    _ => unreachable!("family_mut checked the kind"),
                }
            }
        }
    }

    /// Encodes the deterministic families as OpenMetrics text (ending in
    /// `# EOF`). Volatile families are excluded, so for a fixed scenario
    /// and seed the bytes are identical across runs, worker counts, and
    /// cache states.
    pub fn to_openmetrics(&self) -> String {
        self.encode(false)
    }

    /// Encodes **all** families, volatile ones included. The output is not
    /// byte-stable across runs; use it for interactive inspection only.
    pub fn to_openmetrics_with_volatile(&self) -> String {
        self.encode(true)
    }

    fn encode(&self, include_volatile: bool) -> String {
        let mut out = String::new();
        for (name, fam) in &self.families {
            if (fam.volatile && !include_volatile) || fam.series.is_empty() {
                continue;
            }
            encode_family_header(&mut out, name, fam.kind, &fam.help);
            match fam.kind {
                MetricKind::Counter => {
                    for (labels, &idx) in &fam.series {
                        let SeriesValue::Counter { total, .. } = &self.slots[idx as usize] else {
                            unreachable!("counter family holds counters");
                        };
                        sample_line(&mut out, &format!("{name}_total"), labels, &[], *total);
                    }
                    encode_counter_windows(&mut out, name, fam, &self.slots);
                }
                MetricKind::Gauge => {
                    for (labels, &idx) in &fam.series {
                        let SeriesValue::Gauge(v) = &self.slots[idx as usize] else {
                            unreachable!("gauge family holds gauges");
                        };
                        sample_line(&mut out, name, labels, &[], *v);
                    }
                }
                MetricKind::Histogram => {
                    for (labels, &idx) in &fam.series {
                        let SeriesValue::Histogram(sk) = &self.slots[idx as usize] else {
                            unreachable!("histogram family holds histograms");
                        };
                        encode_summary(&mut out, name, labels, &[], sk.total(), sk.sum());
                    }
                    encode_histogram_windows(&mut out, name, fam, &self.slots);
                }
            }
        }
        out.push_str("# EOF\n");
        out
    }
}

fn family_mut<'a>(
    families: &'a mut BTreeMap<String, MetricFamily>,
    name: &str,
    kind: MetricKind,
) -> &'a mut MetricFamily {
    let fam = families
        .entry(name.to_string())
        .or_insert_with(|| MetricFamily {
            kind,
            help: String::new(),
            volatile: false,
            series: BTreeMap::new(),
        });
    assert!(
        fam.kind == kind,
        "metric family '{name}' used with two kinds"
    );
    fam
}

impl MetricsSink for MetricsRegistry {
    fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        MetricsRegistry::counter_add(self, name, labels, v);
    }

    fn counter_add_at(&mut self, name: &str, labels: &[(&str, &str)], at: SimTime, v: f64) {
        MetricsRegistry::counter_add_at(self, name, labels, at, v);
    }

    fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        MetricsRegistry::gauge_set(self, name, labels, v);
    }

    fn observe(&mut self, name: &str, labels: &[(&str, &str)], at: SimTime, v: f64) {
        MetricsRegistry::observe(self, name, labels, at, v);
    }

    fn series_handle(
        &mut self,
        kind: SeriesKind,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<SeriesHandle> {
        Some(MetricsRegistry::series_handle(self, kind, name, labels))
    }

    fn counter_add_handle(&mut self, h: SeriesHandle, v: f64) {
        MetricsRegistry::counter_add_handle(self, h, v);
    }

    fn counter_add_at_handle(&mut self, h: SeriesHandle, at: SimTime, v: f64) {
        MetricsRegistry::counter_add_at_handle(self, h, at, v);
    }

    fn gauge_set_handle(&mut self, h: SeriesHandle, v: f64) {
        MetricsRegistry::gauge_set_handle(self, h, v);
    }

    fn observe_handle(&mut self, h: SeriesHandle, at: SimTime, v: f64) {
        MetricsRegistry::observe_handle(self, h, at, v);
    }
}

// ---------------------------------------------------------------------------
// OpenMetrics text encoding.

fn encode_family_header(out: &mut String, name: &str, kind: MetricKind, help: &str) {
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind.om_type());
    out.push('\n');
    if !help.is_empty() {
        out.push_str("# HELP ");
        out.push_str(name);
        out.push(' ');
        out.push_str(&escape_help(help));
        out.push('\n');
    }
}

fn encode_counter_windows(out: &mut String, name: &str, fam: &MetricFamily, slots: &[SeriesValue]) {
    let windowed = fam.series.values().any(|&i| {
        matches!(&slots[i as usize], SeriesValue::Counter { windows, .. } if !windows.buckets.is_empty())
    });
    if !windowed {
        return;
    }
    let wname = format!("{name}_window");
    encode_family_header(
        out,
        &wname,
        MetricKind::Gauge,
        &format!("Per-sim-time-window increments of {name}."),
    );
    for (labels, &idx) in &fam.series {
        let SeriesValue::Counter { windows, .. } = &slots[idx as usize] else {
            unreachable!("counter family holds counters");
        };
        for &(idx, v) in &windows.buckets {
            let start = (idx * windows.window_ns).to_string();
            sample_line(out, &wname, labels, &[("window_start_ns", &start)], v);
        }
    }
}

fn encode_histogram_windows(
    out: &mut String,
    name: &str,
    fam: &MetricFamily,
    slots: &[SeriesValue],
) {
    let windowed = fam.series.values().any(|&i| {
        matches!(&slots[i as usize], SeriesValue::Histogram(sk) if sk.windows.iter().any(|(_, q)| q.count() > 0))
    });
    if !windowed {
        return;
    }
    let wname = format!("{name}_window");
    encode_family_header(
        out,
        &wname,
        MetricKind::Histogram,
        &format!("Per-sim-time-window sketch snapshots of {name}."),
    );
    for (labels, &idx) in &fam.series {
        let SeriesValue::Histogram(sk) = &slots[idx as usize] else {
            unreachable!("histogram family holds histograms");
        };
        for (start, q) in sk.windows() {
            let start = start.as_nanos().to_string();
            encode_summary(
                out,
                &wname,
                labels,
                &[("window_start_ns", &start)],
                q,
                f64::NAN,
            );
        }
    }
}

/// Encodes one summary series: its quantile samples plus `_count` (and
/// `_sum` when `sum` is finite — per-window snapshots track no sums).
fn encode_summary(
    out: &mut String,
    name: &str,
    labels: &LabelSet,
    extra: &[(&str, &str)],
    sketch: &QuantileSketch,
    sum: f64,
) {
    for (q, qs) in QUANTILES {
        if let Some(v) = sketch.quantile(q) {
            let mut with_q: Vec<(&str, &str)> = extra.to_vec();
            with_q.push(("quantile", qs));
            sample_line(out, name, labels, &with_q, v);
        }
    }
    sample_line(
        out,
        &format!("{name}_count"),
        labels,
        extra,
        sketch.count() as f64,
    );
    if sum.is_finite() {
        sample_line(out, &format!("{name}_sum"), labels, extra, sum);
    }
}

/// Writes `name{labels,extra} value`, with `extra` pairs merged into the
/// sorted label list.
fn sample_line(out: &mut String, name: &str, labels: &LabelSet, extra: &[(&str, &str)], v: f64) {
    out.push_str(name);
    let mut all: Vec<(&str, &str)> = labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
        .collect();
    all.sort();
    if !all.is_empty() {
        out.push('{');
        for (i, (k, val)) in all.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(val));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&format_value(v));
    out.push('\n');
}

/// Deterministic sample-value formatting: integral values print without a
/// fractional part, everything else uses Rust's shortest round-trip form.
fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// OpenMetrics text parsing and linting (for `chiplet-trace top` and CI).

/// One parsed sample line of an OpenMetrics dump.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Full sample name (family name plus any `_total`/`_count`/… suffix).
    pub name: String,
    /// Sorted labels.
    pub labels: LabelSet,
    /// The value.
    pub value: f64,
}

impl MetricSample {
    /// The value of a label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses the sample lines of an OpenMetrics text dump (comment and
/// metadata lines are skipped). Errors carry the 1-based line number.
pub fn parse_openmetrics(text: &str) -> Result<Vec<MetricSample>, String> {
    let mut out = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_sample(line).map_err(|e| format!("line {}: {e}", no + 1))?);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<MetricSample, String> {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| "unclosed label braces".to_string())?;
            (
                &line[..brace],
                Some((&line[brace + 1..close], &line[close + 1..])),
            )
        }
        None => match line.find(' ') {
            Some(sp) => (&line[..sp], None),
            None => return Err("sample line without a value".into()),
        },
    };
    let name = name_part.trim().to_string();
    if name.is_empty() {
        return Err("sample line without a metric name".into());
    }
    let (labels, value_part) = match rest {
        Some((labels_text, after)) => (parse_labels(labels_text)?, after),
        None => (Vec::new(), &line[name_part.len()..]),
    };
    let value_text = value_part.split_whitespace().next().unwrap_or("");
    let value = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        t => t
            .parse::<f64>()
            .map_err(|_| format!("bad sample value '{t}'"))?,
    };
    let mut labels = labels;
    labels.sort();
    Ok(MetricSample {
        name,
        labels,
        value,
    })
}

fn parse_labels(text: &str) -> Result<LabelSet, String> {
    let mut out = Vec::new();
    let mut chars = text.chars().peekable();
    loop {
        // Skip separators.
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(out);
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some('"') {
            return Err(format!("label '{key}' value is not quoted"));
        }
        let mut value = String::new();
        let mut escaped = false;
        let mut closed = false;
        for c in chars.by_ref() {
            if escaped {
                value.push(match c {
                    'n' => '\n',
                    c => c,
                });
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                closed = true;
                break;
            } else {
                value.push(c);
            }
        }
        if !closed {
            return Err(format!("label '{key}' value is not terminated"));
        }
        out.push((key.trim().to_string(), value));
    }
}

/// Lints an OpenMetrics text dump: the last line must be `# EOF`, every
/// sample must belong to a family declared by a preceding `# TYPE` line,
/// and no series (sample name + label set) may repeat. Returns every
/// violation found.
pub fn lint_openmetrics(text: &str) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    let lines: Vec<&str> = text.lines().collect();
    match lines.last() {
        Some(&"# EOF") => {}
        _ => errors.push("the last line must be '# EOF'".to_string()),
    }
    let mut types: BTreeMap<String, usize> = BTreeMap::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut after_eof = false;
    for (no, raw) in lines.iter().enumerate() {
        let line = raw.trim_end();
        let lineno = no + 1;
        if after_eof && !line.is_empty() {
            errors.push(format!("line {lineno}: content after '# EOF'"));
            continue;
        }
        if line == "# EOF" {
            after_eof = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some(name), Some(_kind)) => {
                    if types.insert(name.to_string(), lineno).is_some() {
                        errors.push(format!("line {lineno}: duplicate # TYPE for '{name}'"));
                    }
                }
                _ => errors.push(format!("line {lineno}: malformed # TYPE line")),
            }
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let sample = match parse_sample(line) {
            Ok(s) => s,
            Err(e) => {
                errors.push(format!("line {lineno}: {e}"));
                continue;
            }
        };
        let family = family_of(&sample.name, &types);
        match family {
            Some(decl_line) if decl_line < lineno => {}
            Some(_) => errors.push(format!(
                "line {lineno}: sample '{}' precedes its # TYPE line",
                sample.name
            )),
            None => errors.push(format!(
                "line {lineno}: sample '{}' has no preceding # TYPE",
                sample.name
            )),
        }
        let key = format!("{}{:?}", sample.name, sample.labels);
        if !seen.insert(key) {
            errors.push(format!(
                "line {lineno}: duplicate series '{}' {:?}",
                sample.name, sample.labels
            ));
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Describes the scenario-serving daemon's metric families: queue depth,
/// admission rejects, result-cache traffic, per-client served points, and
/// the request-scoped observability plane's phase/latency histograms.
/// All are **volatile** — they reflect one server process's runtime state,
/// so they belong in [`MetricsRegistry::to_openmetrics_with_volatile`]
/// scrapes (the daemon's `GET /metrics`) and never in deterministic dumps.
///
/// The histogram families are **wall-clock-stamped**: the daemon records
/// each observation at "nanoseconds since daemon start" in place of sim
/// time, so the registry's [`WindowedSketch`] machinery windows them over
/// real time and `/metrics` exposes live windowed p50/p99/p999 alongside
/// the whole-run quantiles. Durations are reported in nanoseconds.
pub fn describe_serve_metrics(m: &mut MetricsRegistry) {
    m.describe_volatile(
        "chiplet_serve_queue_depth",
        MetricKind::Gauge,
        "Scenario points currently waiting in the serving daemon's queue.",
    );
    m.describe_volatile(
        "chiplet_serve_admission_rejects",
        MetricKind::Counter,
        "Submissions turned away because a queue capacity limit was hit.",
    );
    m.describe_volatile(
        "chiplet_serve_cache_hits",
        MetricKind::Counter,
        "Served points answered from the shared on-disk result cache.",
    );
    m.describe_volatile(
        "chiplet_serve_cache_misses",
        MetricKind::Counter,
        "Served points that required an engine execution.",
    );
    m.describe_volatile(
        "chiplet_serve_corrupt_healed",
        MetricKind::Counter,
        "Corrupt cache entries the daemon healed by re-executing the point.",
    );
    m.describe_volatile(
        "chiplet_serve_client_points",
        MetricKind::Counter,
        "Scenario points served, by submitting client.",
    );
    m.describe_volatile(
        "chiplet_serve_requests",
        MetricKind::Counter,
        "Completed HTTP submissions, by route and outcome.",
    );
    m.describe_volatile(
        "chiplet_serve_fallback",
        MetricKind::Counter,
        "Served points whose engine execution fell back to the sequential \
         loop, by reason.",
    );
    m.describe_volatile(
        "chiplet_serve_phase_ns",
        MetricKind::Histogram,
        "Wall-clock request phase durations (ns), by phase.",
    );
    m.describe_volatile(
        "chiplet_serve_queue_wait_ns",
        MetricKind::Histogram,
        "Wall-clock fair-queue wait per executed point (ns), by client.",
    );
    m.describe_volatile(
        "chiplet_serve_service_ns",
        MetricKind::Histogram,
        "Wall-clock point service time (ns), by client.",
    );
    m.describe_volatile(
        "chiplet_serve_e2e_ns",
        MetricKind::Histogram,
        "Wall-clock end-to-end request latency (ns), by client.",
    );
    m.describe_volatile(
        "chiplet_serve_busy_workers",
        MetricKind::Gauge,
        "Worker threads currently executing or probing a point.",
    );
    m.describe_volatile(
        "chiplet_serve_inflight_keys",
        MetricKind::Gauge,
        "Distinct point hashes currently executing (single-flight keys).",
    );
    m.describe_volatile(
        "chiplet_serve_access_log_lines",
        MetricKind::Counter,
        "Access-log lines written.",
    );
    m.describe_volatile(
        "chiplet_serve_recorder_evicted",
        MetricKind::Counter,
        "Completed spans evicted from the flight recorder's ring buffer.",
    );
}

/// The `# TYPE` declaration line of the family a sample name belongs to:
/// the name itself, or the name minus one OpenMetrics sample suffix.
fn family_of(sample_name: &str, types: &BTreeMap<String, usize>) -> Option<usize> {
    if let Some(&l) = types.get(sample_name) {
        return Some(l);
    }
    for suffix in SAMPLE_SUFFIXES {
        if let Some(stripped) = sample_name.strip_suffix(suffix) {
            if let Some(&l) = types.get(stripped) {
                return Some(l);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let mut reg = MetricsRegistry::with_window(SimDuration::from_micros(1));
        reg.describe("bytes", MetricKind::Counter, "Payload bytes.");
        reg.counter_add_at("bytes", &[("flow", "a")], SimTime::from_nanos(10), 64.0);
        reg.counter_add_at("bytes", &[("flow", "a")], SimTime::from_nanos(1500), 64.0);
        reg.gauge_set("rate", &[("flow", "a")], 12.5);
        reg.observe("lat", &[("flow", "a")], SimTime::from_nanos(10), 100.0);
        assert_eq!(reg.counter_value("bytes", &[("flow", "a")]), Some(128.0));
        assert_eq!(reg.gauge_value("rate", &[("flow", "a")]), Some(12.5));
        assert_eq!(reg.histogram("lat", &[("flow", "a")]).unwrap().count(), 1);
        let text = reg.to_openmetrics();
        assert!(text.contains("# TYPE bytes counter"));
        assert!(text.contains("bytes_total{flow=\"a\"} 128"));
        assert!(text.contains("bytes_window{flow=\"a\",window_start_ns=\"0\"} 64"));
        assert!(text.contains("bytes_window{flow=\"a\",window_start_ns=\"1000\"} 64"));
        assert!(text.ends_with("# EOF\n"));
        lint_openmetrics(&text).expect("encoder output lints clean");
    }

    #[test]
    fn label_order_is_canonical() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("x", &[("b", "2"), ("a", "1")], 1.0);
        reg.counter_add("x", &[("a", "1"), ("b", "2")], 1.0);
        assert_eq!(reg.counter_value("x", &[("b", "2"), ("a", "1")]), Some(2.0));
        assert!(reg.to_openmetrics().contains("x_total{a=\"1\",b=\"2\"} 2"));
    }

    #[test]
    fn windowed_sketch_windows_merge_to_total() {
        let mut sk = WindowedSketch::new(SimDuration::from_micros(1));
        for i in 0..10_000u64 {
            sk.record(SimTime::from_nanos(i * 17), (i % 997) as f64);
        }
        assert!(sk.windows().count() > 100);
        let merged = sk.merged();
        assert_eq!(merged.count(), sk.total().count());
        for q in [0.01, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(merged.quantile(q), sk.total().quantile(q), "q={q}");
        }
    }

    #[test]
    fn windowed_sketch_merge_is_window_aligned() {
        let w = SimDuration::from_micros(1);
        let mut a = WindowedSketch::new(w);
        let mut b = WindowedSketch::new(w);
        a.record(SimTime::from_nanos(100), 1.0);
        b.record(SimTime::from_nanos(200), 3.0);
        b.record(SimTime::from_nanos(1_200), 5.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.windows().count(), 2);
        assert_eq!(a.merged().count(), a.total().count());
    }

    #[test]
    #[should_panic(expected = "different windows")]
    fn window_mismatch_rejected() {
        let mut a = WindowedSketch::new(SimDuration::from_micros(1));
        let b = WindowedSketch::new(SimDuration::from_micros(2));
        a.merge(&b);
    }

    #[test]
    fn merge_labeled_extends_labels() {
        let mut inner = MetricsRegistry::new();
        inner.counter_add("bytes", &[("flow", "a")], 10.0);
        inner.observe("lat", &[("flow", "a")], SimTime::ZERO, 5.0);
        inner.gauge_set("rate", &[], 7.0);
        let mut outer = MetricsRegistry::new();
        outer.merge_labeled(&inner, &[("scenario", "s1"), ("backend", "event")]);
        outer.merge_labeled(&inner, &[("scenario", "s2"), ("backend", "event")]);
        let labels = [("flow", "a"), ("scenario", "s1"), ("backend", "event")];
        assert_eq!(outer.counter_value("bytes", &labels), Some(10.0));
        assert_eq!(outer.histogram("lat", &labels).unwrap().count(), 1);
        assert_eq!(
            outer.gauge_value("rate", &[("scenario", "s2"), ("backend", "event")]),
            Some(7.0)
        );
        lint_openmetrics(&outer.to_openmetrics()).expect("merged registry lints clean");
    }

    #[test]
    fn volatile_families_are_excluded_by_default() {
        let mut reg = MetricsRegistry::new();
        reg.describe_volatile("wall", MetricKind::Gauge, "Wall seconds.");
        reg.gauge_set("wall", &[], 1.25);
        reg.counter_add("stable", &[], 1.0);
        let text = reg.to_openmetrics();
        assert!(!text.contains("wall"));
        assert!(text.contains("stable_total 1"));
        let all = reg.to_openmetrics_with_volatile();
        assert!(all.contains("wall 1.25"));
        lint_openmetrics(&all).expect("volatile exposition lints clean");
    }

    #[test]
    fn escaping_round_trips_through_the_parser() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("x", &[("name", "a\"b\\c\nd")], 1.0);
        let text = reg.to_openmetrics();
        let samples = parse_openmetrics(&text).unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].label("name"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn lint_catches_the_three_violations() {
        // No EOF.
        let e = lint_openmetrics("# TYPE x counter\nx_total 1\n").unwrap_err();
        assert!(e.iter().any(|m| m.contains("# EOF")), "{e:?}");
        // Sample without TYPE.
        let e = lint_openmetrics("y_total 1\n# EOF").unwrap_err();
        assert!(e.iter().any(|m| m.contains("no preceding # TYPE")), "{e:?}");
        // Duplicate series.
        let e = lint_openmetrics("# TYPE x counter\nx_total{a=\"1\"} 1\nx_total{a=\"1\"} 2\n# EOF")
            .unwrap_err();
        assert!(e.iter().any(|m| m.contains("duplicate series")), "{e:?}");
        // A clean dump passes.
        lint_openmetrics("# TYPE x counter\nx_total{a=\"1\"} 1\n# EOF").unwrap();
    }

    #[test]
    fn format_value_is_stable() {
        assert_eq!(format_value(0.0), "0");
        assert_eq!(format_value(128.0), "128");
        assert_eq!(format_value(12.5), "12.5");
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(1e-7), "0.0000001");
    }

    #[test]
    fn encoding_is_deterministic() {
        let build = || {
            let mut reg = MetricsRegistry::with_window(SimDuration::from_micros(2));
            for i in 0..50u64 {
                reg.counter_add_at(
                    "bytes",
                    &[("flow", if i % 2 == 0 { "a" } else { "b" })],
                    SimTime::from_nanos(i * 131),
                    64.0,
                );
                reg.observe(
                    "lat",
                    &[("flow", "a")],
                    SimTime::from_nanos(i * 131),
                    (i % 7) as f64 * 10.0,
                );
            }
            reg.to_openmetrics()
        };
        assert_eq!(build(), build());
    }

    mod window_merge_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The windowed telemetry guarantee: merging every window
            /// sketch reproduces the whole-run sketch — same count, same
            /// quantile answers — for arbitrary sample streams and window
            /// widths, and the windows partition the samples exactly.
            #[test]
            fn window_sketches_merge_back_to_the_whole_run(
                window_ns in 1u64..5_000,
                samples in prop::collection::vec(
                    (0u64..100_000, 1e-3f64..1e6),
                    1..400,
                ),
            ) {
                let mut ws = WindowedSketch::new(SimDuration::from_nanos(window_ns));
                let mut whole = crate::sketch::QuantileSketch::new(DEFAULT_ALPHA);
                for &(t, v) in &samples {
                    ws.record(SimTime::from_nanos(t), v);
                    whole.record(v);
                }
                let merged = ws.merged();
                prop_assert_eq!(merged.count(), whole.count());
                for q in [0.5, 0.9, 0.99, 0.999] {
                    prop_assert_eq!(merged.quantile(q), whole.quantile(q));
                }
                let windowed_total: u64 = ws.windows().map(|(_, s)| s.count()).sum();
                prop_assert_eq!(windowed_total, whole.count());
            }
        }
    }
}
