//! Span-level hop tracing: the perf-style inspection layer of §4 #5.
//!
//! The engine samples 1-in-N transactions ([`crate::engine::EngineConfig::
//! trace_sampling`]) and records, for each, every capacity point it crossed
//! with queue-enter / service-start / service-end timestamps (a
//! [`chiplet_sim::stats::TxnSpan`]). This module gives those raw spans
//! meaning:
//!
//! * [`HopClass`] names each hop (the token limiter, each physical link
//!   class, the socket NoC, the CXL port, and the residual propagation
//!   segment) — the engine stores the class code as the span's hop label;
//! * [`TraceReport`] aggregates spans into a per-hop-class latency
//!   breakdown ([`HopBreakdown`]) and exports the Chrome trace-event JSON
//!   that `chrome://tracing` and <https://ui.perfetto.dev> render.
//!
//! The hops of one span tile its end-to-end latency exactly:
//! `Σ hop.total_ns() == e2e_ns` (the engine charges limiter queueing, every
//! per-stage wait, device service variability, and the unloaded route
//! latency to exactly one hop each).

use chiplet_sim::stats::TxnSpan;
use chiplet_topology::LinkKind;
use serde::{Deserialize, Serialize};

/// The class of a traced hop — what kind of capacity point the dwell was
/// spent at. Stored in [`chiplet_sim::stats::HopEvent::label`] as the
/// variant's code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HopClass {
    /// Queueing for the CCX/CCD token limiters (§3.2's traffic-control
    /// module); charged from issue to the last token grant.
    TrafficCtrl,
    /// Core to its CCX L3 slice.
    CoreL3,
    /// L3 slice to the CCD traffic controller.
    L3Tc,
    /// Traffic controller to GMI port.
    TcGmi,
    /// The GMI link between a CCD and the I/O die.
    Gmi,
    /// CCM to its quadrant switch.
    CcmSwitch,
    /// Switch-to-switch mesh edge.
    NocMesh,
    /// Quadrant switch to a coherent station.
    SwitchCs,
    /// Coherent station to UMC.
    CsUmc,
    /// The UMC/DRAM channel (device variability is charged here).
    MemChannel,
    /// Relay switch to the I/O hub.
    SwitchHub,
    /// I/O hub to root complex (the serialized CXL P-Link aggregate).
    HubRc,
    /// Root complex to a CXL device.
    CxlLane,
    /// The inter-socket xGMI fabric.
    Xgmi,
    /// I/O hub to a PCIe NIC.
    PcieLane,
    /// A socket's I/O-die NoC routing capacity.
    SocketNoc,
    /// The per-CCD CXL port ceiling.
    CxlPort,
    /// The residual unloaded route latency (wire propagation, switch
    /// traversal, device access at zero load) — the Table 2 constant.
    Propagation,
}

impl HopClass {
    /// Every class, in code order.
    pub const ALL: [HopClass; 18] = [
        HopClass::TrafficCtrl,
        HopClass::CoreL3,
        HopClass::L3Tc,
        HopClass::TcGmi,
        HopClass::Gmi,
        HopClass::CcmSwitch,
        HopClass::NocMesh,
        HopClass::SwitchCs,
        HopClass::CsUmc,
        HopClass::MemChannel,
        HopClass::SwitchHub,
        HopClass::HubRc,
        HopClass::CxlLane,
        HopClass::Xgmi,
        HopClass::PcieLane,
        HopClass::SocketNoc,
        HopClass::CxlPort,
        HopClass::Propagation,
    ];

    /// The class's stable `u32` code (its index in [`HopClass::ALL`]).
    pub fn code(self) -> u32 {
        HopClass::ALL
            .iter()
            .position(|&c| c == self)
            .expect("every class is in ALL") as u32
    }

    /// Decodes a hop label back to its class.
    pub fn from_code(code: u32) -> Option<HopClass> {
        HopClass::ALL.get(code as usize).copied()
    }

    /// The class a physical link maps to.
    pub fn from_link_kind(kind: LinkKind) -> HopClass {
        match kind {
            LinkKind::CoreL3 => HopClass::CoreL3,
            LinkKind::L3Tc => HopClass::L3Tc,
            LinkKind::TcGmi => HopClass::TcGmi,
            LinkKind::Gmi => HopClass::Gmi,
            LinkKind::CcmSwitch => HopClass::CcmSwitch,
            LinkKind::NocMesh => HopClass::NocMesh,
            LinkKind::SwitchCs => HopClass::SwitchCs,
            LinkKind::CsUmc => HopClass::CsUmc,
            LinkKind::MemChannel => HopClass::MemChannel,
            LinkKind::SwitchHub => HopClass::SwitchHub,
            LinkKind::HubRc => HopClass::HubRc,
            LinkKind::CxlLane => HopClass::CxlLane,
            LinkKind::Xgmi => HopClass::Xgmi,
            LinkKind::PcieLane => HopClass::PcieLane,
        }
    }

    /// Short stable name, used in exports and reports.
    pub fn name(self) -> &'static str {
        match self {
            HopClass::TrafficCtrl => "traffic-ctrl",
            HopClass::CoreL3 => "core-l3",
            HopClass::L3Tc => "l3-tc",
            HopClass::TcGmi => "tc-gmi",
            HopClass::Gmi => "gmi",
            HopClass::CcmSwitch => "ccm-switch",
            HopClass::NocMesh => "noc-mesh",
            HopClass::SwitchCs => "switch-cs",
            HopClass::CsUmc => "cs-umc",
            HopClass::MemChannel => "mem-channel",
            HopClass::SwitchHub => "switch-hub",
            HopClass::HubRc => "hub-rc",
            HopClass::CxlLane => "cxl-lane",
            HopClass::Xgmi => "xgmi",
            HopClass::PcieLane => "pcie-lane",
            HopClass::SocketNoc => "socket-noc",
            HopClass::CxlPort => "cxl-port",
            HopClass::Propagation => "propagation",
        }
    }
}

/// Packs a hop class (low byte) and an optional capacity-point index
/// (upper bits, biased by one so "no point" stays zero) into a span hop
/// label. `encode_hop_label(c, None)` is exactly `c.code()`, so legacy
/// bare-code labels and point-free hops (limiter, propagation) share one
/// encoding and old traces decode unchanged.
pub fn encode_hop_label(class: HopClass, point: Option<u32>) -> u32 {
    class.code() | point.map_or(0, |p| (p + 1) << 8)
}

/// Splits a span hop label into its class and capacity-point index.
/// Bare class codes decode to `(Some(class), None)`.
pub fn decode_hop_label(label: u32) -> (Option<HopClass>, Option<u32>) {
    (
        HopClass::from_code(label & 0xff),
        (label >> 8).checked_sub(1),
    )
}

/// Incremental builder for Chrome trace-event JSON — the writer behind
/// [`TraceReport::to_chrome_trace`], reusable for **wall-clock** spans too
/// (the serving daemon's request timelines export through it, so daemon
/// traces open in the same `chrome://tracing` / Perfetto tooling as sim
/// traces).
///
/// Field order matches what the sim exporter always emitted (metadata:
/// `name, ph, pid, tid, args`; complete events: `name, cat, ph, ts, dur,
/// pid, tid, args`), so output through the builder is byte-identical to
/// the pre-builder encoding. Events appear in insertion order; output is
/// deterministic for a deterministic insertion sequence.
#[derive(Debug, Default)]
pub struct ChromeTraceBuilder {
    events: Vec<serde_json::Value>,
}

impl ChromeTraceBuilder {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    fn obj(fields: Vec<(&str, serde_json::Value)>) -> serde_json::Value {
        serde_json::Value::Map(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Emits a `process_name` metadata event labelling `pid`.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.metadata("process_name", pid, 0, name);
    }

    /// Emits a `thread_name` metadata event labelling `(pid, tid)`.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.metadata("thread_name", pid, tid, name);
    }

    fn metadata(&mut self, kind: &str, pid: u64, tid: u64, name: &str) {
        use serde_json::Value;
        self.events.push(Self::obj(vec![
            ("name", Value::Str(kind.into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::U64(pid)),
            ("tid", Value::U64(tid)),
            ("args", Self::obj(vec![("name", Value::Str(name.into()))])),
        ]));
    }

    /// Emits one complete (`"ph": "X"`) event. `ts_us`/`dur_us` are
    /// microseconds, the unit Chrome's trace viewer expects.
    #[allow(clippy::too_many_arguments)] // mirrors the trace-event field list
    pub fn complete(
        &mut self,
        name: &str,
        cat: &str,
        ts_us: f64,
        dur_us: f64,
        pid: u64,
        tid: u64,
        args: Vec<(&str, serde_json::Value)>,
    ) {
        use serde_json::Value;
        self.events.push(Self::obj(vec![
            ("name", Value::Str(name.into())),
            ("cat", Value::Str(cat.into())),
            ("ph", Value::Str("X".into())),
            ("ts", Value::F64(ts_us)),
            ("dur", Value::F64(dur_us)),
            ("pid", Value::U64(pid)),
            ("tid", Value::U64(tid)),
            ("args", Self::obj(args)),
        ]));
    }

    /// Events emitted so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event has been emitted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the trace document (deterministic bytes).
    pub fn finish(self) -> String {
        let doc = Self::obj(vec![
            ("traceEvents", serde_json::Value::Seq(self.events)),
            ("displayTimeUnit", serde_json::Value::Str("ns".into())),
        ]);
        serde_json::to_string(&doc).expect("trace is always serializable")
    }
}

/// Aggregate statistics for one hop class across all sampled transactions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HopBreakdown {
    /// The hop class.
    pub class: HopClass,
    /// Hop events observed.
    pub count: u64,
    /// Mean queueing wait, ns.
    pub mean_wait_ns: f64,
    /// Mean service (latency-contributing) time, ns.
    pub mean_service_ns: f64,
    /// Mean total dwell, ns.
    pub mean_total_ns: f64,
    /// P99 total dwell, ns.
    pub p99_total_ns: f64,
}

/// The span-trace half of a run's results: every sampled transaction's
/// hop-resolved record, plus the sampling configuration that produced it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceReport {
    /// The configured 1-in-N sampling rate (1 = every transaction).
    pub sampling: u32,
    /// Sampled spans, in completion order.
    pub spans: Vec<TxnSpan>,
    /// Samples dropped because the collector's cap was reached.
    pub dropped: u64,
}

impl TraceReport {
    /// Builds a report from the collector's output.
    pub fn from_spans(sampling: u32, spans: Vec<TxnSpan>, dropped: u64) -> Self {
        TraceReport {
            sampling: sampling.max(1),
            spans,
            dropped,
        }
    }

    /// Mean end-to-end latency over the sampled spans, ns (0 when empty).
    pub fn mean_e2e_ns(&self) -> f64 {
        if self.spans.is_empty() {
            0.0
        } else {
            self.spans.iter().map(|s| s.e2e_ns).sum::<f64>() / self.spans.len() as f64
        }
    }

    /// Per-hop-class latency breakdown, in [`HopClass::ALL`] order;
    /// classes with no observations are omitted.
    pub fn breakdown(&self) -> Vec<HopBreakdown> {
        struct Acc {
            count: u64,
            wait: f64,
            service: f64,
            totals: Vec<f64>,
        }
        let mut accs: Vec<Acc> = (0..HopClass::ALL.len())
            .map(|_| Acc {
                count: 0,
                wait: 0.0,
                service: 0.0,
                totals: Vec::new(),
            })
            .collect();
        for span in &self.spans {
            for hop in &span.hops {
                let (Some(class), _) = decode_hop_label(hop.label) else {
                    continue;
                };
                let a = &mut accs[class.code() as usize];
                a.count += 1;
                a.wait += hop.wait_ns();
                a.service += hop.service_ns();
                a.totals.push(hop.total_ns());
            }
        }
        accs.into_iter()
            .enumerate()
            .filter(|(_, a)| a.count > 0)
            .map(|(i, mut a)| {
                a.totals.sort_by(f64::total_cmp);
                let p99_idx =
                    ((a.totals.len() as f64 * 0.99).ceil() as usize).clamp(1, a.totals.len()) - 1;
                let n = a.count as f64;
                HopBreakdown {
                    class: HopClass::ALL[i],
                    count: a.count,
                    mean_wait_ns: a.wait / n,
                    mean_service_ns: a.service / n,
                    mean_total_ns: (a.wait + a.service) / n,
                    p99_total_ns: a.totals[p99_idx],
                }
            })
            .collect()
    }

    /// A fixed-width text rendering of [`TraceReport::breakdown`].
    pub fn breakdown_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>10} {:>14} {:>14} {:>14} {:>14}\n",
            "hop", "count", "mean-wait-ns", "mean-svc-ns", "mean-total-ns", "p99-total-ns"
        ));
        for b in self.breakdown() {
            out.push_str(&format!(
                "{:<14} {:>10} {:>14.2} {:>14.2} {:>14.2} {:>14.2}\n",
                b.class.name(),
                b.count,
                b.mean_wait_ns,
                b.mean_service_ns,
                b.mean_total_ns,
                b.p99_total_ns,
            ));
        }
        out.push_str(&format!(
            "spans: {}  dropped: {}  sampling: 1-in-{}  mean-e2e-ns: {:.2}\n",
            self.spans.len(),
            self.dropped,
            self.sampling,
            self.mean_e2e_ns(),
        ));
        out
    }

    /// Exports the spans as Chrome trace-event JSON (the format
    /// `chrome://tracing` and Perfetto load directly).
    ///
    /// Each hop becomes one complete (`"ph": "X"`) event with microsecond
    /// `ts`/`dur`; `pid` is the flow id, `tid` the issuing core (or DMA
    /// engine). `flow_names[pid]`, when present, labels the process via
    /// `process_name` metadata events. Output is deterministic: same spans
    /// in, byte-identical JSON out.
    pub fn to_chrome_trace(&self, flow_names: &[String]) -> String {
        use serde_json::Value;

        let mut trace = ChromeTraceBuilder::new();
        let mut named: Vec<u32> = self.spans.iter().map(|s| s.group).collect();
        named.sort_unstable();
        named.dedup();
        for pid in named {
            if let Some(name) = flow_names.get(pid as usize) {
                trace.process_name(pid as u64, name);
            }
        }
        for span in &self.spans {
            for hop in &span.hops {
                let (class, point) = decode_hop_label(hop.label);
                let name = class.map(HopClass::name).unwrap_or("hop");
                let mut args = vec![
                    ("seq", Value::U64(span.seq)),
                    ("wait_ns", Value::F64(hop.wait_ns())),
                    ("service_ns", Value::F64(hop.service_ns())),
                ];
                if let Some(p) = point {
                    args.push(("point", Value::U64(p as u64)));
                }
                trace.complete(
                    name,
                    "hop",
                    hop.queue_enter_ns / 1000.0,
                    hop.total_ns() / 1000.0,
                    span.group as u64,
                    span.lane as u64,
                    args,
                );
            }
        }
        trace.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_sim::stats::SpanCollector;

    fn sample_report() -> TraceReport {
        let mut c = SpanCollector::new(8);
        let h = c.start(0, 2, 0.0).unwrap();
        c.hop(h, HopClass::TrafficCtrl.code(), 0.0, 10.0, 10.0);
        c.hop(h, HopClass::Gmi.code(), 10.0, 12.0, 12.0);
        c.hop(h, HopClass::Propagation.code(), 12.0, 12.0, 112.0);
        c.finish(h, 112.0, 112.0);
        let (spans, dropped) = c.into_parts();
        TraceReport::from_spans(64, spans, dropped)
    }

    #[test]
    fn codes_round_trip() {
        for class in HopClass::ALL {
            assert_eq!(HopClass::from_code(class.code()), Some(class));
        }
        assert_eq!(HopClass::from_code(u32::MAX), None);
    }

    #[test]
    fn every_link_kind_has_a_class() {
        // from_link_kind is total: a new LinkKind without a class would
        // fail to compile, and the class must map back to a unique code.
        assert_eq!(
            HopClass::from_link_kind(LinkKind::MemChannel),
            HopClass::MemChannel
        );
        assert_eq!(HopClass::from_link_kind(LinkKind::Gmi), HopClass::Gmi);
    }

    #[test]
    fn breakdown_aggregates_by_class() {
        let report = sample_report();
        let b = report.breakdown();
        assert_eq!(b.len(), 3);
        let tc = &b[0];
        assert_eq!(tc.class, HopClass::TrafficCtrl);
        assert_eq!(tc.count, 1);
        assert!((tc.mean_wait_ns - 10.0).abs() < 1e-9);
        assert!((tc.mean_service_ns).abs() < 1e-9);
        let prop = b.last().unwrap();
        assert_eq!(prop.class, HopClass::Propagation);
        assert!((prop.mean_total_ns - 100.0).abs() < 1e-9);
        assert!((prop.p99_total_ns - 100.0).abs() < 1e-9);
        assert!((report.mean_e2e_ns() - 112.0).abs() < 1e-9);
    }

    #[test]
    fn chrome_trace_has_required_fields() {
        let report = sample_report();
        let json = report.to_chrome_trace(&["flow-a".to_string()]);
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_seq().unwrap();
        // 1 process_name metadata + 3 hop events.
        assert_eq!(events.len(), 4);
        let meta = &events[0];
        assert_eq!(meta.get("ph").unwrap().as_str(), Some("M"));
        for ev in &events[1..] {
            assert_eq!(ev.get("ph").unwrap().as_str(), Some("X"));
            assert!(ev.get("ts").unwrap().as_f64().is_some());
            assert!(ev.get("dur").unwrap().as_f64().is_some());
            assert_eq!(ev.get("pid").unwrap().as_u64(), Some(0));
            assert_eq!(ev.get("tid").unwrap().as_u64(), Some(2));
        }
        // Deterministic: same spans, byte-identical JSON.
        assert_eq!(
            json,
            sample_report().to_chrome_trace(&["flow-a".to_string()])
        );
    }

    #[test]
    fn packed_labels_round_trip_and_bare_codes_stay_pointless() {
        for class in HopClass::ALL {
            assert_eq!(decode_hop_label(class.code()), (Some(class), None));
            assert_eq!(encode_hop_label(class, None), class.code());
            for point in [0u32, 1, 7, 4095] {
                let label = encode_hop_label(class, Some(point));
                assert_eq!(decode_hop_label(label), (Some(class), Some(point)));
            }
        }
        // An unknown class survives as None without disturbing the point.
        assert_eq!(decode_hop_label(0xff | (3 << 8)), (None, Some(2)));
    }

    #[test]
    fn packed_labels_aggregate_with_bare_codes_in_breakdown() {
        let mut c = SpanCollector::new(8);
        let h = c.start(0, 0, 0.0).unwrap();
        c.hop(h, HopClass::Gmi.code(), 0.0, 0.0, 5.0);
        c.hop(h, encode_hop_label(HopClass::Gmi, Some(3)), 5.0, 5.0, 15.0);
        c.finish(h, 15.0, 15.0);
        let (spans, dropped) = c.into_parts();
        let report = TraceReport::from_spans(1, spans, dropped);
        let b = report.breakdown();
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].class, HopClass::Gmi);
        assert_eq!(b[0].count, 2);
        assert!((b[0].mean_total_ns - 7.5).abs() < 1e-9);
    }

    #[test]
    fn chrome_trace_escapes_hostile_flow_names() {
        let report = sample_report();
        let hostile = "fl\"ow\\a\n\tctrl\u{1}".to_string();
        let json = report.to_chrome_trace(std::slice::from_ref(&hostile));
        // The raw control characters must never appear unescaped.
        assert!(!json.contains('\n'));
        assert!(!json.contains('\t'));
        assert!(!json.contains('\u{1}'));
        // Round-trip: the parsed metadata event recovers the name exactly.
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_seq().unwrap();
        let meta = &events[0];
        assert_eq!(meta.get("ph").unwrap().as_str(), Some("M"));
        let name = meta.get("args").unwrap().get("name").unwrap();
        assert_eq!(name.as_str(), Some(hostile.as_str()));
    }

    #[test]
    fn breakdown_table_renders() {
        let t = sample_report().breakdown_table();
        assert!(t.contains("traffic-ctrl"));
        assert!(t.contains("propagation"));
        assert!(t.contains("sampling: 1-in-64"));
    }
}
