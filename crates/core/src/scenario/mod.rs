//! The declarative scenario layer: experiments as data, not code.
//!
//! The paper's §4 future directions call for flow abstractions over a
//! hardware-abstracted chiplet layer; this module is the workspace's
//! version of that idea for *experiments*. A [`ScenarioSpec`] names a
//! platform, a set of flows with [demand schedules], a traffic policy, a
//! horizon, a seed, and a backend — and both engines run it:
//!
//! * [`EventEngineBackend`] drives the transaction-level
//!   [`Engine`](crate::engine::Engine) (microsecond horizons, real latency
//!   distributions);
//! * [`FluidBackend`] drives [`chiplet_fluid::FluidSim`] (second-scale
//!   bandwidth-sharing dynamics).
//!
//! Both produce the same [`ScenarioReport`]: per-flow achieved bandwidth,
//! latency when the backend measures it, and optional bandwidth traces.
//! Specs serialize losslessly to JSON ([`ScenarioSpec::to_json`] /
//! [`ScenarioSpec::from_json`]), and a given spec + seed yields a
//! byte-identical report on every run.
//!
//! The [`ScenarioRegistry`] maps names to built-in scenarios (the paper's
//! figures and tables, plus the ablation studies), so benchmark binaries
//! shrink to thin wrappers and new experiments are JSON files rather than
//! Rust programs.
//!
//! [demand schedules]: chiplet_sim::DemandSchedule

mod backend;
mod registry;
mod report;
mod spec;
mod sweep;

#[cfg(test)]
mod tests;

pub use backend::{describe_fluid_metrics, Backend, EventEngineBackend, FluidBackend};
pub use registry::{ScenarioEntry, ScenarioKind, ScenarioRegistry, ScenarioRun};
pub use report::{FlowReport, ScenarioOutcome, ScenarioReport};
pub use spec::{
    BackendKind, CoreSelect, EngineFlow, EngineOptions, FluidLinkSpec, FluidOptions, ScenarioError,
    ScenarioFlow, ScenarioSpec, TargetSpec, TopologyChoice,
};
pub use sweep::{
    cache_path, effective_jobs, effective_jobs_with, load_cache_entry, parallel_ordered, run_specs,
    run_specs_with_metrics, spec_hash, store_cache_entry, CacheLookup, SweepAxis, SweepOutcome,
    SweepPoint, SweepPointResult, SweepRunner, SweepSpec, SweepStats, MAX_POINTS,
};
pub(crate) use sweep::{fnv1a64, splitmix64};
