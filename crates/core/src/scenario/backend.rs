//! The two scenario executors.

use chiplet_fluid::{FluidFlowSpec, FluidLink, FluidSim};
use chiplet_sim::{DemandSchedule, SimDuration, SimTime};
use chiplet_topology::Topology;

use super::report::{FlowReport, ScenarioOutcome, ScenarioReport};
use super::spec::{ScenarioError, ScenarioSpec};
use crate::engine::{Engine, EngineConfig, RunResult};
use crate::metrics::MetricsRegistry;

/// A scenario executor: compiles a [`ScenarioSpec`] for one of the
/// workspace's engines and returns the common [`ScenarioReport`].
pub trait Backend {
    /// The backend's name, as recorded in reports.
    fn name(&self) -> &'static str;

    /// Runs the scenario. `Err` means the spec itself doesn't resolve;
    /// a platform that can't exercise the scenario yields
    /// `Ok(ScenarioReport::Unsupported { .. })` instead.
    fn run(&self, spec: &ScenarioSpec) -> Result<ScenarioReport, ScenarioError>;

    /// Runs the scenario and merges its telemetry into `metrics`, labelled
    /// with `backend` and `scenario` so several runs share one registry.
    /// The default is a plain [`Backend::run`] that records nothing — a
    /// backend that produces telemetry overrides this.
    fn run_with_metrics(
        &self,
        spec: &ScenarioSpec,
        metrics: &mut MetricsRegistry,
    ) -> Result<ScenarioReport, ScenarioError> {
        let _ = metrics;
        self.run(spec)
    }
}

/// Runs scenarios on the transaction-level event engine.
pub struct EventEngineBackend;

impl EventEngineBackend {
    /// Builds an engine loaded with the spec's flows over a resolved
    /// topology. Exposed so callers that need the full [`RunResult`]
    /// (trace exports, telemetry dumps) still construct engines through
    /// the scenario layer.
    pub fn instantiate<'t>(
        spec: &ScenarioSpec,
        topo: &'t Topology,
    ) -> Result<Engine<'t>, ScenarioError> {
        let mut engine = Engine::new(topo, spec.engine_config());
        for flow in &spec.flows {
            engine.add_flow(spec.compile_flow(flow, topo)?);
        }
        Ok(engine)
    }

    /// Runs the spec and returns the engine's native result alongside the
    /// resolved topology (for callers that post-process telemetry).
    pub fn run_raw(spec: &ScenarioSpec) -> Result<(RunResult, Topology), ScenarioError> {
        Self::run_raw_with(spec, spec.engine_config())
    }

    /// The metrics window used when a spec enables metrics without naming
    /// one: horizon / 32, floored at a nanosecond.
    pub fn default_metrics_window(spec: &ScenarioSpec) -> SimDuration {
        SimDuration::from_nanos((spec.horizon.as_nanos() / 32).max(1))
    }

    fn run_raw_with(
        spec: &ScenarioSpec,
        cfg: EngineConfig,
    ) -> Result<(RunResult, Topology), ScenarioError> {
        let topo = spec.topology.resolve()?;
        let mut engine = Engine::new(&topo, cfg);
        for flow in &spec.flows {
            engine.add_flow(spec.compile_flow(flow, &topo)?);
        }
        let result = engine.run(spec.horizon);
        Ok((result, topo))
    }

    fn report(spec: &ScenarioSpec, result: &RunResult, topo: &Topology) -> ScenarioReport {
        let flows = spec
            .flows
            .iter()
            .zip(&result.flows)
            .map(|(sf, ft)| FlowReport {
                name: ft.name.clone(),
                offered_gb_s: sf
                    .demand
                    .as_ref()
                    .and_then(|d| d.at(SimTime::ZERO))
                    .map(|b| b.as_gb_per_s()),
                achieved_gb_s: ft.achieved.as_gb_per_s(),
                mean_latency_ns: Some(ft.mean_latency_ns()),
                p999_latency_ns: Some(ft.p999_latency_ns()),
                issued: ft.issued,
                completed: ft.completed,
                trace: ft.trace.clone(),
            })
            .collect();
        ScenarioReport::Completed(ScenarioOutcome {
            scenario: spec.name.clone(),
            backend: "event".into(),
            platform: topo.spec().name.clone(),
            seed: spec.seed_or_default(),
            horizon: spec.horizon,
            flows,
        })
    }
}

impl Backend for EventEngineBackend {
    fn name(&self) -> &'static str {
        "event"
    }

    fn run(&self, spec: &ScenarioSpec) -> Result<ScenarioReport, ScenarioError> {
        let (result, topo) = Self::run_raw(spec)?;
        Ok(Self::report(spec, &result, &topo))
    }

    fn run_with_metrics(
        &self,
        spec: &ScenarioSpec,
        metrics: &mut MetricsRegistry,
    ) -> Result<ScenarioReport, ScenarioError> {
        let mut cfg = spec.engine_config();
        if cfg.metrics_window.is_none() {
            cfg.metrics_window = Some(Self::default_metrics_window(spec));
        }
        let (result, topo) = Self::run_raw_with(spec, cfg)?;
        if let Some(m) = &result.metrics {
            metrics.merge_labeled(m, &[("backend", self.name()), ("scenario", &spec.name)]);
        }
        Ok(Self::report(spec, &result, &topo))
    }
}

/// Runs scenarios on the flow-level fluid engine.
pub struct FluidBackend;

impl FluidBackend {
    /// Default integration step.
    pub const DEFAULT_DT: SimDuration = SimDuration::from_millis(1);
    /// Default trace sampling interval.
    pub const DEFAULT_SAMPLE: SimDuration = SimDuration::from_millis(10);

    /// Resolves the spec's fluid link table.
    pub fn links(spec: &ScenarioSpec) -> Result<Vec<FluidLink>, ScenarioError> {
        let Some(fluid) = &spec.fluid else {
            return Err(ScenarioError::Invalid(
                "the fluid backend needs a `fluid.links` table".into(),
            ));
        };
        fluid.links.iter().map(|l| l.resolve()).collect()
    }

    /// Builds the sim plus its effective step and sampling interval.
    fn build(spec: &ScenarioSpec) -> Result<(FluidSim, SimDuration, SimDuration), ScenarioError> {
        let links = Self::links(spec)?;
        let n_links = links.len();
        let mut sim = FluidSim::new(links);
        for flow in &spec.flows {
            if flow.links.is_empty() {
                return Err(ScenarioError::Invalid(format!(
                    "flow '{}' crosses no fluid links (required by the fluid backend)",
                    flow.name
                )));
            }
            if let Some(&bad) = flow.links.iter().find(|&&l| l >= n_links) {
                return Err(ScenarioError::Invalid(format!(
                    "flow '{}': fluid link {bad} out of range (table has {n_links})",
                    flow.name
                )));
            }
            sim.add_flow(FluidFlowSpec {
                name: flow.name.clone(),
                demand: flow
                    .demand
                    .clone()
                    .unwrap_or_else(|| DemandSchedule::constant(None)),
                links: flow.links.clone(),
            });
        }
        let opts = spec.fluid.as_ref().expect("links() checked presence");
        let dt = opts.dt.unwrap_or(Self::DEFAULT_DT);
        let sample = opts.sample.unwrap_or(Self::DEFAULT_SAMPLE);
        Ok((sim, dt, sample))
    }

    fn report(
        spec: &ScenarioSpec,
        traces: Vec<Vec<chiplet_sim::stats::TracePoint>>,
    ) -> Result<ScenarioReport, ScenarioError> {
        let platform = spec.topology.platform()?.name;
        let flows = spec
            .flows
            .iter()
            .zip(traces)
            .map(|(sf, trace)| {
                // Time-average of the sampled rate over the whole horizon.
                let mean = if trace.is_empty() {
                    0.0
                } else {
                    trace.iter().map(|p| p.bandwidth.as_gb_per_s()).sum::<f64>()
                        / trace.len() as f64
                };
                FlowReport {
                    name: sf.name.clone(),
                    offered_gb_s: sf
                        .demand
                        .as_ref()
                        .and_then(|d| d.at(SimTime::ZERO))
                        .map(|b| b.as_gb_per_s()),
                    achieved_gb_s: mean,
                    mean_latency_ns: None,
                    p999_latency_ns: None,
                    issued: 0,
                    completed: 0,
                    trace,
                }
            })
            .collect();
        Ok(ScenarioReport::Completed(ScenarioOutcome {
            scenario: spec.name.clone(),
            backend: "fluid".into(),
            platform,
            seed: spec.seed_or_default(),
            horizon: spec.horizon,
            flows,
        }))
    }
}

/// Declares the fluid engine's metric families on a registry, so an
/// instrumented run emits `# HELP` text even for families that stay empty.
pub fn describe_fluid_metrics(m: &mut MetricsRegistry) {
    use crate::metrics::MetricKind;
    m.describe(
        "fluid_ticks",
        MetricKind::Counter,
        "Integration epochs the fluid engine stepped through.",
    );
    m.describe(
        "fluid_flow_bytes",
        MetricKind::Counter,
        "Bytes a fluid flow moved, integrated from its allocated rate.",
    );
    m.describe(
        "fluid_flow_rate_gb_s",
        MetricKind::Histogram,
        "Per-epoch allocated rate of a fluid flow, GB/s.",
    );
    m.describe(
        "fluid_harvest_ramp_ticks",
        MetricKind::Counter,
        "Epochs a flow spent ramping toward a higher equilibrium rate.",
    );
    m.describe(
        "fluid_flow_final_rate_gb_s",
        MetricKind::Gauge,
        "A fluid flow's allocated rate at the end of the run, GB/s.",
    );
    // Self-profiling families: kept volatile so the default
    // (deterministic) dumps pinned by the scenario goldens are unchanged.
    m.describe_volatile(
        "fluid_alloc_memo_hits",
        MetricKind::Counter,
        "Integration epochs served from the allocator's demand memo.",
    );
    m.describe_volatile(
        "fluid_alloc_memo_misses",
        MetricKind::Counter,
        "Integration epochs that re-solved the fluid equilibrium.",
    );
}

impl Backend for FluidBackend {
    fn name(&self) -> &'static str {
        "fluid"
    }

    fn run(&self, spec: &ScenarioSpec) -> Result<ScenarioReport, ScenarioError> {
        let (sim, dt, sample) = Self::build(spec)?;
        let traces = sim.run(spec.horizon, dt, sample, spec.seed_or_default());
        Self::report(spec, traces)
    }

    fn run_with_metrics(
        &self,
        spec: &ScenarioSpec,
        metrics: &mut MetricsRegistry,
    ) -> Result<ScenarioReport, ScenarioError> {
        let (sim, dt, sample) = Self::build(spec)?;
        let mut inner = MetricsRegistry::with_window(sample);
        describe_fluid_metrics(&mut inner);
        let traces =
            sim.run_instrumented(spec.horizon, dt, sample, spec.seed_or_default(), &mut inner);
        metrics.merge_labeled(
            &inner,
            &[("backend", self.name()), ("scenario", &spec.name)],
        );
        Self::report(spec, traces)
    }
}
