//! The serializable scenario description.

use chiplet_fluid::FluidLink;
use chiplet_mem::{OpKind, Pattern};
use chiplet_sim::{ByteSize, DemandSchedule, SimDuration, SimTime};
use chiplet_topology::{CcdId, CoreId, PlatformSpec, Topology};
use serde::{Deserialize, Serialize};

use crate::engine::EngineConfig;
use crate::flow::{FlowSpec, Target};
use crate::traffic::TrafficPolicy;

/// A scenario failed to resolve against its platform or backend.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The spec references something that doesn't exist (an unknown
    /// platform name, an out-of-range CCD, a missing fluid link table…).
    Invalid(String),
}

impl core::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ScenarioError::Invalid(msg) => write!(f, "invalid scenario: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

fn invalid<T>(msg: impl Into<String>) -> Result<T, ScenarioError> {
    Err(ScenarioError::Invalid(msg.into()))
}

/// Which platform a scenario runs on.
// An inline `PlatformSpec` dwarfs a preset name, but specs are parsed
// once per run and boxing would leak into the JSON-facing constructors.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologyChoice {
    /// A named preset: `epyc_7302`, `epyc_9634`, `dual_epyc_7302`,
    /// `monolithic`, or `epyc_9634_nic` (the 9634 with a 400 GbE NIC).
    Named(String),
    /// An inline platform description.
    Inline(PlatformSpec),
}

impl TopologyChoice {
    /// The platform spec this choice selects.
    pub fn platform(&self) -> Result<PlatformSpec, ScenarioError> {
        match self {
            TopologyChoice::Named(name) => match name.as_str() {
                "epyc_7302" => Ok(PlatformSpec::epyc_7302()),
                "epyc_9634" => Ok(PlatformSpec::epyc_9634()),
                "dual_epyc_7302" => Ok(PlatformSpec::dual_epyc_7302()),
                "monolithic" => Ok(PlatformSpec::monolithic_baseline()),
                "epyc_9634_nic" => {
                    Ok(PlatformSpec::epyc_9634().with_nic(chiplet_topology::NicSpec::gbe400()))
                }
                other => invalid(format!(
                    "unknown platform '{other}' (expected epyc_7302, epyc_9634, \
                     dual_epyc_7302, monolithic, or epyc_9634_nic)"
                )),
            },
            TopologyChoice::Inline(spec) => Ok(spec.clone()),
        }
    }

    /// Builds the topology.
    pub fn resolve(&self) -> Result<Topology, ScenarioError> {
        Ok(Topology::build(&self.platform()?))
    }
}

/// Which issuing cores an engine flow uses, resolved against the platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CoreSelect {
    /// Explicit core ids.
    Cores(Vec<u32>),
    /// Every core of one CCD.
    Ccd(u32),
    /// Every core of several CCDs.
    Ccds(Vec<u32>),
    /// Every core of one CCX.
    Ccx(u32),
    /// Every core of the platform.
    All,
}

impl CoreSelect {
    /// The selected cores, in id order.
    pub fn resolve(&self, topo: &Topology) -> Result<Vec<CoreId>, ScenarioError> {
        let ccds = topo.spec().ccd_count;
        match self {
            CoreSelect::Cores(ids) => {
                for &c in ids {
                    if c >= topo.core_count() {
                        return invalid(format!("core {c} out of range"));
                    }
                }
                Ok(ids.iter().map(|&c| CoreId(c)).collect())
            }
            CoreSelect::Ccd(c) => {
                if *c >= ccds {
                    return invalid(format!("CCD {c} out of range (platform has {ccds})"));
                }
                Ok(topo.cores_of_ccd(CcdId(*c)).collect())
            }
            CoreSelect::Ccds(cs) => {
                let mut cores = Vec::new();
                for &c in cs {
                    if c >= ccds {
                        return invalid(format!("CCD {c} out of range (platform has {ccds})"));
                    }
                    cores.extend(topo.cores_of_ccd(CcdId(c)));
                }
                Ok(cores)
            }
            CoreSelect::Ccx(x) => {
                let cores: Vec<CoreId> = topo.cores_of_ccx(*x).collect();
                if cores.is_empty() {
                    return invalid(format!("CCX {x} has no cores on this platform"));
                }
                Ok(cores)
            }
            CoreSelect::All => Ok((0..topo.core_count()).map(CoreId).collect()),
        }
    }
}

/// An engine flow's destination, resolved against the platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TargetSpec {
    /// Every DIMM (the NPS1 interleave set).
    AllDimms,
    /// Explicit DIMM ids.
    Dimms(Vec<u32>),
    /// A CXL device, by index.
    Cxl(u32),
}

impl TargetSpec {
    /// The concrete target.
    pub fn resolve(&self, topo: &Topology) -> Result<Target, ScenarioError> {
        match self {
            TargetSpec::AllDimms => Ok(Target::all_dimms(topo)),
            TargetSpec::Dimms(ds) => {
                if ds.is_empty() {
                    return invalid("flow targets an empty DIMM set");
                }
                for &d in ds {
                    if d >= topo.dimm_count() {
                        return invalid(format!("DIMM {d} out of range"));
                    }
                }
                Ok(Target::Dimms(
                    ds.iter().map(|&d| chiplet_topology::DimmId(d)).collect(),
                ))
            }
            TargetSpec::Cxl(dev) => {
                if *dev >= topo.cxl_device_count() {
                    return invalid(format!(
                        "CXL device {dev} not present (platform has {})",
                        topo.cxl_device_count()
                    ));
                }
                Ok(Target::Cxl(*dev))
            }
        }
    }
}

/// The event-engine mapping of a scenario flow: where transactions come
/// from and where they go.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineFlow {
    /// Issuing cores. Ignored when `nic` is set.
    pub cores: CoreSelect,
    /// Issuing NIC for DMA flows; mutually exclusive with cores.
    #[serde(default)]
    pub nic: Option<u32>,
    /// Destination.
    pub target: TargetSpec,
    /// Operation kind; absent = sequential reads.
    #[serde(default)]
    pub op: Option<OpKind>,
    /// Spatial pattern; absent = sequential.
    #[serde(default)]
    pub pattern: Option<Pattern>,
    /// Working-set size; absent = 1 GiB (memory-resident).
    #[serde(default)]
    pub working_set: Option<ByteSize>,
    /// Start time; absent = time zero.
    #[serde(default)]
    pub start: Option<SimTime>,
    /// Stop time; absent = the run horizon.
    #[serde(default)]
    pub stop: Option<SimTime>,
}

/// One flow of a scenario.
///
/// The demand schedule is backend-independent; `engine` maps the flow onto
/// the transaction engine's cores and targets, and `links` maps it onto the
/// fluid model's link table. A flow that carries both runs on either
/// backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioFlow {
    /// Display name (appears in the report).
    pub name: String,
    /// Offered load over time; absent = unthrottled for the whole run.
    #[serde(default)]
    pub demand: Option<DemandSchedule>,
    /// Event-engine mapping.
    #[serde(default)]
    pub engine: Option<EngineFlow>,
    /// Fluid-model mapping: indices into the scenario's fluid link table.
    #[serde(default)]
    pub links: Vec<usize>,
}

/// Event-engine execution options.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EngineOptions {
    /// Statistics warmup; absent = the engine default (2 µs).
    #[serde(default)]
    pub warmup: Option<SimDuration>,
    /// Variability-free memory devices (calibration mode).
    #[serde(default)]
    pub deterministic_memory: bool,
    /// Per-flow bandwidth time series with this sampling window.
    #[serde(default)]
    pub trace_window: Option<SimDuration>,
    /// Span-level hop tracing: sample 1 in N transactions.
    #[serde(default)]
    pub trace_sampling: Option<u32>,
    /// Metrics-registry window width (sim time). Absent = no registry when
    /// running plain, or horizon/32 when running with metrics. Skipped when
    /// absent so older specs (and their sweep-point hashes) keep their bytes.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics_window: Option<SimDuration>,
    /// Engine self-profiling (phase timers + queue histograms). Absent =
    /// off; skipped when absent so older specs keep their bytes.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub profile_phases: Option<bool>,
    /// Event-engine worker threads (domain-parallel execution). Absent = 1
    /// (sequential); skipped when absent so older specs keep their bytes.
    /// Results are byte-identical for any worker count.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub workers: Option<usize>,
}

/// A fluid link: a preset name or an inline description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FluidLinkSpec {
    /// A named preset: `if_9634`, `plink_9634`, or `if_7302`.
    Named(String),
    /// An inline link.
    Inline(FluidLink),
}

impl FluidLinkSpec {
    /// The concrete link.
    pub fn resolve(&self) -> Result<FluidLink, ScenarioError> {
        match self {
            FluidLinkSpec::Named(name) => match name.as_str() {
                "if_9634" => Ok(FluidLink::if_9634()),
                "plink_9634" => Ok(FluidLink::plink_9634()),
                "if_7302" => Ok(FluidLink::if_7302()),
                other => invalid(format!(
                    "unknown fluid link '{other}' (expected if_9634, plink_9634, or if_7302)"
                )),
            },
            FluidLinkSpec::Inline(link) => Ok(link.clone()),
        }
    }
}

/// Fluid-backend execution options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FluidOptions {
    /// The shared-link table flows reference by index.
    pub links: Vec<FluidLinkSpec>,
    /// Integration step; absent = 1 ms.
    #[serde(default)]
    pub dt: Option<SimDuration>,
    /// Trace sampling interval; absent = 10 ms.
    #[serde(default)]
    pub sample: Option<SimDuration>,
}

/// Which engine executes the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendKind {
    /// The transaction-level event engine.
    Event,
    /// The flow-level fluid engine.
    Fluid,
}

/// A complete, serializable experiment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (appears in the report).
    pub name: String,
    /// One-line description.
    #[serde(default)]
    pub description: String,
    /// The platform.
    pub topology: TopologyChoice,
    /// Which engine runs it.
    pub backend: BackendKind,
    /// RNG seed; absent = 42. Same spec + seed ⇒ byte-identical report.
    #[serde(default)]
    pub seed: Option<u64>,
    /// Run horizon.
    pub horizon: SimTime,
    /// Traffic-manager policy (event backend only).
    #[serde(default)]
    pub policy: TrafficPolicy,
    /// Event-engine options.
    #[serde(default)]
    pub engine: Option<EngineOptions>,
    /// Fluid-backend options; required when `backend` is `Fluid`.
    #[serde(default)]
    pub fluid: Option<FluidOptions>,
    /// The flows.
    pub flows: Vec<ScenarioFlow>,
}

impl ScenarioSpec {
    /// The effective seed.
    pub fn seed_or_default(&self) -> u64 {
        self.seed.unwrap_or(42)
    }

    /// The engine configuration this spec implies.
    pub fn engine_config(&self) -> EngineConfig {
        let mut cfg = EngineConfig::default().with_seed(self.seed_or_default());
        cfg.policy = self.policy.clone();
        if let Some(opts) = &self.engine {
            if let Some(w) = opts.warmup {
                cfg.warmup = w;
            }
            if opts.deterministic_memory {
                cfg.dram = Some(chiplet_mem::DramServiceModel::deterministic());
                cfg.cxl = Some(chiplet_mem::DramServiceModel::deterministic());
            }
            cfg.trace_window = opts.trace_window;
            cfg.trace_sampling = opts.trace_sampling;
            cfg.metrics_window = opts.metrics_window;
            cfg.profile_phases = opts.profile_phases.unwrap_or(false);
            cfg.workers = opts.workers.unwrap_or(1).max(1);
        }
        cfg
    }

    /// Compiles one scenario flow into an engine [`FlowSpec`].
    pub fn compile_flow(
        &self,
        flow: &ScenarioFlow,
        topo: &Topology,
    ) -> Result<FlowSpec, ScenarioError> {
        let Some(ef) = &flow.engine else {
            return invalid(format!(
                "flow '{}' has no engine mapping (required by the event backend)",
                flow.name
            ));
        };
        if let Some(nic) = ef.nic {
            if nic >= topo.nic_count() {
                return invalid(format!(
                    "flow '{}': NIC {nic} not present on this platform",
                    flow.name
                ));
            }
        }
        let cores = if ef.nic.is_some() {
            Vec::new()
        } else {
            let cores = ef.cores.resolve(topo)?;
            if cores.is_empty() {
                return invalid(format!("flow '{}' selects no cores", flow.name));
            }
            cores
        };
        let target = ef.target.resolve(topo)?;
        let op = ef.op.unwrap_or(OpKind::Read);
        if ef.nic.is_some() {
            if target.is_cxl() {
                return invalid(format!(
                    "flow '{}': NIC DMA targets memory, not CXL",
                    flow.name
                ));
            }
            if op == OpKind::WriteTemporal {
                return invalid(format!("flow '{}': DMA writes are non-temporal", flow.name));
            }
        }
        let mut spec = FlowSpec {
            name: flow.name.clone(),
            cores,
            nic: ef.nic,
            target,
            op,
            pattern: ef.pattern.unwrap_or(Pattern::Sequential),
            working_set: ef.working_set.unwrap_or_else(|| ByteSize::from_gib(1)),
            offered: None,
            demand: None,
            start: ef.start.unwrap_or(SimTime::ZERO),
            stop: ef.stop,
        };
        if let Some(stop) = spec.stop {
            if stop < spec.start {
                return invalid(format!("flow '{}' stops before it starts", flow.name));
            }
        }
        match &flow.demand {
            None => {}
            Some(s) if s.is_constant() => {
                // A single-piece schedule compiles to the engine's constant
                // pacing path (bit-identical to a hand-built `offered`).
                spec.offered = s.at(SimTime::ZERO);
                if spec.offered.is_none() {
                    spec.demand = None;
                } else if !spec.offered.unwrap().is_positive() {
                    spec.demand = Some(s.clone());
                    spec.offered = None;
                }
            }
            Some(s) => spec.demand = Some(s.clone()),
        }
        Ok(spec)
    }

    /// Serializes to pretty JSON. The output is deterministic: field order
    /// follows the declaration order, so equal specs yield equal bytes.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario specs always serialize")
    }

    /// Parses a spec back from [`ScenarioSpec::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, ScenarioError> {
        serde_json::from_str(s).map_err(|e| ScenarioError::Invalid(format!("JSON error: {e:?}")))
    }

    /// Runs the scenario on its configured backend.
    pub fn run(&self) -> Result<super::ScenarioReport, ScenarioError> {
        use super::Backend;
        match self.backend {
            BackendKind::Event => super::EventEngineBackend.run(self),
            BackendKind::Fluid => super::FluidBackend.run(self),
        }
    }

    /// Runs the scenario and folds its telemetry into `metrics`, with
    /// `scenario` and `backend` labels distinguishing this run's series.
    /// Metric values are derived from sim time only, so repeated calls
    /// against a fresh registry produce byte-identical
    /// [`MetricsRegistry::to_openmetrics`] dumps.
    ///
    /// [`MetricsRegistry::to_openmetrics`]: crate::metrics::MetricsRegistry::to_openmetrics
    pub fn run_with_metrics(
        &self,
        metrics: &mut crate::metrics::MetricsRegistry,
    ) -> Result<super::ScenarioReport, ScenarioError> {
        use super::Backend;
        match self.backend {
            BackendKind::Event => super::EventEngineBackend.run_with_metrics(self, metrics),
            BackendKind::Fluid => super::FluidBackend.run_with_metrics(self, metrics),
        }
    }
}
