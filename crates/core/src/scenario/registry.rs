//! Named scenario registry.
//!
//! Maps names (`fig3`, `table1`, `bdp_control`, …) to runnable scenarios.
//! Two kinds of entries exist:
//!
//! * **specs** — declarative [`ScenarioSpec`]s executed through a backend;
//! * **studies** — composite experiments (parameter sweeps, multi-run
//!   comparisons) that orchestrate many engine runs and render their own
//!   text, but route every run through the scenario layer.
//!
//! The registry itself is domain-agnostic; the paper's built-ins are
//! registered by the benchmark crate (`chiplet_bench::paper_registry`),
//! which owns the sweep helpers and table rendering.

use super::report::ScenarioReport;
use super::spec::{ScenarioError, ScenarioSpec};
use super::sweep::{SweepOutcome, SweepRunner, SweepSpec};
use crate::dse::{DseOutcome, DseRunner, DseSpec};
use crate::metrics::MetricsRegistry;

/// What a registry entry builds.
// Entries are built one at a time and consumed immediately; the size gap
// between a full spec and a study fn pointer costs nothing here.
#[allow(clippy::large_enum_variant)]
pub enum ScenarioKind {
    /// A declarative spec, run on its configured backend.
    Spec(ScenarioSpec),
    /// A composite study returning rendered text. The study records any
    /// telemetry it produces into the registry it's handed (a throwaway
    /// one under [`ScenarioRegistry::run`]).
    Study(fn(&mut MetricsRegistry) -> String),
    /// A declarative parameter sweep over a base spec.
    Sweep(SweepSpec),
    /// A design-space search: analytical scoring, Pareto frontier, and
    /// event-engine escalation.
    Dse(DseSpec),
}

/// One named scenario.
pub struct ScenarioEntry {
    /// Registry name (`fig3`, `bdp_control`, …).
    pub name: &'static str,
    /// One-line summary for `scenario list`.
    pub summary: &'static str,
    /// Builds the scenario (specs are constructed lazily so listing the
    /// registry stays cheap).
    pub build: fn() -> ScenarioKind,
}

/// What running a registry entry produced.
pub enum ScenarioRun {
    /// A spec's structured report.
    Report(ScenarioReport),
    /// A study's rendered text.
    Text(String),
    /// A sweep's aggregate outcome.
    Sweep(SweepOutcome),
    /// A design-space search's frontier report.
    Dse(DseOutcome),
}

/// A name → scenario table.
#[derive(Default)]
pub struct ScenarioRegistry {
    entries: Vec<ScenarioEntry>,
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an entry; names must be unique.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name.
    pub fn register(&mut self, entry: ScenarioEntry) {
        assert!(
            !self.entries.iter().any(|e| e.name == entry.name),
            "duplicate scenario '{}'",
            entry.name
        );
        self.entries.push(entry);
    }

    /// The entries, in registration order.
    pub fn entries(&self) -> &[ScenarioEntry] {
        &self.entries
    }

    /// Looks an entry up by name.
    pub fn get(&self, name: &str) -> Option<&ScenarioEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Builds and runs a named scenario. `None` = unknown name. Sweeps run
    /// with a default runner (auto worker count, no cache); use
    /// [`SweepRunner`] directly for cache or job control.
    pub fn run(&self, name: &str) -> Option<Result<ScenarioRun, ScenarioError>> {
        let entry = self.get(name)?;
        Some(match (entry.build)() {
            ScenarioKind::Spec(spec) => spec.run().map(ScenarioRun::Report),
            ScenarioKind::Study(f) => Ok(ScenarioRun::Text(f(&mut MetricsRegistry::new()))),
            ScenarioKind::Sweep(sweep) => SweepRunner::default()
                .run(&sweep)
                .map(|(outcome, _)| ScenarioRun::Sweep(outcome)),
            ScenarioKind::Dse(search) => DseRunner::default()
                .run(&search)
                .map(|(outcome, _)| ScenarioRun::Dse(outcome)),
        })
    }

    /// Like [`ScenarioRegistry::run`], but folds the run's telemetry into
    /// `metrics`: specs run through the metric-aware backends, studies
    /// record into the shared registry directly, and sweeps add per-point
    /// gauges plus volatile execution counters.
    pub fn run_with_metrics(
        &self,
        name: &str,
        metrics: &mut MetricsRegistry,
    ) -> Option<Result<ScenarioRun, ScenarioError>> {
        let entry = self.get(name)?;
        Some(match (entry.build)() {
            ScenarioKind::Spec(spec) => spec.run_with_metrics(metrics).map(ScenarioRun::Report),
            ScenarioKind::Study(f) => Ok(ScenarioRun::Text(f(metrics))),
            ScenarioKind::Sweep(sweep) => SweepRunner::default()
                .run_with_metrics(&sweep, metrics)
                .map(|(outcome, _)| ScenarioRun::Sweep(outcome)),
            ScenarioKind::Dse(search) => DseRunner::default()
                .run_with_metrics(&search, metrics)
                .map(|(outcome, _)| ScenarioRun::Dse(outcome)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_get_and_order() {
        let mut reg = ScenarioRegistry::new();
        reg.register(ScenarioEntry {
            name: "a",
            summary: "first",
            build: || ScenarioKind::Study(|_| "A".into()),
        });
        reg.register(ScenarioEntry {
            name: "b",
            summary: "second",
            build: || ScenarioKind::Study(|_| "B".into()),
        });
        assert_eq!(reg.entries().len(), 2);
        assert_eq!(reg.entries()[0].name, "a");
        assert!(reg.get("b").is_some());
        assert!(reg.get("missing").is_none());
        match reg.run("b") {
            Some(Ok(ScenarioRun::Text(t))) => assert_eq!(t, "B"),
            _ => panic!("study should run"),
        }
        assert!(reg.run("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate scenario")]
    fn duplicate_names_rejected() {
        let mut reg = ScenarioRegistry::new();
        let entry = || ScenarioEntry {
            name: "x",
            summary: "",
            build: || ScenarioKind::Study(|_| String::new()),
        };
        reg.register(entry());
        reg.register(entry());
    }
}
