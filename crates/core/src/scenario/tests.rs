use chiplet_sim::{Bandwidth, ByteSize, DemandSchedule, SimDuration, SimTime};

use super::*;

fn event_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "unit_event".into(),
        description: "one CCD reading all DIMMs".into(),
        topology: TopologyChoice::Named("epyc_7302".into()),
        backend: BackendKind::Event,
        seed: Some(7),
        horizon: SimTime::from_micros(30),
        policy: Default::default(),
        engine: Some(EngineOptions {
            deterministic_memory: true,
            ..Default::default()
        }),
        fluid: None,
        flows: vec![ScenarioFlow {
            name: "probe".into(),
            demand: Some(DemandSchedule::constant(Some(Bandwidth::from_gb_per_s(
                8.0,
            )))),
            engine: Some(EngineFlow {
                cores: CoreSelect::Ccd(0),
                nic: None,
                target: TargetSpec::AllDimms,
                op: None,
                pattern: None,
                working_set: Some(ByteSize::from_mib(64)),
                start: None,
                stop: None,
            }),
            links: Vec::new(),
        }],
    }
}

fn fluid_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "unit_fluid".into(),
        description: String::new(),
        topology: TopologyChoice::Named("epyc_9634".into()),
        backend: BackendKind::Fluid,
        seed: None,
        horizon: SimTime::from_millis(200),
        policy: Default::default(),
        engine: None,
        fluid: Some(FluidOptions {
            links: vec![FluidLinkSpec::Named("if_9634".into())],
            dt: Some(SimDuration::from_millis(1)),
            sample: Some(SimDuration::from_millis(20)),
        }),
        flows: vec![
            ScenarioFlow {
                name: "greedy".into(),
                demand: None,
                engine: None,
                links: vec![0],
            },
            ScenarioFlow {
                name: "capped".into(),
                demand: Some(DemandSchedule::constant(Some(Bandwidth::from_gb_per_s(
                    4.0,
                )))),
                engine: None,
                links: vec![0],
            },
        ],
    }
}

#[test]
fn spec_round_trips_through_json() {
    for spec in [event_spec(), fluid_spec()] {
        let json = spec.to_json();
        let back = ScenarioSpec::from_json(&json).expect("round trip parses");
        assert_eq!(back, spec);
        // Deterministic bytes: serializing the parsed copy reproduces the
        // original text exactly.
        assert_eq!(back.to_json(), json);
    }
}

#[test]
fn event_backend_runs_and_is_seed_stable() {
    let spec = event_spec();
    let a = spec.run().expect("spec resolves");
    let b = spec.run().expect("spec resolves");
    assert_eq!(a.to_json(), b.to_json(), "same spec + seed ⇒ same report");

    let outcome = a.outcome().expect("completes");
    assert_eq!(outcome.backend, "event");
    assert_eq!(outcome.seed, 7);
    let flow = outcome.flow("probe").expect("flow reported");
    assert_eq!(flow.offered_gb_s, Some(8.0));
    assert!(flow.achieved_gb_s > 4.0, "got {}", flow.achieved_gb_s);
    assert!(flow.mean_latency_ns.unwrap() > 0.0);
    assert!(flow.completed > 0);

    // A different seed must still run (and virtually always differs).
    let mut other = event_spec();
    other.seed = Some(8);
    assert!(other.run().expect("spec resolves").outcome().is_some());
}

#[test]
fn fluid_backend_runs_and_is_seed_stable() {
    let spec = fluid_spec();
    let a = spec.run().expect("spec resolves");
    let b = spec.run().expect("spec resolves");
    assert_eq!(a.to_json(), b.to_json());

    let outcome = a.outcome().expect("completes");
    assert_eq!(outcome.backend, "fluid");
    assert_eq!(outcome.seed, 42, "default seed");
    let greedy = outcome.flow("greedy").expect("flow reported");
    let capped = outcome.flow("capped").expect("flow reported");
    assert!(!greedy.trace.is_empty(), "fluid traces are native output");
    assert!(
        greedy.mean_latency_ns.is_none(),
        "fluid measures no latency"
    );
    // The greedy flow harvests whatever the capped flow leaves on the link.
    assert!(greedy.achieved_gb_s > capped.achieved_gb_s);
    assert!(capped.achieved_gb_s <= 4.0 + 1e-9);
}

#[test]
fn report_round_trips_through_json() {
    let report = event_spec().run().expect("spec resolves");
    let back = ScenarioReport::from_json(&report.to_json()).expect("parses");
    assert_eq!(back, report);

    let unsup = ScenarioReport::unsupported("fig3e", "EPYC 7302", "platform has no CXL device");
    assert!(unsup.is_unsupported());
    assert_eq!(
        unsup.unsupported_note().as_deref(),
        Some("fig3e on EPYC 7302: not supported")
    );
    assert_eq!(
        ScenarioReport::from_json(&unsup.to_json()).expect("parses"),
        unsup
    );
}

#[test]
fn bad_specs_are_rejected_with_reasons() {
    // Unknown platform name.
    let mut spec = event_spec();
    spec.topology = TopologyChoice::Named("epyc_1234".into());
    let err = spec.run().unwrap_err();
    assert!(err.to_string().contains("unknown platform"), "{err}");

    // Event backend needs an engine mapping per flow.
    let mut spec = event_spec();
    spec.flows[0].engine = None;
    let err = spec.run().unwrap_err();
    assert!(err.to_string().contains("no engine mapping"), "{err}");

    // CXL target on a platform without CXL.
    let mut spec = event_spec();
    spec.flows[0].engine.as_mut().unwrap().target = TargetSpec::Cxl(0);
    let err = spec.run().unwrap_err();
    assert!(
        err.to_string().contains("CXL device 0 not present"),
        "{err}"
    );

    // Fluid backend needs a link table…
    let mut spec = fluid_spec();
    spec.fluid = None;
    let err = spec.run().unwrap_err();
    assert!(err.to_string().contains("fluid.links"), "{err}");

    // …in-range link references…
    let mut spec = fluid_spec();
    spec.flows[0].links = vec![3];
    let err = spec.run().unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");

    // …and every flow to cross at least one link.
    let mut spec = fluid_spec();
    spec.flows[0].links = Vec::new();
    let err = spec.run().unwrap_err();
    assert!(err.to_string().contains("crosses no fluid links"), "{err}");
}

mod json_roundtrip_props {
    use chiplet_fluid::FluidLink;
    use chiplet_mem::{OpKind, Pattern};
    use chiplet_sim::{Bandwidth, ByteSize, DemandSchedule, SimDuration, SimTime};
    use chiplet_topology::PlatformSpec;
    use proptest::prelude::*;

    use crate::scenario::*;
    use crate::traffic::TrafficPolicy;

    fn arb_name() -> impl Strategy<Value = String> {
        (0usize..6).prop_map(|i| {
            [
                "probe",
                "rx burst",
                "ccd0→cxl",
                "λ-flow",
                "",
                "with \"quotes\"\n",
            ][i]
                .to_string()
        })
    }

    fn arb_bw() -> impl Strategy<Value = Bandwidth> {
        // Any finite f64 round-trips: the writer prints the shortest decimal
        // that parses back to the same bits, so odd magnitudes are fine.
        (1u64..u64::from(u32::MAX)).prop_map(|b| Bandwidth::from_bytes_per_s(b as f64 * 1.7))
    }

    fn arb_demand() -> impl Strategy<Value = DemandSchedule> {
        (
            prop::bool::ANY,
            prop::collection::vec((1u64..5_000_000, prop::option::of(arb_bw())), 1..5),
        )
            .prop_map(|(constant, raw)| {
                if constant {
                    DemandSchedule::constant(raw[0].1)
                } else {
                    // Strictly increasing from zero: cumulative gaps.
                    let mut t = 0u64;
                    let pieces = raw
                        .into_iter()
                        .enumerate()
                        .map(|(i, (gap, d))| {
                            if i > 0 {
                                t += gap;
                            }
                            (SimTime::from_nanos(t), d)
                        })
                        .collect();
                    DemandSchedule::piecewise(pieces)
                }
            })
    }

    fn arb_cores() -> impl Strategy<Value = CoreSelect> {
        (0u8..5, prop::collection::vec(0u32..256, 0..4), 0u32..64).prop_map(|(k, ids, n)| match k {
            0 => CoreSelect::Cores(ids),
            1 => CoreSelect::Ccd(n),
            2 => CoreSelect::Ccds(ids),
            3 => CoreSelect::Ccx(n),
            _ => CoreSelect::All,
        })
    }

    fn arb_target() -> impl Strategy<Value = TargetSpec> {
        (0u8..3, prop::collection::vec(0u32..24, 0..4), 0u32..4).prop_map(|(k, ds, dev)| match k {
            0 => TargetSpec::AllDimms,
            1 => TargetSpec::Dimms(ds),
            _ => TargetSpec::Cxl(dev),
        })
    }

    fn arb_engine_flow() -> impl Strategy<Value = EngineFlow> {
        (
            (arb_cores(), prop::option::of(0u32..4), arb_target()),
            (0usize..4, 0usize..4, prop::option::of(1u64..4096)),
            (
                prop::option::of(0u64..100_000_000),
                prop::option::of(0u64..100_000_000),
            ),
        )
            .prop_map(
                |((cores, nic, target), (op, pat, ws), (start, stop))| EngineFlow {
                    cores,
                    nic,
                    target,
                    op: [
                        None,
                        Some(OpKind::Read),
                        Some(OpKind::WriteTemporal),
                        Some(OpKind::WriteNonTemporal),
                    ][op],
                    pattern: [
                        None,
                        Some(Pattern::Sequential),
                        Some(Pattern::Random),
                        Some(Pattern::PointerChase),
                    ][pat],
                    working_set: ws.map(ByteSize::from_mib),
                    start: start.map(SimTime::from_nanos),
                    stop: stop.map(SimTime::from_nanos),
                },
            )
    }

    fn arb_policy() -> impl Strategy<Value = TrafficPolicy> {
        (
            0u8..5,
            prop::collection::vec(1u64..64, 0..4),
            1u64..1_000_000,
        )
            .prop_map(|(k, v, i)| match k {
                0 => TrafficPolicy::HardwareDefault,
                1 => TrafficPolicy::MaxMinFair,
                2 => TrafficPolicy::WeightedFair {
                    weights: v.iter().map(|&w| w as f64 / 4.0).collect(),
                },
                3 => TrafficPolicy::RateLimit {
                    caps_gb_s: v.iter().map(|&w| w as f64 * 1.5).collect(),
                },
                _ => TrafficPolicy::BdpAdaptive {
                    latency_factor: 1.0 + i as f64 / 1e6,
                    interval_ns: i,
                },
            })
    }

    fn arb_topology() -> impl Strategy<Value = TopologyChoice> {
        (0u8..6).prop_map(|k| match k {
            0 => TopologyChoice::Named("epyc_7302".into()),
            1 => TopologyChoice::Named("epyc_9634".into()),
            2 => TopologyChoice::Named("dual_epyc_7302".into()),
            3 => TopologyChoice::Named("epyc_9634_nic".into()),
            4 => TopologyChoice::Inline(PlatformSpec::epyc_9634()),
            _ => TopologyChoice::Inline(PlatformSpec::monolithic_baseline()),
        })
    }

    fn arb_engine_opts() -> impl Strategy<Value = EngineOptions> {
        (
            prop::option::of(1u64..10_000),
            prop::bool::ANY,
            prop::option::of(1u64..100_000),
            prop::option::of(1u32..64),
            prop::option::of(1u64..100_000),
            prop::option::of(1usize..8),
        )
            .prop_map(|(warmup, det, tw, ts, mw, workers)| EngineOptions {
                warmup: warmup.map(SimDuration::from_nanos),
                deterministic_memory: det,
                trace_window: tw.map(SimDuration::from_nanos),
                trace_sampling: ts,
                metrics_window: mw.map(SimDuration::from_nanos),
                profile_phases: None,
                workers,
            })
    }

    fn arb_fluid_opts() -> impl Strategy<Value = FluidOptions> {
        (
            prop::collection::vec(0u8..4, 1..4),
            prop::option::of(1u64..10_000_000),
            prop::option::of(1u64..100_000_000),
        )
            .prop_map(|(links, dt, sample)| FluidOptions {
                links: links
                    .into_iter()
                    .map(|k| match k {
                        0 => FluidLinkSpec::Named("if_9634".into()),
                        1 => FluidLinkSpec::Named("plink_9634".into()),
                        2 => FluidLinkSpec::Named("if_7302".into()),
                        _ => FluidLinkSpec::Inline(FluidLink::if_7302()),
                    })
                    .collect(),
                dt: dt.map(SimDuration::from_nanos),
                sample: sample.map(SimDuration::from_nanos),
            })
    }

    fn arb_flow() -> impl Strategy<Value = ScenarioFlow> {
        (
            arb_name(),
            prop::option::of(arb_demand()),
            prop::option::of(arb_engine_flow()),
            prop::collection::vec(0usize..4, 0..3),
        )
            .prop_map(|(name, demand, engine, links)| ScenarioFlow {
                name,
                demand,
                engine,
                links,
            })
    }

    fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
        (
            (arb_name(), arb_name(), arb_topology(), prop::bool::ANY),
            (
                prop::option::of(0u64..=u64::MAX),
                1u64..10_000_000_000,
                arb_policy(),
            ),
            (
                prop::option::of(arb_engine_opts()),
                prop::option::of(arb_fluid_opts()),
            ),
            prop::collection::vec(arb_flow(), 0..4),
        )
            .prop_map(
                |(
                    (name, description, topology, event),
                    (seed, horizon, policy),
                    (engine, fluid),
                    flows,
                )| ScenarioSpec {
                    name,
                    description,
                    topology,
                    backend: if event {
                        BackendKind::Event
                    } else {
                        BackendKind::Fluid
                    },
                    seed,
                    horizon: SimTime::from_nanos(horizon),
                    policy,
                    engine,
                    fluid,
                    flows,
                },
            )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Serialization is lossless and byte-deterministic over the whole
        /// spec space — including unicode names, full-range seeds, inline
        /// platforms, and every policy/selector variant.
        #[test]
        fn arbitrary_specs_round_trip_through_json(spec in arb_spec()) {
            let json = spec.to_json();
            let back = ScenarioSpec::from_json(&json).expect("generated spec parses back");
            prop_assert_eq!(&back, &spec);
            prop_assert_eq!(back.to_json(), json);
        }
    }
}

mod sweeps {
    use super::*;

    fn fluid_sweep() -> SweepSpec {
        SweepSpec {
            name: "unit_sweep".into(),
            description: "demand × capacity grid over the fluid harvest scenario".into(),
            base: fluid_spec(),
            axes: vec![
                SweepAxis::DemandGbS {
                    flow: "capped".into(),
                    values: vec![Some(2.0), Some(4.0), None],
                },
                SweepAxis::LinkCapacityGbS {
                    link: 0,
                    values: vec![20.0, 33.2],
                },
            ],
            max_points: None,
        }
    }

    #[test]
    fn expansion_is_deterministic_ordered_and_seed_derived() {
        let sweep = fluid_sweep();
        let a = sweep.expand().expect("expands");
        let b = sweep.expand().expect("expands");
        assert_eq!(a, b, "expansion is a pure function of the spec");
        assert_eq!(a.len(), 6, "cartesian product of 3 × 2");
        // First axis outermost, labels in key=value form.
        assert_eq!(a[0].label, "demand[capped]=2 cap[link0]=20");
        assert_eq!(a[1].label, "demand[capped]=2 cap[link0]=33.2");
        assert_eq!(a[4].label, "demand[capped]=max cap[link0]=20");
        // Hashes are distinct and seeds are derived (≠ base seed).
        let mut hashes: Vec<&str> = a.iter().map(|p| p.hash.as_str()).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 6, "every point hashes uniquely");
        let base = sweep.base.seed_or_default();
        for p in &a {
            let s = p.spec.seed.expect("derived seed set");
            assert_ne!(s, base, "per-point seeds are mixed, not the base seed");
        }
    }

    #[test]
    fn sweep_round_trips_through_json() {
        let sweep = fluid_sweep();
        let json = sweep.to_json();
        let back = SweepSpec::from_json(&json).expect("parses");
        assert_eq!(back, sweep);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn runner_is_worker_count_invariant() {
        let sweep = fluid_sweep();
        let (serial, s1) = SweepRunner::with_jobs(1).run(&sweep).expect("runs");
        let (wide, s8) = SweepRunner::with_jobs(8).run(&sweep).expect("runs");
        assert_eq!(
            serial.to_json(),
            wide.to_json(),
            "aggregate bytes must not depend on worker count"
        );
        assert_eq!(s1.executed, 6);
        assert_eq!(s8.executed, 6);
        assert_eq!(s1.cached, 0);
    }

    #[test]
    fn runner_cache_hits_reproduce_cold_bytes() {
        let dir = std::env::temp_dir().join(format!("chiplet-sweep-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let runner = SweepRunner {
            jobs: 2,
            cache_dir: Some(dir.clone()),
        };
        let sweep = fluid_sweep();
        let (cold, cold_stats) = runner.run(&sweep).expect("cold run");
        assert_eq!(cold_stats.executed, 6);
        assert_eq!(cold_stats.cached, 0);
        assert!(
            std::fs::read_dir(&dir).unwrap().count() >= 6,
            "cache populated"
        );
        let (warm, warm_stats) = runner.run(&sweep).expect("warm run");
        assert_eq!(warm_stats.cached, 6, "second run is fully cached");
        assert_eq!(warm_stats.executed, 0);
        assert_eq!(warm_stats.corrupt_healed, 0);
        assert_eq!(cold.to_json(), warm.to_json(), "cache is transparent");
        // Corrupt one entry: it re-runs, and the healing is counted.
        let victim = dir.join(format!("{}.json", cold.points[0].hash));
        std::fs::write(&victim, "{ not json").unwrap();
        let (healed, healed_stats) = runner.run(&sweep).expect("heals corrupt entries");
        assert_eq!(healed_stats.executed, 1);
        assert_eq!(healed_stats.cached, 5);
        assert_eq!(healed_stats.corrupt_healed, 1, "healing is never silent");
        assert_eq!(healed.to_json(), cold.to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_cache_writers_never_yield_a_torn_read() {
        // Hammer one cache key from many writer threads while readers poll:
        // atomic tmp + rename publication means a reader sees Miss (before
        // the first rename) or a complete entry — never Corrupt, and never
        // bytes that match neither writer's payload.
        let dir = std::env::temp_dir().join(format!("chiplet-cache-race-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let report_a = fluid_spec().run().expect("runs").to_json();
        let mut spec_b = fluid_spec();
        spec_b.seed = Some(99);
        spec_b.horizon = SimTime::from_millis(100);
        let report_b = spec_b.run().expect("runs").to_json();
        assert_ne!(report_a, report_b, "two distinct payloads");

        let hash = "00c0ffee00c0ffee";
        std::thread::scope(|scope| {
            for w in 0..4 {
                let (dir, a, b) = (&dir, report_a.as_str(), report_b.as_str());
                scope.spawn(move || {
                    for i in 0..50 {
                        let payload = if (w + i) % 2 == 0 { a } else { b };
                        store_cache_entry(dir, hash, payload).expect("store");
                    }
                });
            }
            for _ in 0..4 {
                let (dir, a, b) = (&dir, report_a.as_str(), report_b.as_str());
                scope.spawn(move || {
                    for _ in 0..200 {
                        match load_cache_entry(dir, hash) {
                            CacheLookup::Hit(report) => {
                                let json = report.to_json();
                                assert!(
                                    json == a || json == b,
                                    "read must match one writer's payload"
                                );
                            }
                            CacheLookup::Miss => {}
                            CacheLookup::Corrupt => panic!("torn cache read"),
                        }
                    }
                });
            }
        });
        // The final state is one complete entry; temp files are all renamed.
        assert!(matches!(load_cache_entry(&dir, hash), CacheLookup::Hit(_)));
        let leftovers = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .count();
        assert_eq!(leftovers, 0, "every temp file is renamed away");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spec_hash_matches_expanded_point_hashes() {
        for point in fluid_sweep().expand().expect("expands") {
            assert_eq!(spec_hash(&point.spec), point.hash);
        }
    }

    #[test]
    fn effective_jobs_never_zero_and_never_oversubscribes() {
        let cores = 8;
        for hint in [0, 1, cores, 2 * cores] {
            for items in [0, 1, 5, 100] {
                // Auto-sized (jobs = 0): stays within the host's cores even
                // after dividing by the engine-worker hint, and never hits 0.
                let auto = effective_jobs_with(0, items, cores, hint);
                assert!(auto >= 1, "hint={hint} items={items}");
                assert!(auto <= cores, "hint={hint} items={items}");
                assert!(auto <= items.max(1), "hint={hint} items={items}");
                if hint >= 1 {
                    assert!(
                        auto.saturating_mul(hint) <= cores.max(hint),
                        "jobs × engine workers must not oversubscribe: \
                         hint={hint} items={items} auto={auto}"
                    );
                }
                // Explicit jobs: taken as-is, but still clamped to the work
                // and never 0.
                for jobs in [1, 3, cores] {
                    let got = effective_jobs_with(jobs, items, cores, hint);
                    assert!(got >= 1);
                    assert_eq!(got, jobs.min(items.max(1)));
                }
            }
        }
        // Degenerate hosts: zero/unknown parallelism still yields one job.
        assert_eq!(effective_jobs_with(0, 10, 0, 0), 1);
        assert_eq!(effective_jobs_with(0, 10, 1, 16), 1);
    }

    #[test]
    fn bad_sweeps_are_rejected_with_reasons() {
        // No axes.
        let mut sweep = fluid_sweep();
        sweep.axes.clear();
        let err = sweep.expand().unwrap_err();
        assert!(err.to_string().contains("no axes"), "{err}");

        // An empty axis.
        let mut sweep = fluid_sweep();
        sweep.axes[0] = SweepAxis::Seed { values: Vec::new() };
        let err = sweep.expand().unwrap_err();
        assert!(err.to_string().contains("no values"), "{err}");

        // Unknown flow name.
        let mut sweep = fluid_sweep();
        sweep.axes[0] = SweepAxis::DemandGbS {
            flow: "nobody".into(),
            values: vec![None],
        };
        let err = sweep.expand().unwrap_err();
        assert!(err.to_string().contains("unknown flow"), "{err}");

        // Out-of-range link.
        let mut sweep = fluid_sweep();
        sweep.axes[1] = SweepAxis::LinkCapacityGbS {
            link: 9,
            values: vec![10.0],
        };
        let err = sweep.expand().unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");

        // Explosive product.
        let mut sweep = fluid_sweep();
        sweep.axes = vec![
            SweepAxis::Seed {
                values: (0..200).collect(),
            },
            SweepAxis::HorizonUs {
                values: (1..=200).collect(),
            },
        ];
        let err = sweep.expand().unwrap_err();
        assert!(err.to_string().contains("max"), "{err}");
    }

    #[test]
    fn flow_count_axis_replicates_in_place() {
        let mut sweep = fluid_sweep();
        sweep.axes = vec![SweepAxis::FlowCount {
            flow: "capped".into(),
            values: vec![1, 3],
        }];
        let points = sweep.expand().expect("expands");
        assert_eq!(points.len(), 2);
        let names: Vec<&str> = points[0]
            .spec
            .flows
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, ["greedy", "capped"], "count 1 keeps the flow as-is");
        let names: Vec<&str> = points[1]
            .spec
            .flows
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, ["greedy", "capped#0", "capped#1", "capped#2"]);
    }

    #[test]
    fn mlp_axis_inlines_a_patched_platform() {
        let mut sweep = fluid_sweep();
        sweep.base = event_spec();
        sweep.axes = vec![SweepAxis::MlpReadOutstanding {
            values: vec![8, 16],
        }];
        let points = sweep.expand().expect("expands");
        for (p, want) in points.iter().zip([8u32, 16]) {
            let platform = p.spec.topology.platform().unwrap();
            assert_eq!(platform.mlp.core_read_outstanding, want);
            assert!(matches!(p.spec.topology, TopologyChoice::Inline(_)));
        }
    }

    #[test]
    fn parallel_ordered_preserves_input_order() {
        let items: Vec<usize> = (0..37).collect();
        for jobs in [0, 1, 3, 8] {
            let out = parallel_ordered(&items, jobs, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            let want: Vec<usize> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, want, "jobs={jobs}");
        }
        assert!(parallel_ordered(&Vec::<u8>::new(), 4, |_, _| 0).is_empty());
    }

    #[test]
    fn registry_runs_sweeps_with_the_default_runner() {
        let mut reg = ScenarioRegistry::new();
        reg.register(ScenarioEntry {
            name: "unit_sweep",
            summary: "grid over the fluid harvest scenario",
            build: || {
                ScenarioKind::Sweep(SweepSpec {
                    name: "unit_sweep".into(),
                    description: String::new(),
                    base: super::fluid_spec(),
                    axes: vec![SweepAxis::HorizonUs {
                        values: vec![100, 200],
                    }],
                    max_points: None,
                })
            },
        });
        match reg.run("unit_sweep") {
            Some(Ok(ScenarioRun::Sweep(outcome))) => {
                assert_eq!(outcome.points.len(), 2);
                assert!(outcome.points.iter().all(|p| p.report.outcome().is_some()));
            }
            _ => panic!("sweep entry should run"),
        }
    }
}

#[test]
fn constant_demand_compiles_to_the_offered_path() {
    let spec = event_spec();
    let topo = spec.topology.resolve().unwrap();
    let flow = spec.compile_flow(&spec.flows[0], &topo).unwrap();
    assert_eq!(flow.offered, Some(Bandwidth::from_gb_per_s(8.0)));
    assert!(
        flow.demand.is_none(),
        "constant schedules use the fast path"
    );

    // A piecewise schedule stays a schedule.
    let mut spec = event_spec();
    spec.flows[0].demand = Some(DemandSchedule::piecewise(vec![
        (SimTime::ZERO, None),
        (
            SimTime::from_micros(10),
            Some(Bandwidth::from_gb_per_s(2.0)),
        ),
    ]));
    let flow = spec.compile_flow(&spec.flows[0], &topo).unwrap();
    assert!(flow.offered.is_none());
    assert!(flow.demand.is_some());
}

mod metric_runs {
    use super::*;
    use crate::metrics::{lint_openmetrics, MetricsRegistry};

    #[test]
    fn event_backend_metrics_are_deterministic_and_labelled() {
        let dump = || {
            let mut m = MetricsRegistry::new();
            event_spec().run_with_metrics(&mut m).unwrap();
            m.to_openmetrics()
        };
        let (a, b) = (dump(), dump());
        assert_eq!(a, b, "same spec + seed must dump identical bytes");
        lint_openmetrics(&a).unwrap();
        assert!(a.contains(r#"scenario="unit_event""#));
        assert!(a.contains(r#"backend="event""#));
        assert!(a.contains("chiplet_flow_completions_total{"));
        assert!(a.contains("chiplet_flow_latency_ns{"));
    }

    #[test]
    fn fluid_backend_metrics_count_every_epoch() {
        let mut m = MetricsRegistry::new();
        fluid_spec().run_with_metrics(&mut m).unwrap();
        let labels = [("backend", "fluid"), ("scenario", "unit_fluid")];
        // 200 ms horizon at dt = 1 ms.
        assert_eq!(m.counter_value("fluid_ticks", &labels), Some(200.0));
        let per_flow = [
            ("backend", "fluid"),
            ("flow", "greedy"),
            ("scenario", "unit_fluid"),
        ];
        assert!(m.counter_value("fluid_flow_bytes", &per_flow).unwrap() > 0.0);
        lint_openmetrics(&m.to_openmetrics()).unwrap();
    }

    #[test]
    fn run_specs_with_metrics_is_jobs_invariant() {
        let mut second = fluid_spec();
        second.name = "unit_fluid_b".into();
        let specs = vec![fluid_spec(), second];
        let dump = |jobs| {
            let mut m = MetricsRegistry::new();
            let reports = run_specs_with_metrics(&specs, jobs, &mut m).unwrap();
            (m.to_openmetrics(), reports)
        };
        let (m1, r1) = dump(1);
        let (m4, r4) = dump(4);
        assert_eq!(m1, m4, "metrics must not depend on worker count");
        assert_eq!(r1, r4);
        assert!(m1.contains(r#"scenario="unit_fluid_b""#));
    }

    #[test]
    fn sweep_metrics_split_deterministic_from_volatile() {
        let sweep = SweepSpec {
            name: "unit_metric_sweep".into(),
            description: String::new(),
            base: fluid_spec(),
            axes: vec![SweepAxis::DemandGbS {
                flow: "capped".into(),
                values: vec![Some(2.0), None],
            }],
            max_points: None,
        };
        let dump = |jobs| {
            let mut m = MetricsRegistry::new();
            SweepRunner::with_jobs(jobs)
                .run_with_metrics(&sweep, &mut m)
                .unwrap();
            (m.to_openmetrics(), m.to_openmetrics_with_volatile())
        };
        let (d1, v1) = dump(1);
        let (d4, _) = dump(4);
        assert_eq!(d1, d4, "default dump must not depend on worker count");
        lint_openmetrics(&d1).unwrap();
        assert!(d1.contains("sweep_flow_achieved_gb_s{"));
        assert!(!d1.contains("sweep_point_wall_seconds"));
        assert!(v1.contains("sweep_point_wall_seconds{"));
        assert!(v1.contains("sweep_jobs{"));
        assert!(v1.contains("sweep_cache_misses_total{"));
        assert!(v1.contains("sweep_cache_corrupt_healed_total{"));
    }
}
