//! The common result both backends produce.

use chiplet_sim::stats::TracePoint;
use chiplet_sim::SimTime;
use serde::{Deserialize, Serialize};

/// One flow's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowReport {
    /// Flow name, from the spec.
    pub name: String,
    /// Offered load, GB/s, when the scenario throttled the flow.
    #[serde(default)]
    pub offered_gb_s: Option<f64>,
    /// Achieved bandwidth over the measured window, GB/s.
    pub achieved_gb_s: f64,
    /// Mean end-to-end latency, ns. The fluid backend doesn't measure
    /// latency, so this is absent there.
    #[serde(default)]
    pub mean_latency_ns: Option<f64>,
    /// P999 end-to-end latency, ns.
    #[serde(default)]
    pub p999_latency_ns: Option<f64>,
    /// Transactions issued (event backend only).
    #[serde(default)]
    pub issued: u64,
    /// Transactions completed in the measured window (event backend only).
    #[serde(default)]
    pub completed: u64,
    /// Bandwidth time series, when the scenario requested traces (always
    /// present on the fluid backend — traces are its native output).
    #[serde(default)]
    pub trace: Vec<TracePoint>,
}

/// A completed scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Which backend ran it: `event` or `fluid`.
    pub backend: String,
    /// Platform name.
    pub platform: String,
    /// The seed that produced this report.
    pub seed: u64,
    /// The run horizon.
    pub horizon: SimTime,
    /// Per-flow outcomes, in spec order.
    pub flows: Vec<FlowReport>,
}

impl ScenarioOutcome {
    /// Looks a flow up by name.
    pub fn flow(&self, name: &str) -> Option<&FlowReport> {
        self.flows.iter().find(|f| f.name == name)
    }
}

/// What a scenario run produced: a result, or a structured explanation of
/// why the platform can't run it (so callers stop re-implementing
/// "not supported" strings).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioReport {
    /// The run completed.
    Completed(ScenarioOutcome),
    /// The platform can't exercise this scenario.
    Unsupported {
        /// What was asked for.
        scenario: String,
        /// The platform that can't run it.
        platform: String,
        /// Why (e.g. "platform has no CXL device").
        reason: String,
    },
}

impl ScenarioReport {
    /// Builds an unsupported report.
    pub fn unsupported(
        scenario: impl Into<String>,
        platform: impl Into<String>,
        reason: impl Into<String>,
    ) -> Self {
        ScenarioReport::Unsupported {
            scenario: scenario.into(),
            platform: platform.into(),
            reason: reason.into(),
        }
    }

    /// The outcome, when the run completed.
    pub fn outcome(&self) -> Option<&ScenarioOutcome> {
        match self {
            ScenarioReport::Completed(o) => Some(o),
            ScenarioReport::Unsupported { .. } => None,
        }
    }

    /// True for [`ScenarioReport::Unsupported`].
    pub fn is_unsupported(&self) -> bool {
        matches!(self, ScenarioReport::Unsupported { .. })
    }

    /// The canonical one-line rendering of an unsupported report.
    pub fn unsupported_note(&self) -> Option<String> {
        match self {
            ScenarioReport::Completed(_) => None,
            ScenarioReport::Unsupported {
                scenario, platform, ..
            } => Some(format!("{scenario} on {platform}: not supported")),
        }
    }

    /// Serializes to pretty JSON, deterministically.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario reports always serialize")
    }

    /// Parses back from [`ScenarioReport::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}
