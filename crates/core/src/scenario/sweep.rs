//! Parallel, deterministic parameter sweeps over the scenario layer.
//!
//! A [`SweepSpec`] expands a base [`ScenarioSpec`] along parameter axes
//! (demand levels, MLP budgets, link capacities, flow counts, seeds,
//! horizons) into a list of concrete specs — the cartesian product of all
//! axes, in a stable order. Each point gets
//!
//! * a **content hash** (FNV-1a over its canonical JSON) identifying the
//!   point for caching, and
//! * a **derived seed** mixed from the sweep's base seed and the point's
//!   content, so RNG streams are decorrelated across points and entirely
//!   independent of worker count or scheduling order.
//!
//! [`SweepRunner`] executes the expanded points across worker threads with
//! a work-stealing index queue ([`parallel_ordered`]); results land in
//! expansion order, so the aggregate [`SweepOutcome`] is **byte-identical
//! for any `--jobs` value**. An optional on-disk cache
//! (`results/cache/<hash>.json`) skips points whose reports already exist,
//! making re-runs of a mostly-unchanged sweep incremental.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use chiplet_sim::{Bandwidth, DemandSchedule, SimTime};
use serde::{Deserialize, Serialize};

use super::report::ScenarioReport;
use super::spec::{ScenarioError, ScenarioSpec, TopologyChoice};
use crate::metrics::{MetricKind, MetricsRegistry};

/// Default cap on the number of points one sweep may expand to; override
/// per sweep with [`SweepSpec::max_points`].
pub const MAX_POINTS: usize = 10_000;

fn invalid<T>(msg: impl Into<String>) -> Result<T, ScenarioError> {
    Err(ScenarioError::Invalid(msg.into()))
}

/// One parameter axis of a sweep. The expansion takes the cartesian
/// product of all axes, first axis outermost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SweepAxis {
    /// Base-seed values (each still goes through per-point derivation, so
    /// the values act as named entropy sources, not literal engine seeds).
    Seed {
        /// The seeds to sweep.
        values: Vec<u64>,
    },
    /// Constant offered load (GB/s) of one flow, by name; `None` means
    /// unthrottled.
    DemandGbS {
        /// Name of the flow whose demand varies.
        flow: String,
        /// Demand levels; `None` = unthrottled.
        values: Vec<Option<f64>>,
    },
    /// Capacity (GB/s) of one entry of the fluid link table.
    LinkCapacityGbS {
        /// Index into `fluid.links`.
        link: usize,
        /// Capacities to sweep.
        values: Vec<f64>,
    },
    /// Replicates one flow (by name) into N identical copies named
    /// `<name>#<k>`; a count of 1 keeps the flow unchanged.
    FlowCount {
        /// Name of the template flow.
        flow: String,
        /// Copy counts to sweep (each ≥ 1).
        values: Vec<usize>,
    },
    /// Per-core read MLP budget (outstanding cachelines) of the platform.
    MlpReadOutstanding {
        /// Budgets to sweep.
        values: Vec<u32>,
    },
    /// Run horizon, microseconds.
    HorizonUs {
        /// Horizons to sweep.
        values: Vec<u64>,
    },
}

impl SweepAxis {
    /// Number of settings on this axis.
    pub fn len(&self) -> usize {
        match self {
            SweepAxis::Seed { values } => values.len(),
            SweepAxis::DemandGbS { values, .. } => values.len(),
            SweepAxis::LinkCapacityGbS { values, .. } => values.len(),
            SweepAxis::FlowCount { values, .. } => values.len(),
            SweepAxis::MlpReadOutstanding { values } => values.len(),
            SweepAxis::HorizonUs { values } => values.len(),
        }
    }

    /// True when the axis has no settings (an invalid sweep).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Human-readable `key=value` label of setting `idx`.
    fn label(&self, idx: usize) -> String {
        match self {
            SweepAxis::Seed { values } => format!("seed={}", values[idx]),
            SweepAxis::DemandGbS { flow, values } => match values[idx] {
                Some(g) => format!("demand[{flow}]={g}"),
                None => format!("demand[{flow}]=max"),
            },
            SweepAxis::LinkCapacityGbS { link, values } => {
                format!("cap[link{link}]={}", values[idx])
            }
            SweepAxis::FlowCount { flow, values } => format!("count[{flow}]={}", values[idx]),
            SweepAxis::MlpReadOutstanding { values } => format!("mlp_read={}", values[idx]),
            SweepAxis::HorizonUs { values } => format!("horizon={}us", values[idx]),
        }
    }

    /// Applies setting `idx` to a spec.
    fn apply(&self, idx: usize, spec: &mut ScenarioSpec) -> Result<(), ScenarioError> {
        match self {
            SweepAxis::Seed { values } => {
                spec.seed = Some(values[idx]);
                Ok(())
            }
            SweepAxis::DemandGbS { flow, values } => {
                let f = spec
                    .flows
                    .iter_mut()
                    .find(|f| &f.name == flow)
                    .ok_or_else(|| {
                        ScenarioError::Invalid(format!("sweep axis targets unknown flow '{flow}'"))
                    })?;
                f.demand = values[idx]
                    .map(|g| DemandSchedule::constant(Some(Bandwidth::from_gb_per_s(g))));
                Ok(())
            }
            SweepAxis::LinkCapacityGbS { link, values } => {
                let Some(fluid) = spec.fluid.as_mut() else {
                    return invalid("link-capacity axis needs a fluid link table");
                };
                let Some(entry) = fluid.links.get_mut(*link) else {
                    return invalid(format!(
                        "link-capacity axis: link {link} out of range (table has {})",
                        fluid.links.len()
                    ));
                };
                let mut resolved = entry.resolve()?;
                resolved.capacity = Bandwidth::from_gb_per_s(values[idx]);
                *entry = super::spec::FluidLinkSpec::Inline(resolved);
                Ok(())
            }
            SweepAxis::FlowCount { flow, values } => {
                let n = values[idx];
                if n == 0 {
                    return invalid(format!("flow-count axis: count 0 for flow '{flow}'"));
                }
                let pos = spec
                    .flows
                    .iter()
                    .position(|f| &f.name == flow)
                    .ok_or_else(|| {
                        ScenarioError::Invalid(format!("sweep axis targets unknown flow '{flow}'"))
                    })?;
                if n > 1 {
                    let template = spec.flows.remove(pos);
                    for k in (0..n).rev() {
                        let mut copy = template.clone();
                        copy.name = format!("{}#{k}", template.name);
                        spec.flows.insert(pos, copy);
                    }
                }
                Ok(())
            }
            SweepAxis::MlpReadOutstanding { values } => {
                let mut platform = spec.topology.platform()?;
                platform.mlp.core_read_outstanding = values[idx];
                spec.topology = TopologyChoice::Inline(platform);
                Ok(())
            }
            SweepAxis::HorizonUs { values } => {
                if values[idx] == 0 {
                    return invalid("horizon axis: 0 µs horizon");
                }
                spec.horizon = SimTime::from_micros(values[idx]);
                Ok(())
            }
        }
    }
}

/// A declarative parameter sweep: a base scenario plus axes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Sweep name (appears in the aggregate output).
    pub name: String,
    /// One-line description.
    #[serde(default)]
    pub description: String,
    /// The scenario every point starts from.
    pub base: ScenarioSpec,
    /// The parameter axes (cartesian product, first axis outermost).
    pub axes: Vec<SweepAxis>,
    /// Expansion cap for this sweep; `None` means [`MAX_POINTS`]. Large
    /// escalation batches (the DSE frontier) raise it explicitly instead
    /// of every sweep silently losing the guard rail.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub max_points: Option<usize>,
}

/// One expanded point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// `key=value` labels of this point's axis settings, space-joined.
    pub label: String,
    /// The concrete spec, with the derived per-point seed applied.
    pub spec: ScenarioSpec,
    /// Content hash of the final spec (16 hex digits) — the cache key.
    pub hash: String,
}

impl SweepSpec {
    /// Serializes to pretty JSON (deterministic bytes).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("sweep specs always serialize")
    }

    /// Parses a sweep back from [`SweepSpec::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, ScenarioError> {
        serde_json::from_str(s).map_err(|e| ScenarioError::Invalid(format!("JSON error: {e:?}")))
    }

    /// Expands the cartesian product of all axes into concrete points, in
    /// a stable order (first axis outermost). Every point's seed is
    /// derived from the base seed and the point's content hash, so results
    /// never depend on execution order.
    pub fn expand(&self) -> Result<Vec<SweepPoint>, ScenarioError> {
        if self.axes.is_empty() {
            return invalid(format!("sweep '{}' has no axes", self.name));
        }
        let mut total = 1usize;
        for (a, axis) in self.axes.iter().enumerate() {
            if axis.is_empty() {
                return invalid(format!("sweep '{}': axis {a} has no values", self.name));
            }
            total = total.saturating_mul(axis.len());
        }
        let max_points = self.max_points.unwrap_or(MAX_POINTS);
        if total > max_points {
            return invalid(format!(
                "sweep '{}' expands to {total} points (max_points limit {max_points}); \
                 raise `max_points` on the sweep to allow more",
                self.name
            ));
        }
        let base_seed = self.base.seed_or_default();
        let mut points = Vec::with_capacity(total);
        let mut idx = vec![0usize; self.axes.len()];
        loop {
            let mut spec = self.base.clone();
            let mut labels = Vec::with_capacity(self.axes.len());
            for (axis, &i) in self.axes.iter().zip(&idx) {
                axis.apply(i, &mut spec)?;
                labels.push(axis.label(i));
            }
            let label = labels.join(" ");
            spec.name = format!("{} [{label}]", self.name);
            // Derive the point seed from the base seed and the point's
            // content (hashed before the derived seed is written, to avoid
            // the fixed point chasing itself).
            let key_hash = fnv1a64(spec.to_json().as_bytes());
            spec.seed = Some(splitmix64(base_seed ^ key_hash));
            let hash = format!("{:016x}", fnv1a64(spec.to_json().as_bytes()));
            points.push(SweepPoint { label, spec, hash });

            // Odometer increment, last axis fastest.
            let mut carry = true;
            for (i, axis) in self.axes.iter().enumerate().rev() {
                if !carry {
                    break;
                }
                idx[i] += 1;
                carry = idx[i] == axis.len();
                if carry {
                    idx[i] = 0;
                }
            }
            if carry {
                break;
            }
        }
        Ok(points)
    }
}

/// FNV-1a 64-bit — stable across platforms and runs, unlike `DefaultHasher`.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: turns structured hash input into a well-mixed seed.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One executed sweep point: the label, cache key, and report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPointResult {
    /// The point's axis label.
    pub label: String,
    /// The point's content hash (cache key).
    pub hash: String,
    /// The scenario report.
    pub report: ScenarioReport,
}

/// The aggregate result of a sweep, in expansion order. Serialization is
/// deterministic and contains no execution metadata, so the bytes are
/// identical for any worker count and for cached vs freshly-executed runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// Sweep name.
    pub sweep: String,
    /// Per-point results, in expansion order.
    pub points: Vec<SweepPointResult>,
}

impl SweepOutcome {
    /// Serializes to pretty JSON, deterministically.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("sweep outcomes always serialize")
    }

    /// Parses back from [`SweepOutcome::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Execution metadata of one sweep run (not part of the aggregate bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepStats {
    /// Total points.
    pub total: usize,
    /// Points executed on an engine this run.
    pub executed: usize,
    /// Points served from the on-disk cache.
    pub cached: usize,
    /// Cache entries that failed to parse and were re-executed. Atomic
    /// (tmp + rename) writes make torn entries impossible under concurrent
    /// writers, so a non-zero count points at real corruption — stale
    /// engine versions, disk faults — and must not be healed silently.
    pub corrupt_healed: usize,
}

/// Executes expanded sweep points across worker threads.
#[derive(Debug, Clone, Default)]
pub struct SweepRunner {
    /// Worker threads; 0 = one per available core.
    pub jobs: usize,
    /// Result cache directory (`<hash>.json` per point); `None` disables
    /// caching. Cache entries are keyed by spec content only — delete the
    /// directory (or pass `None`) after changing engine code.
    pub cache_dir: Option<PathBuf>,
}

impl SweepRunner {
    /// A runner with `jobs` workers and no cache.
    pub fn with_jobs(jobs: usize) -> Self {
        SweepRunner {
            jobs,
            cache_dir: None,
        }
    }

    /// Expands and runs a sweep. Points run in parallel; the outcome lists
    /// them in expansion order, byte-identical for any worker count.
    pub fn run(&self, sweep: &SweepSpec) -> Result<(SweepOutcome, SweepStats), ScenarioError> {
        let points = sweep.expand()?;
        self.run_points(&sweep.name, points)
    }

    /// Runs a pre-built list of points (bypassing [`SweepSpec::expand`])
    /// through the same parallel, content-cached execution path. This is the
    /// escalation entry for callers that assemble points themselves — the
    /// DSE frontier hands its surviving candidates here so the expensive
    /// tail is parallel and cache-deduplicated like any sweep.
    pub fn run_points(
        &self,
        name: &str,
        points: Vec<SweepPoint>,
    ) -> Result<(SweepOutcome, SweepStats), ScenarioError> {
        let (execs, _peak, corrupt) = self.execute(&points);
        Self::collect(name, points, execs).map(|(outcome, mut stats, _)| {
            stats.corrupt_healed = corrupt;
            (outcome, stats)
        })
    }

    /// Like [`SweepRunner::run`], but instruments the sweep into `metrics`:
    ///
    /// * deterministic per-point gauges derived from the outcome itself —
    ///   `sweep_flow_achieved_gb_s` and `sweep_flow_mean_latency_ns`,
    ///   labelled `{sweep, sweep_point, flow}` — byte-identical for any
    ///   worker count or cache state;
    /// * **volatile** execution counters (excluded from the default
    ///   OpenMetrics dump): `sweep_cache_hits`, `sweep_cache_misses`,
    ///   `sweep_cache_corrupt_healed`, `sweep_point_wall_seconds`,
    ///   `sweep_pool_occupancy_peak`, and `sweep_jobs`.
    pub fn run_with_metrics(
        &self,
        sweep: &SweepSpec,
        metrics: &mut MetricsRegistry,
    ) -> Result<(SweepOutcome, SweepStats), ScenarioError> {
        let points = sweep.expand()?;
        let (execs, peak, corrupt) = self.execute(&points);
        let (outcome, mut stats, walls) = Self::collect(&sweep.name, points, execs)?;
        stats.corrupt_healed = corrupt;

        metrics.describe(
            "sweep_flow_achieved_gb_s",
            MetricKind::Gauge,
            "Achieved bandwidth of one flow at one sweep point, GB/s.",
        );
        metrics.describe(
            "sweep_flow_mean_latency_ns",
            MetricKind::Gauge,
            "Mean end-to-end latency of one flow at one sweep point, ns.",
        );
        for point in &outcome.points {
            let Some(o) = point.report.outcome() else {
                continue;
            };
            for fr in &o.flows {
                let labels = [
                    ("sweep", outcome.sweep.as_str()),
                    ("sweep_point", point.label.as_str()),
                    ("flow", fr.name.as_str()),
                ];
                metrics.gauge_set("sweep_flow_achieved_gb_s", &labels, fr.achieved_gb_s);
                if let Some(lat) = fr.mean_latency_ns {
                    metrics.gauge_set("sweep_flow_mean_latency_ns", &labels, lat);
                }
            }
        }

        metrics.describe_volatile(
            "sweep_cache_hits",
            MetricKind::Counter,
            "Sweep points served from the on-disk result cache.",
        );
        metrics.describe_volatile(
            "sweep_cache_misses",
            MetricKind::Counter,
            "Sweep points executed on an engine this run.",
        );
        metrics.describe_volatile(
            "sweep_cache_corrupt_healed",
            MetricKind::Counter,
            "Corrupt cache entries healed by re-executing the point.",
        );
        metrics.describe_volatile(
            "sweep_point_wall_seconds",
            MetricKind::Gauge,
            "Wall-clock time one sweep point took (cache hits included).",
        );
        metrics.describe_volatile(
            "sweep_pool_occupancy_peak",
            MetricKind::Gauge,
            "Most sweep points in flight at once in the worker pool.",
        );
        metrics.describe_volatile(
            "sweep_jobs",
            MetricKind::Gauge,
            "Effective worker-thread count of the sweep run.",
        );
        let sweep_label = [("sweep", outcome.sweep.as_str())];
        metrics.counter_add("sweep_cache_hits", &sweep_label, stats.cached as f64);
        metrics.counter_add("sweep_cache_misses", &sweep_label, stats.executed as f64);
        metrics.counter_add(
            "sweep_cache_corrupt_healed",
            &sweep_label,
            stats.corrupt_healed as f64,
        );
        metrics.gauge_set("sweep_pool_occupancy_peak", &sweep_label, peak as f64);
        metrics.gauge_set(
            "sweep_jobs",
            &sweep_label,
            effective_jobs(self.jobs, stats.total) as f64,
        );
        for (point, wall) in outcome.points.iter().zip(walls) {
            metrics.gauge_set(
                "sweep_point_wall_seconds",
                &[
                    ("sweep", outcome.sweep.as_str()),
                    ("sweep_point", point.label.as_str()),
                ],
                wall,
            );
        }
        Ok((outcome, stats))
    }

    /// Runs the expanded points through the worker pool, returning per-point
    /// results (report, cache flag, wall seconds) plus the pool's peak
    /// occupancy and the count of corrupt cache entries healed by
    /// re-execution.
    #[allow(clippy::type_complexity)]
    fn execute(
        &self,
        points: &[SweepPoint],
    ) -> (
        Vec<Result<(ScenarioReport, bool, f64), ScenarioError>>,
        usize,
        usize,
    ) {
        if let Some(dir) = &self.cache_dir {
            // Best-effort: an unwritable cache degrades to uncached runs.
            let _ = std::fs::create_dir_all(dir);
        }
        let occupancy = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let corrupt = AtomicUsize::new(0);
        let results = parallel_ordered(points, self.jobs, |_, point| {
            let depth = occupancy.fetch_add(1, Ordering::Relaxed) + 1;
            peak.fetch_max(depth, Ordering::Relaxed);
            let started = std::time::Instant::now();
            let outcome = (|| {
                if let Some(dir) = &self.cache_dir {
                    match load_cache_entry(dir, &point.hash) {
                        CacheLookup::Hit(report) => return Ok((report, true)),
                        CacheLookup::Corrupt => {
                            corrupt.fetch_add(1, Ordering::Relaxed);
                        }
                        CacheLookup::Miss => {}
                    }
                }
                let report = point.spec.run()?;
                if let Some(dir) = &self.cache_dir {
                    let _ = store_cache_entry(dir, &point.hash, &report.to_json());
                }
                Ok((report, false))
            })();
            occupancy.fetch_sub(1, Ordering::Relaxed);
            outcome.map(|(report, cached)| (report, cached, started.elapsed().as_secs_f64()))
        });
        (
            results,
            peak.load(Ordering::Relaxed),
            corrupt.load(Ordering::Relaxed),
        )
    }

    /// Folds executed points into the aggregate outcome, stats, and the
    /// per-point wall times (expansion order).
    #[allow(clippy::type_complexity)]
    fn collect(
        sweep: &str,
        points: Vec<SweepPoint>,
        execs: Vec<Result<(ScenarioReport, bool, f64), ScenarioError>>,
    ) -> Result<(SweepOutcome, SweepStats, Vec<f64>), ScenarioError> {
        let mut stats = SweepStats {
            total: points.len(),
            ..Default::default()
        };
        let mut out = Vec::with_capacity(points.len());
        let mut walls = Vec::with_capacity(points.len());
        for (point, result) in points.into_iter().zip(execs) {
            let (report, cached, wall) = result?;
            if cached {
                stats.cached += 1;
            } else {
                stats.executed += 1;
            }
            walls.push(wall);
            out.push(SweepPointResult {
                label: point.label,
                hash: point.hash,
                report,
            });
        }
        Ok((
            SweepOutcome {
                sweep: sweep.to_string(),
                points: out,
            },
            stats,
            walls,
        ))
    }
}

/// Path of the cache entry for `hash` under `dir` (`<hash>.json`).
pub fn cache_path(dir: &Path, hash: &str) -> PathBuf {
    dir.join(format!("{hash}.json"))
}

/// Content hash of a concrete spec — 16 hex digits of FNV-1a over its
/// canonical JSON, the same function [`SweepSpec::expand`] assigns to each
/// point. Lets external executors (the serving daemon) share one cache
/// namespace with the batch runner: `spec_hash(&point.spec) == point.hash`.
pub fn spec_hash(spec: &ScenarioSpec) -> String {
    format!("{:016x}", fnv1a64(spec.to_json().as_bytes()))
}

/// What a cache probe found.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheLookup {
    /// A well-formed entry.
    Hit(ScenarioReport),
    /// No entry on disk.
    Miss,
    /// An entry exists but does not parse as a [`ScenarioReport`] —
    /// counted (never silent) and then re-executed like a miss.
    Corrupt,
}

/// Probes the cache for `hash`, distinguishing a missing entry from a
/// corrupt one so callers can count healing instead of hiding it.
pub fn load_cache_entry(dir: &Path, hash: &str) -> CacheLookup {
    let Ok(text) = std::fs::read_to_string(cache_path(dir, hash)) else {
        return CacheLookup::Miss;
    };
    match ScenarioReport::from_json(&text) {
        Ok(report) => CacheLookup::Hit(report),
        Err(_) => CacheLookup::Corrupt,
    }
}

/// Publishes a cache entry atomically: the bytes land in a unique temp file
/// in the same directory, then [`std::fs::rename`] over the final name.
/// Readers therefore see either no entry or a complete one — never a torn
/// prefix — and concurrent writers of the same hash each publish a whole
/// entry, last rename winning. Content-hashed keys make every winner
/// byte-equivalent, so the race is benign.
pub fn store_cache_entry(dir: &Path, hash: &str, json: &str) -> std::io::Result<()> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = dir.join(format!(
        "{hash}.json.tmp-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, json)?;
    std::fs::rename(&tmp, cache_path(dir, hash)).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Runs `f` over `items` on `jobs` worker threads (0 = one per core) with
/// per-worker work-stealing deques, returning results **in input order** —
/// the building block behind [`SweepRunner`] and the parallel studies.
///
/// Item indices are pre-split round-robin across the workers; each worker
/// drains its own deque from the front and, once dry, steals from the back
/// of the fullest remaining deque. Owners and thieves thus touch opposite
/// ends, and a worker stuck on one long point sheds the rest of its share
/// to idle peers instead of serializing the tail.
///
/// Deterministic by construction: output slot `i` holds `f(i, &items[i])`
/// regardless of which worker ran it or when. A panicking `f` propagates.
pub fn parallel_ordered<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = effective_jobs(jobs, items.len());
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| Mutex::new((w..items.len()).step_by(jobs).collect()))
        .collect();
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..jobs {
            let (queues, slots, f) = (&queues, &slots, &f);
            scope.spawn(move || loop {
                let own = queues[w].lock().expect("work deque poisoned").pop_front();
                let Some(i) = own.or_else(|| steal(queues, w)) else {
                    break;
                };
                let r = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// Steals one item index from the back of the fullest victim deque, or
/// `None` once every deque is empty. Rescans when a victim drains between
/// the length scan and the pop; terminates because the total item count
/// only ever shrinks.
fn steal(queues: &[Mutex<VecDeque<usize>>], thief: usize) -> Option<usize> {
    loop {
        let mut best: Option<(usize, usize)> = None;
        for (v, q) in queues.iter().enumerate() {
            if v == thief {
                continue;
            }
            let len = q.lock().expect("work deque poisoned").len();
            if len > 0 && best.is_none_or(|(bl, _)| len > bl) {
                best = Some((len, v));
            }
        }
        let (_, victim) = best?;
        if let Some(i) = queues[victim]
            .lock()
            .expect("work deque poisoned")
            .pop_back()
        {
            return Some(i);
        }
    }
}

/// Runs a batch of scenario specs in parallel (no cache), preserving order.
pub fn run_specs(
    specs: &[ScenarioSpec],
    jobs: usize,
) -> Result<Vec<ScenarioReport>, ScenarioError> {
    parallel_ordered(specs, jobs, |_, spec| spec.run())
        .into_iter()
        .collect()
}

/// Runs a batch of specs in parallel, each against a private registry, then
/// merges the registries into `metrics` **in input order** — the merged
/// dump is byte-identical for any `jobs` value.
pub fn run_specs_with_metrics(
    specs: &[ScenarioSpec],
    jobs: usize,
    metrics: &mut MetricsRegistry,
) -> Result<Vec<ScenarioReport>, ScenarioError> {
    let results = parallel_ordered(specs, jobs, |_, spec| {
        let mut local = MetricsRegistry::new();
        spec.run_with_metrics(&mut local).map(|r| (r, local))
    });
    let mut reports = Vec::with_capacity(specs.len());
    for result in results {
        let (report, local) = result?;
        metrics.merge_labeled(&local, &[]);
        reports.push(report);
    }
    Ok(reports)
}

/// Worker count a runner with `jobs` actually uses on `items` work items.
/// `jobs == 0` auto-sizes from the host's available parallelism and the
/// engine-worker hint; the result is always ≥ 1 and never exceeds the item
/// count, so the pool neither deadlocks on zero workers nor spawns idle
/// threads.
pub fn effective_jobs(jobs: usize, items: usize) -> usize {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    effective_jobs_with(jobs, items, avail, engine_workers_hint())
}

/// Pure core of [`effective_jobs`]: `avail` is the host's available
/// parallelism, `hint` the per-point engine worker count. Each point may
/// itself run the event engine across `--engine-workers` threads, so
/// auto-sizing divides the host's cores between the two layers and
/// `jobs × hint` never oversubscribes. An explicit `jobs` value is taken
/// as-is (the engine clamps its own workers to the host separately).
pub fn effective_jobs_with(jobs: usize, items: usize, avail: usize, hint: usize) -> usize {
    let jobs = if jobs == 0 {
        (avail.max(1) / hint.max(1)).max(1)
    } else {
        jobs
    };
    jobs.min(items.max(1))
}

/// The per-scenario engine worker count requested through the environment
/// (the CLI's `--engine-workers`); only used to auto-size the sweep pool.
fn engine_workers_hint() -> usize {
    std::env::var("CHIPLET_ENGINE_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1)
        .max(1)
}
