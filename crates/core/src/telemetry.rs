//! Runtime telemetry: the `/proc/chiplet-net` analog.
//!
//! §4 #1 of the paper calls for "runtime performance telemetry statistics
//! for each link and intermediate hop through /proc/chiplet-net". A
//! [`TelemetryReport`] is that document: per-link utilization, throughput,
//! and queueing statistics in both directions, per-flow achieved bandwidth
//! and latency distribution, and the measured traffic matrix — all
//! serializable to JSON.

use chiplet_sim::stats::LatencyHistogram;
use chiplet_sim::{Bandwidth, SimDuration};
use chiplet_topology::LinkKind;
use serde::{Deserialize, Serialize};

use crate::flow::FlowId;

/// One direction of one capacity point.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DirStats {
    /// Bytes that crossed during the measured window.
    pub bytes: u64,
    /// Transactions admitted.
    pub admissions: u64,
    /// Fraction of the window the server was busy.
    pub utilization: f64,
    /// Mean queueing wait, ns.
    pub mean_wait_ns: f64,
    /// Largest queueing wait, ns.
    pub max_wait_ns: f64,
}

impl DirStats {
    /// Achieved throughput over a window.
    pub fn throughput(&self, window: SimDuration) -> Bandwidth {
        let secs = window.as_secs_f64();
        if secs <= 0.0 {
            Bandwidth::ZERO
        } else {
            Bandwidth::from_bytes_per_s(self.bytes as f64 / secs)
        }
    }
}

/// Telemetry for one capacity point (a physical link, the socket NoC, or a
/// per-CCD CXL port).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkTelemetry {
    /// Identity of the capacity point.
    pub point: CapacityPoint,
    /// Read-direction statistics.
    pub read: DirStats,
    /// Write-direction statistics.
    pub write: DirStats,
    /// Windowed read-direction bandwidth series, when the run recorded
    /// traces (`EngineConfig::trace_window`). Windows are half-open
    /// `[start, start + window)` and stamped at the window start.
    #[serde(default)]
    pub read_trace: Vec<chiplet_sim::stats::TracePoint>,
    /// Windowed write-direction bandwidth series (same semantics).
    #[serde(default)]
    pub write_trace: Vec<chiplet_sim::stats::TracePoint>,
    /// Windowed queue-backlog gauge: ns of queued service observed at each
    /// admission, mean/max per window.
    #[serde(default)]
    pub depth_trace: Vec<chiplet_sim::stats::GaugePoint>,
}

/// Identity of a contention point in the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CapacityPoint {
    /// A topology link, by id and kind.
    Link {
        /// The link's id in the topology.
        link: u32,
        /// Its physical class.
        kind: LinkKind,
    },
    /// A socket's I/O-die NoC routing capacity.
    SocketNoc {
        /// The socket index.
        socket: u32,
    },
    /// The per-CCD CXL port capacity.
    CxlPort {
        /// The compute chiplet.
        ccd: u32,
    },
}

impl CapacityPoint {
    /// A total order over capacity points: links by id, then socket NoCs,
    /// then CXL ports. Used to break telemetry ties deterministically.
    pub fn sort_key(&self) -> (u8, u32) {
        match *self {
            CapacityPoint::Link { link, .. } => (0, link),
            CapacityPoint::SocketNoc { socket } => (1, socket),
            CapacityPoint::CxlPort { ccd } => (2, ccd),
        }
    }
}

/// Per-flow results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowTelemetry {
    /// Flow id.
    pub id: FlowId,
    /// Flow name.
    pub name: String,
    /// Transactions issued during the whole run.
    pub issued: u64,
    /// Transactions completed inside the measured window.
    pub completed: u64,
    /// Payload bytes completed inside the measured window.
    pub bytes: u64,
    /// Achieved bandwidth over the measured window.
    pub achieved: Bandwidth,
    /// End-to-end latency distribution (measured window).
    pub latency: LatencyHistogram,
    /// True when the flow was cache-resident and accounted analytically
    /// (no fabric traffic).
    pub analytic: bool,
    /// Exact (sub-ns) latency for analytic cache-resident flows; the
    /// histogram only holds whole nanoseconds.
    pub analytic_latency_ns: Option<f64>,
    /// Bandwidth time series, when the run recorded traces
    /// (`EngineConfig::trace_window`).
    #[serde(default)]
    pub trace: Vec<chiplet_sim::stats::TracePoint>,
}

impl FlowTelemetry {
    /// Mean latency, ns (0 when no samples, consistent with
    /// [`FlowTelemetry::p999_latency_ns`]). Analytic flows report their
    /// exact cache-hit latency.
    pub fn mean_latency_ns(&self) -> f64 {
        self.analytic_latency_ns.unwrap_or_else(|| {
            if self.latency.is_empty() {
                0.0
            } else {
                self.latency.mean_ns_f64()
            }
        })
    }

    /// P999 latency, ns (0 when no samples, consistent with
    /// [`FlowTelemetry::mean_latency_ns`]).
    pub fn p999_latency_ns(&self) -> f64 {
        self.latency
            .p999()
            .map(|d| d.as_nanos() as f64)
            .unwrap_or(0.0)
    }
}

/// One cell of the measured traffic matrix: bytes from a compute chiplet to
/// a destination (UMC channel or CXL device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixCell {
    /// Source compute chiplet.
    pub ccd: u32,
    /// Destination: UMC index, or `umc_count + device` for CXL devices.
    pub dest: u32,
    /// Payload bytes.
    pub bytes: u64,
}

/// The full runtime report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// Platform name.
    pub platform: String,
    /// Measured window length.
    pub window: SimDuration,
    /// Per-capacity-point statistics.
    pub links: Vec<LinkTelemetry>,
    /// Per-flow statistics.
    pub flows: Vec<FlowTelemetry>,
    /// Ground-truth traffic matrix cells (nonzero only).
    pub matrix: Vec<MatrixCell>,
}

impl TelemetryReport {
    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("telemetry is always serializable")
    }

    /// The busiest capacity point by utilization in either direction —
    /// "identifying the bandwidth throttling path segment at runtime"
    /// (Implication #2). Ties break deterministically toward the lowest
    /// [`CapacityPoint::sort_key`] (lowest link id first).
    pub fn bottleneck(&self) -> Option<&LinkTelemetry> {
        self.links.iter().max_by(|a, b| {
            let ua = a.read.utilization.max(a.write.utilization);
            let ub = b.read.utilization.max(b.write.utilization);
            // `max_by` keeps the last maximal element, so on equal
            // utilization rank the lower sort key as the greater one.
            ua.total_cmp(&ub)
                .then_with(|| b.point.sort_key().cmp(&a.point.sort_key()))
        })
    }

    /// Total payload bytes completed by all flows.
    pub fn total_bytes(&self) -> u64 {
        self.flows.iter().map(|f| f.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(kind: LinkKind, ur: f64, uw: f64) -> LinkTelemetry {
        link_with_id(0, kind, ur, uw)
    }

    fn link_with_id(id: u32, kind: LinkKind, ur: f64, uw: f64) -> LinkTelemetry {
        LinkTelemetry {
            point: CapacityPoint::Link { link: id, kind },
            read: DirStats {
                utilization: ur,
                ..Default::default()
            },
            write: DirStats {
                utilization: uw,
                ..Default::default()
            },
            read_trace: Vec::new(),
            write_trace: Vec::new(),
            depth_trace: Vec::new(),
        }
    }

    #[test]
    fn bottleneck_picks_highest_utilization() {
        let report = TelemetryReport {
            platform: "test".into(),
            window: SimDuration::from_micros(10),
            links: vec![
                link(LinkKind::Gmi, 0.4, 0.1),
                link(LinkKind::MemChannel, 0.2, 0.9),
                link(LinkKind::CoreL3, 0.5, 0.5),
            ],
            flows: vec![],
            matrix: vec![],
        };
        let b = report.bottleneck().unwrap();
        assert!(matches!(
            b.point,
            CapacityPoint::Link {
                kind: LinkKind::MemChannel,
                ..
            }
        ));
    }

    #[test]
    fn bottleneck_ties_break_to_lowest_point() {
        // Three links at identical utilization: the lowest link id wins,
        // whatever order they appear in.
        let mut links = vec![
            link_with_id(7, LinkKind::Gmi, 0.5, 0.1),
            link_with_id(2, LinkKind::Gmi, 0.1, 0.5),
            link_with_id(4, LinkKind::Gmi, 0.5, 0.5),
        ];
        for _ in 0..3 {
            links.rotate_left(1);
            let report = TelemetryReport {
                platform: "test".into(),
                window: SimDuration::from_micros(10),
                links: links.clone(),
                flows: vec![],
                matrix: vec![],
            };
            let b = report.bottleneck().unwrap();
            assert_eq!(
                b.point,
                CapacityPoint::Link {
                    link: 2,
                    kind: LinkKind::Gmi
                }
            );
        }
        // Links order before socket NoCs at equal utilization.
        let report = TelemetryReport {
            platform: "test".into(),
            window: SimDuration::from_micros(10),
            links: vec![
                LinkTelemetry {
                    point: CapacityPoint::SocketNoc { socket: 0 },
                    ..link_with_id(0, LinkKind::Gmi, 0.5, 0.5)
                },
                link_with_id(3, LinkKind::Gmi, 0.5, 0.5),
            ],
            flows: vec![],
            matrix: vec![],
        };
        assert_eq!(
            report.bottleneck().unwrap().point,
            CapacityPoint::Link {
                link: 3,
                kind: LinkKind::Gmi
            }
        );
    }

    #[test]
    fn empty_flow_latency_sentinels_are_consistent() {
        let flow = FlowTelemetry {
            id: FlowId(0),
            name: "idle".into(),
            issued: 0,
            completed: 0,
            bytes: 0,
            achieved: Bandwidth::ZERO,
            latency: LatencyHistogram::new(),
            analytic: false,
            analytic_latency_ns: None,
            trace: Vec::new(),
        };
        // Both accessors report the same finite sentinel on no samples.
        assert_eq!(flow.mean_latency_ns(), 0.0);
        assert_eq!(flow.p999_latency_ns(), 0.0);
        assert!(flow.mean_latency_ns().is_finite());
    }

    #[test]
    fn throughput_from_dir_stats() {
        let d = DirStats {
            bytes: 64_000,
            ..Default::default()
        };
        let bw = d.throughput(SimDuration::from_micros(1));
        assert!((bw.as_gb_per_s() - 64.0).abs() < 1e-9);
        assert_eq!(d.throughput(SimDuration::ZERO), Bandwidth::ZERO);
    }

    #[test]
    fn report_serializes() {
        let report = TelemetryReport {
            platform: "x".into(),
            window: SimDuration::from_micros(1),
            links: vec![link(LinkKind::Gmi, 0.1, 0.2)],
            flows: vec![],
            matrix: vec![MatrixCell {
                ccd: 0,
                dest: 3,
                bytes: 640,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("SocketNoc") || json.contains("Gmi"));
        let back: TelemetryReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.matrix.len(), 1);
    }

    #[test]
    fn empty_report_has_no_bottleneck() {
        let report = TelemetryReport {
            platform: "x".into(),
            window: SimDuration::ZERO,
            links: vec![],
            flows: vec![],
            matrix: vec![],
        };
        assert!(report.bottleneck().is_none());
        assert_eq!(report.total_bytes(), 0);
    }
}
