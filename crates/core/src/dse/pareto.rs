//! Deterministic Pareto-frontier extraction over the three proxy axes.
//!
//! Minimize latency and cost, maximize bandwidth. The extraction sorts
//! candidates by `(latency asc, cost asc, bandwidth desc, hash asc)` and
//! scans once: any dominator of a candidate sorts strictly before it, so
//! comparing against the accepted frontier suffices. The sort key makes
//! the result invariant under input permutation (property-tested), and the
//! content hash breaks exact metric ties so reports are byte-stable.

/// One candidate's scores, as fed to [`pareto_frontier`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Latency proxy, ns (minimized).
    pub latency_ns: f64,
    /// Bandwidth proxy, GB/s (maximized).
    pub bandwidth_gb_s: f64,
    /// Cost proxy, unitless (minimized).
    pub cost: f64,
    /// Content hash of the candidate spec; the deterministic tie-break.
    pub hash: u64,
}

impl ParetoPoint {
    /// True when `self` dominates `other`: no worse on every axis and
    /// strictly better on at least one.
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        let no_worse = self.latency_ns <= other.latency_ns
            && self.cost <= other.cost
            && self.bandwidth_gb_s >= other.bandwidth_gb_s;
        let strictly = self.latency_ns < other.latency_ns
            || self.cost < other.cost
            || self.bandwidth_gb_s > other.bandwidth_gb_s;
        no_worse && strictly
    }
}

/// Indices of the non-dominated candidates, in the deterministic frontier
/// order `(latency asc, cost asc, bandwidth desc, hash asc)`. Candidates
/// with identical metrics all survive (distinct designs can score the
/// same); NaN metrics never enter the frontier.
pub fn pareto_frontier(points: &[ParetoPoint]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len())
        .filter(|&i| {
            let p = &points[i];
            !(p.latency_ns.is_nan() || p.bandwidth_gb_s.is_nan() || p.cost.is_nan())
        })
        .collect();
    order.sort_by(|&a, &b| {
        let (pa, pb) = (&points[a], &points[b]);
        pa.latency_ns
            .total_cmp(&pb.latency_ns)
            .then(pa.cost.total_cmp(&pb.cost))
            .then(pb.bandwidth_gb_s.total_cmp(&pa.bandwidth_gb_s))
            .then(pa.hash.cmp(&pb.hash))
    });
    let mut frontier: Vec<usize> = Vec::new();
    for &i in &order {
        let p = &points[i];
        if !frontier.iter().any(|&f| points[f].dominates(p)) {
            frontier.push(i);
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(l: f64, b: f64, c: f64, h: u64) -> ParetoPoint {
        ParetoPoint {
            latency_ns: l,
            bandwidth_gb_s: b,
            cost: c,
            hash: h,
        }
    }

    #[test]
    fn dominated_points_are_dropped() {
        let pts = [
            p(100.0, 50.0, 10.0, 1), // frontier
            p(120.0, 40.0, 12.0, 2), // dominated by 0 on all axes
            p(90.0, 30.0, 8.0, 3),   // frontier: cheaper + faster, less bw
        ];
        let f = pareto_frontier(&pts);
        assert_eq!(f, vec![2, 0]);
    }

    #[test]
    fn equal_metrics_all_survive_in_hash_order() {
        let pts = [p(100.0, 50.0, 10.0, 7), p(100.0, 50.0, 10.0, 3)];
        assert_eq!(pareto_frontier(&pts), vec![1, 0]);
    }

    #[test]
    fn permutation_invariance_smoke() {
        let a = [
            p(100.0, 50.0, 10.0, 1),
            p(90.0, 30.0, 8.0, 2),
            p(110.0, 60.0, 11.0, 3),
            p(95.0, 55.0, 20.0, 4),
        ];
        let mut b = a;
        b.reverse();
        let fa: Vec<u64> = pareto_frontier(&a).iter().map(|&i| a[i].hash).collect();
        let fb: Vec<u64> = pareto_frontier(&b).iter().map(|&i| b[i].hash).collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn nan_never_enters() {
        let pts = [p(f64::NAN, 50.0, 10.0, 1), p(100.0, 50.0, 10.0, 2)];
        assert_eq!(pareto_frontier(&pts), vec![1]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Drawn metrics snap to a coarse grid so exact ties (the hash
        /// tie-break path) actually occur in sampled inputs.
        fn arb_points() -> impl Strategy<Value = Vec<ParetoPoint>> {
            proptest::collection::vec(
                (0u32..20, 0u32..20, 0u32..20).prop_map(|(l, b, c)| ParetoPoint {
                    latency_ns: l as f64 * 10.0,
                    bandwidth_gb_s: b as f64 * 5.0,
                    cost: c as f64 * 2.0,
                    hash: 0,
                }),
                1..40,
            )
            .prop_map(|mut v| {
                for (i, pt) in v.iter_mut().enumerate() {
                    pt.hash = crate::scenario::splitmix64(i as u64);
                }
                v
            })
        }

        /// Deterministic Fisher–Yates driven by the drawn seed.
        fn shuffled(points: &[ParetoPoint], seed: u64) -> Vec<ParetoPoint> {
            let mut v = points.to_vec();
            let mut state = seed;
            for i in (1..v.len()).rev() {
                state = crate::scenario::splitmix64(state);
                v.swap(i, (state % (i as u64 + 1)) as usize);
            }
            v
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The frontier is the same set in the same order no matter how
            /// the input is permuted.
            #[test]
            fn frontier_is_permutation_invariant(points in arb_points(), seed in 0u64..1000) {
                let base: Vec<u64> =
                    pareto_frontier(&points).iter().map(|&i| points[i].hash).collect();
                let perm = shuffled(&points, seed);
                let permuted: Vec<u64> =
                    pareto_frontier(&perm).iter().map(|&i| perm[i].hash).collect();
                prop_assert_eq!(base, permuted);
            }

            /// Soundness and completeness: no frontier member dominates
            /// another, and every excluded point has a dominator on the
            /// frontier.
            #[test]
            fn frontier_is_exactly_the_non_dominated_set(points in arb_points()) {
                let frontier = pareto_frontier(&points);
                let on: std::collections::HashSet<usize> = frontier.iter().copied().collect();
                for &i in &frontier {
                    for &j in &frontier {
                        prop_assert!(!points[i].dominates(&points[j]),
                            "frontier member {i} dominates frontier member {j}");
                    }
                }
                for j in 0..points.len() {
                    if !on.contains(&j) {
                        prop_assert!(
                            frontier.iter().any(|&i| points[i].dominates(&points[j])),
                            "excluded point {j} has no dominator on the frontier"
                        );
                    }
                }
            }
        }
    }
}
