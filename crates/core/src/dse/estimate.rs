//! The analytical design estimator: closed-form latency / bandwidth / cost
//! proxies for one candidate design, ~1000x cheaper than a DES run.
//!
//! The estimator mirrors the event engine's *structure* without its
//! queueing dynamics:
//!
//! * **Unloaded latency** comes from real route hop walks —
//!   [`StagePlan::to_dimm`] / [`StagePlan::to_cxl`] / [`StagePlan::nic_to_dimm`]
//!   over [`Topology::route_core_to_dimm`]-class BFS routes — but only one
//!   walk per *symmetry class*: all cores of a CCD share routes, all CCDs of
//!   a quadrant share route shapes, and all DIMMs of a quadrant are
//!   equidistant, so one (source-quadrant, target-quadrant) representative
//!   pair stands for the whole class. Class means are exact, not sampled.
//! * **Bandwidth** is a one-shot weighted max-min over the design's
//!   capacity points ([`weighted_allocate_dense`], the same allocator the
//!   engine's traffic policies use per epoch). Each flow's demand is
//!   clamped by its MLP Little bound (`issuers × effective_mlp × 64 B /
//!   unloaded_ns`), which is how the engine's per-core slot budgets bound
//!   throughput.
//! * **Loaded latency** follows the engine's in-flight budget: a flow whose
//!   allocation meets its demand sits at its unloaded latency; a congested
//!   flow queues its whole budget, `latency = budget_lines × 64 B / rate`
//!   (Little's law over the engine's `budget_max` formula, headroom 1.3).
//! * **Cost** is a closed-form silicon proxy over the platform spec
//!   ([`cost_proxy`]), so the Pareto frontier has a third axis to trade.
//!
//! Validated against the DES reports of every event-engine registry
//! scenario in `crates/bench/tests/dse_validation.rs`; the documented
//! envelope lives there and in EXPERIMENTS.md.

use chiplet_mem::{AccessOutcome, CacheHierarchy, Pattern};
use chiplet_topology::{CcdId, CoreId, DimmId, LinkKind, PlatformSpec, Topology, UmcId};

use crate::engine::plan::{StagePlan, StageRef};
use crate::flow::{FlowSpec, Target};
use crate::scenario::{ScenarioError, ScenarioSpec};
use crate::traffic::{weighted_allocate_dense, DenseAllocScratch, TrafficPolicy};

/// Cacheline size in bytes, as an f64 for rate arithmetic (GB/s ≡ bytes/ns).
const LINE: f64 = 64.0;

/// The engine's default in-flight budget headroom (×BDP) for throttled
/// flows; see `EngineConfig::budget_headroom`.
const BUDGET_HEADROOM: f64 = 1.3;

fn invalid<T>(msg: impl Into<String>) -> Result<T, ScenarioError> {
    Err(ScenarioError::Invalid(msg.into()))
}

/// Per-flow analytical estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowEstimate {
    /// Flow name.
    pub name: String,
    /// Offered load, GB/s; `None` = unthrottled.
    pub offered_gb_s: Option<f64>,
    /// Bandwidth proxy: the flow's share of the one-shot max-min, GB/s.
    pub achieved_gb_s: f64,
    /// Latency proxy, ns.
    pub latency_ns: f64,
    /// Unloaded route latency (class-weighted mean), ns.
    pub unloaded_ns: f64,
    /// False for cache-resident flows (no fabric traffic).
    pub fabric: bool,
}

/// The three Pareto axes plus per-flow detail for one candidate design.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignEstimate {
    /// Latency proxy: achieved-weighted mean over fabric flows, ns.
    pub latency_ns: f64,
    /// Bandwidth proxy: total achieved over all flows, GB/s.
    pub bandwidth_gb_s: f64,
    /// Cost proxy ([`cost_proxy`] of the platform), unitless.
    pub cost: f64,
    /// Per-flow detail, in spec order.
    pub flows: Vec<FlowEstimate>,
}

/// Closed-form silicon-cost proxy of a platform: cores, chiplet count and
/// GMI phy bandwidth, NoC switch area, memory controllers and their
/// bandwidth, and CXL attach points. Unitless (roughly "core equivalents");
/// only *relative* cost matters for frontier extraction. The exact formula
/// is documented in EXPERIMENTS.md §Design-space exploration.
pub fn cost_proxy(p: &PlatformSpec) -> f64 {
    let cores = (p.ccd_count * p.ccx_per_ccd * p.cores_per_ccx) as f64;
    let (cols, rows) = p.quadrant_grid;
    let switches = ((2 * cols as u32).saturating_sub(1) * rows as u32) as f64;
    let gmi = p.caps.gmi_read.as_gb_per_s() + p.caps.gmi_write.as_gb_per_s();
    let noc = p.caps.noc_read.as_gb_per_s() + p.caps.noc_write.as_gb_per_s();
    let umc = p.mem.umc_read_bw.as_gb_per_s() + p.mem.umc_write_bw.as_gb_per_s();
    let cxl = p.cxl.as_ref().map_or(0.0, |c| {
        c.device_count as f64
            * (5.0 + 0.02 * (c.plink_read.as_gb_per_s() + c.plink_write.as_gb_per_s()))
    });
    let per_socket = cores
        + p.ccd_count as f64 * (2.0 + 0.05 * gmi)
        + switches * 1.5
        + if p.noc.diagonal_express { 2.0 } else { 0.0 }
        + 0.01 * noc
        + p.mem.umc_count as f64 * (3.0 + 0.05 * umc)
        + cxl;
    per_socket * p.socket_count as f64
}

/// Synthetic capacity-point classes. Keys are stable per design (they
/// derive from entity indices, not route order), so flows sharing a
/// physical point — a CCD's GMI phy, a socket NoC, a UMC channel — contend
/// in the max-min exactly as they do in the engine.
#[derive(Debug, Clone, Copy)]
enum PointClass {
    /// Per-flow aggregate of its private per-core ports.
    PrivCore,
    /// Per-flow aggregate of its private CCX limiter links.
    PrivCcx,
    /// A CCD's GMI phy.
    Gmi,
    /// A socket's NoC routing capacity.
    Noc,
    /// A UMC channel.
    Mem,
    /// The inter-socket xGMI fabric.
    Xgmi,
    /// A socket's serialized P-Link aggregate (CXL).
    Hub,
    /// A CCD's CXL port.
    CxlPort,
    /// A NIC's PCIe lane group.
    Pcie,
    /// Any other capped link, by raw link id.
    Other,
}

fn point_key(class: PointClass, entity: u64, write: bool) -> u64 {
    let c = match class {
        PointClass::PrivCore => 0u64,
        PointClass::PrivCcx => 1,
        PointClass::Gmi => 2,
        PointClass::Noc => 3,
        PointClass::Mem => 4,
        PointClass::Xgmi => 5,
        PointClass::Hub => 6,
        PointClass::CxlPort => 7,
        PointClass::Pcie => 8,
        PointClass::Other => 9,
    };
    (c << 48) | ((write as u64) << 40) | entity
}

/// One stage of a symmetry-class route template: the class, the capacity in
/// the flow's direction (GB/s; `None` = uncapped), and the wire-byte
/// multiplier (68/64 for FLIT-framed CXL stages).
#[derive(Debug, Clone, Copy)]
struct TemplateStage {
    class: PointClass,
    entity: u64,
    cap_gb_s: Option<f64>,
    byte_scale: f64,
}

/// Route-template memo across flows of one candidate: symmetry classes are
/// a property of the topology, not the flow. A linear-scanned Vec — a
/// candidate has under a dozen classes, and hashing was measurable on the
/// estimator's hot path.
type TemplateMemo = Vec<((u64, u64), (f64, Vec<TemplateStage>))>;

/// A linear-scan capacity-point interner: the estimator's replacement for
/// `ResourceArena` on its hot path. A candidate has a few dozen points, so
/// scanning a flat Vec beats hashing every interning.
#[derive(Default)]
struct PointArena {
    keys: Vec<u64>,
    capacities: Vec<f64>,
}

impl PointArena {
    /// The dense index for `key`, interning it with `cap` on first sight
    /// (later caps are ignored, as `ResourceArena::set_capacity`-per-flow
    /// callers always pass the same cap for the same key).
    fn intern(&mut self, key: u64, cap: f64) -> u32 {
        match self.keys.iter().position(|&k| k == key) {
            Some(i) => i as u32,
            None => {
                self.keys.push(key);
                self.capacities.push(cap);
                (self.keys.len() - 1) as u32
            }
        }
    }
}

/// The memoized `(unloaded_ns, template)` for `key`, walking a route via
/// `miss` on first sight.
fn memo_entry(
    memo: &mut TemplateMemo,
    key: (u64, u64),
    miss: impl FnOnce() -> (f64, Vec<TemplateStage>),
) -> &(f64, Vec<TemplateStage>) {
    match memo.iter().position(|(k, _)| *k == key) {
        Some(i) => &memo[i].1,
        None => {
            memo.push((key, miss()));
            &memo.last().expect("just pushed").1
        }
    }
}

/// Turns a compiled [`StagePlan`] into a class-level template. `Mem` stages
/// are kept (the caller redistributes them per target DIMM); `Gmi` /
/// `CxlPort` stages are tagged so the caller can redistribute them over the
/// CCDs of the source quadrant group.
fn template_of(topo: &Topology, plan: &StagePlan, write: bool) -> Vec<TemplateStage> {
    let pspec = topo.spec();
    let mut out = Vec::with_capacity(plan.stages.len());
    for s in &plan.stages {
        let byte_scale = s.bytes as f64 / LINE;
        let stage = match s.point {
            StageRef::SocketNoc(sk) => TemplateStage {
                class: PointClass::Noc,
                entity: sk as u64,
                cap_gb_s: Some(if write {
                    pspec.caps.noc_write.as_gb_per_s()
                } else {
                    pspec.caps.noc_read.as_gb_per_s()
                }),
                byte_scale,
            },
            StageRef::CxlPort(_) => TemplateStage {
                class: PointClass::CxlPort,
                entity: 0, // redistributed per CCD by the caller
                cap_gb_s: pspec.cxl.as_ref().map(|c| {
                    if write {
                        c.ccd_write.as_gb_per_s()
                    } else {
                        c.ccd_read.as_gb_per_s()
                    }
                }),
                byte_scale,
            },
            StageRef::Link(l) => {
                let link = &topo.links()[l as usize];
                let cap = if write { link.write_cap } else { link.read_cap };
                let cap_gb_s = cap.map(|b| b.as_gb_per_s());
                let (class, entity) = match link.kind {
                    LinkKind::CoreL3 => (PointClass::PrivCore, 0),
                    LinkKind::L3Tc => (PointClass::PrivCcx, 0),
                    LinkKind::Gmi => (PointClass::Gmi, 0), // redistributed
                    LinkKind::MemChannel => (PointClass::Mem, 0), // redistributed
                    LinkKind::Xgmi => (PointClass::Xgmi, 0),
                    LinkKind::HubRc => (PointClass::Hub, 0),
                    LinkKind::PcieLane => (PointClass::Pcie, 0),
                    _ => (PointClass::Other, l as u64),
                };
                TemplateStage {
                    class,
                    entity,
                    cap_gb_s,
                    byte_scale,
                }
            }
        };
        if stage.cap_gb_s.is_some() {
            out.push(stage);
        }
    }
    out
}

/// One flow's allocator-facing state while the estimate is assembled.
struct FlowAlloc {
    demand: f64,
    weight: f64,
    footprint: Vec<(u32, f64)>,
    unloaded_ns: f64,
    budget_lines: f64,
}

/// Groups a flow's cores by CCD, preserving CCD order: `(ccd, rep core,
/// core count, distinct CCX count)`. Linear scans over a flat Vec — flows
/// touch a handful of CCDs, and this sits on the DSE estimator's hot path.
fn group_by_ccd(topo: &Topology, cores: &[CoreId]) -> Vec<(CcdId, CoreId, u32, u32)> {
    // (ccd, rep core = first seen, core count, distinct ccx ids)
    let mut groups: Vec<(u32, CoreId, u32, Vec<u32>)> = Vec::new();
    for &c in cores {
        let ccd = topo.ccd_of_core(c).0;
        let ccx = c.0 / topo.spec().cores_per_ccx;
        match groups.iter_mut().find(|g| g.0 == ccd) {
            Some(g) => {
                g.2 += 1;
                if !g.3.contains(&ccx) {
                    g.3.push(ccx);
                }
            }
            None => groups.push((ccd, c, 1, vec![ccx])),
        }
    }
    groups.sort_unstable_by_key(|g| g.0);
    groups
        .into_iter()
        .map(|(ccd, rep, k, ccxs)| (CcdId(ccd), rep, k, ccxs.len() as u32))
        .collect()
}

/// Buckets target DIMMs by symmetry-class key: `(key, count, rep = first
/// seen)`, sorted by key — the order the ordered-map implementation this
/// replaces iterated in.
fn classify(ds: &[DimmId], key_of: impl Fn(DimmId) -> u64) -> Vec<(u64, u32, DimmId)> {
    let mut classes: Vec<(u64, u32, DimmId)> = Vec::new();
    for &d in ds {
        let q = key_of(d);
        match classes.iter_mut().find(|c| c.0 == q) {
            Some(c) => c.1 += 1,
            None => classes.push((q, 1, d)),
        }
    }
    classes.sort_unstable_by_key(|c| c.0);
    classes
}

/// Sanity bounds that keep [`Topology::build`] panic-free; candidates
/// violating them are infeasible, not fatal.
fn check_buildable(p: &PlatformSpec) -> Result<(), ScenarioError> {
    if p.ccd_count == 0 || p.ccx_per_ccd == 0 || p.cores_per_ccx == 0 {
        return invalid("candidate has no cores");
    }
    if p.mem.umc_count == 0 {
        return invalid("candidate has no memory channels");
    }
    if !(1..=2).contains(&p.socket_count) {
        return invalid("candidate socket count out of range");
    }
    let (cols, rows) = p.quadrant_grid;
    if cols == 0 || rows == 0 {
        return invalid("candidate has an empty NoC grid");
    }
    if let Some(cxl) = &p.cxl {
        if cxl.device_count == 0 {
            return invalid("candidate CXL spec has no devices");
        }
    }
    Ok(())
}

/// Scores one candidate design: builds its topology once, walks one route
/// per symmetry class, and runs a single max-min allocation over the
/// design's capacity points. Returns `Err` for infeasible candidates (a
/// workload flow that does not map onto the topology).
pub fn estimate_design(spec: &ScenarioSpec) -> Result<DesignEstimate, ScenarioError> {
    let platform = spec.topology.platform()?;
    check_buildable(&platform)?;
    let topo = Topology::build(&platform);
    estimate_on(spec, &topo)
}

/// [`estimate_design`] over an already-built topology (the validation tests
/// reuse one build across proxies and DES runs).
pub fn estimate_on(spec: &ScenarioSpec, topo: &Topology) -> Result<DesignEstimate, ScenarioError> {
    let pspec = topo.spec();
    let cache = CacheHierarchy::from_spec(&pspec.cache);

    let mut arena = PointArena::default();
    let mut memo: TemplateMemo = TemplateMemo::new();
    let mut flows: Vec<FlowEstimate> = Vec::with_capacity(spec.flows.len());
    // Allocator inputs for fabric-bound flows: (spec index, state).
    let mut allocs: Vec<(usize, FlowAlloc)> = Vec::new();

    for (i, sflow) in spec.flows.iter().enumerate() {
        let fs = spec.compile_flow(sflow, topo)?;
        let outcome = AccessOutcome::resolve(&cache, fs.op, fs.working_set);
        let offered = fs.peak_demand().map(|b| b.as_gb_per_s());

        // Cache-resident core flows: the engine accounts these analytically
        // too (one line per hit latency per core); mirror it exactly.
        if let (AccessOutcome::CacheHit { latency_ns, .. }, None) = (outcome, fs.nic) {
            let hw = (LINE / latency_ns) * fs.cores.len() as f64;
            let achieved = offered.map_or(hw, |o| o.min(hw));
            flows.push(FlowEstimate {
                name: fs.name.clone(),
                offered_gb_s: offered,
                achieved_gb_s: achieved,
                latency_ns,
                unloaded_ns: latency_ns,
                fabric: false,
            });
            continue;
        }

        let state = fabric_flow_alloc(&fs, topo, &mut arena, &mut memo, i, &spec.policy)?;
        flows.push(FlowEstimate {
            name: fs.name.clone(),
            offered_gb_s: offered,
            achieved_gb_s: 0.0, // filled after allocation
            latency_ns: state.unloaded_ns,
            unloaded_ns: state.unloaded_ns,
            fabric: true,
        });
        allocs.push((i, state));
    }

    // One-shot weighted max-min over every fabric flow jointly.
    if !allocs.is_empty() {
        let demands: Vec<f64> = allocs.iter().map(|(_, a)| a.demand).collect();
        let weights: Vec<f64> = allocs.iter().map(|(_, a)| a.weight).collect();
        let footprints: Vec<&[(u32, f64)]> =
            allocs.iter().map(|(_, a)| a.footprint.as_slice()).collect();
        let mut scratch = DenseAllocScratch::default();
        let mut rates = Vec::new();
        weighted_allocate_dense(
            &demands,
            &weights,
            &footprints,
            &arena.capacities,
            &mut scratch,
            &mut rates,
        );
        for ((i, a), rate) in allocs.iter().zip(&rates) {
            let f = &mut flows[*i];
            f.achieved_gb_s = *rate;
            // Demand met ⇒ unloaded latency. Congested ⇒ the whole in-flight
            // budget queues: Little's law over the engine's budget_max.
            f.latency_ns = if *rate + 1e-9 >= a.demand || *rate <= 0.0 {
                a.unloaded_ns
            } else {
                (a.budget_lines * LINE / *rate).max(a.unloaded_ns)
            };
        }
    }

    let fabric_bw: f64 = flows
        .iter()
        .filter(|f| f.fabric)
        .map(|f| f.achieved_gb_s)
        .sum();
    let latency_ns = if fabric_bw > 0.0 {
        flows
            .iter()
            .filter(|f| f.fabric)
            .map(|f| f.achieved_gb_s * f.latency_ns)
            .sum::<f64>()
            / fabric_bw
    } else if !flows.is_empty() {
        flows.iter().map(|f| f.latency_ns).sum::<f64>() / flows.len() as f64
    } else {
        return invalid("scenario has no flows to estimate");
    };
    let bandwidth_gb_s = flows.iter().map(|f| f.achieved_gb_s).sum();
    Ok(DesignEstimate {
        latency_ns,
        bandwidth_gb_s,
        cost: cost_proxy(pspec),
        flows,
    })
}

/// Builds one fabric-bound flow's allocator state: class-weighted unloaded
/// latency, capacity-point footprint, MLP-clamped demand, and in-flight
/// budget.
fn fabric_flow_alloc(
    fs: &FlowSpec,
    topo: &Topology,
    arena: &mut PointArena,
    memo: &mut TemplateMemo,
    flow_idx: usize,
    policy: &TrafficPolicy,
) -> Result<FlowAlloc, ScenarioError> {
    let pspec = topo.spec();
    let write = fs.op.is_write();
    let is_cxl = fs.target.is_cxl();

    // `(key, fraction, cap)` accumulation: linear-scanned (a flow touches a
    // few dozen points at most), sorted by key before interning so the
    // footprint order — and thus every float summation downstream — is
    // identical to the ordered-map implementation this replaces.
    let mut fracs: Vec<(u64, f64, f64)> = Vec::new();
    let mut add = |key: u64, frac: f64, cap: f64| match fracs.iter_mut().find(|e| e.0 == key) {
        Some(e) => e.1 += frac,
        None => fracs.push((key, frac, cap)),
    };

    let (groups, k_total, x_total) = if fs.nic.is_some() {
        (Vec::new(), 1u32, 1u32)
    } else {
        let groups = group_by_ccd(topo, &fs.cores);
        let k: u32 = groups.iter().map(|g| g.2).sum();
        let x: u32 = groups.iter().map(|g| g.3).sum();
        (groups, k, x)
    };

    let mut unloaded_sum = 0.0;
    let mut weight_sum = 0.0;

    // Walk one route per symmetry class and spread its template over the
    // entities of the class.
    match (&fs.target, fs.nic) {
        (Target::Dimms(ds), nic) => {
            let n_t = ds.len().max(1) as f64;
            if let Some(nic) = nic {
                // DMA flows: one route per target quadrant.
                let classes = classify(ds, |d| quadrant_key(topo, d));
                for (_, count, rep) in classes {
                    let plan = StagePlan::nic_to_dimm(topo, nic, rep);
                    let w = count as f64 / n_t;
                    unloaded_sum += w * plan.unloaded_ns;
                    weight_sum += w;
                    let template = template_of(topo, &plan, write);
                    apply_template(&template, w, write, u32::MAX, 1, 1, flow_idx, &mut add);
                }
            } else {
                for (ccd, rep_core, k_c, _) in &groups {
                    // Classify this CCD's targets by quadrant distance.
                    let classes = classify(ds, |d| pair_key(topo, *rep_core, d));
                    for (pair, count, rep_dimm) in classes {
                        let (unloaded, template) = memo_entry(memo, (pair, write as u64), || {
                            let plan = StagePlan::to_dimm(topo, *rep_core, rep_dimm);
                            (plan.unloaded_ns, template_of(topo, &plan, write))
                        });
                        let w = (*k_c as f64 * count as f64) / (k_total as f64 * n_t);
                        unloaded_sum += w * *unloaded;
                        weight_sum += w;
                        apply_template(
                            template, w, write, ccd.0, k_total, x_total, flow_idx, &mut add,
                        );
                    }
                }
            }
            // Interleave spreads the flow evenly over its target DIMMs
            // (DMA and core flows alike).
            for &d in ds {
                let cap = if write {
                    pspec.mem.umc_write_bw.as_gb_per_s()
                } else {
                    pspec.mem.umc_read_bw.as_gb_per_s()
                };
                add(
                    point_key(PointClass::Mem, d.0 as u64, write),
                    1.0 / n_t,
                    cap,
                );
            }
        }
        (Target::Cxl(dev), None) => {
            for (ccd, rep_core, k_c, _) in &groups {
                let pair = (1u64 << 60) | quadrant_of_core(topo, *rep_core);
                let (unloaded, template) = memo_entry(memo, (pair, write as u64), || {
                    let plan = StagePlan::to_cxl(topo, *rep_core, *dev);
                    (plan.unloaded_ns, template_of(topo, &plan, write))
                });
                let w = *k_c as f64 / k_total as f64;
                unloaded_sum += w * *unloaded;
                weight_sum += w;
                apply_template(
                    template, w, write, ccd.0, k_total, x_total, flow_idx, &mut add,
                );
            }
        }
        (Target::Cxl(_), Some(_)) => {
            return invalid(format!("flow '{}': NIC DMA cannot target CXL", fs.name))
        }
    }

    let unloaded_ns = if weight_sum > 0.0 {
        unloaded_sum / weight_sum
    } else {
        return invalid(format!("flow '{}' has no routes", fs.name));
    };

    // MLP budgets — the engine's add_flow formulas verbatim.
    let (budget_lines, mlp_bound) = {
        let read_cap = if is_cxl {
            pspec.mlp.cxl_core_read_outstanding
        } else {
            pspec.mlp.core_read_outstanding
        };
        let write_cap = if is_cxl {
            let cxl = pspec.cxl.as_ref().expect("cxl target on cxl platform");
            let lat = pspec.cxl_latency_ns().expect("cxl latency");
            ((cxl.core_write.as_gb_per_s() * lat / LINE).ceil() as u32).max(1)
        } else {
            pspec.mlp.core_write_outstanding
        };
        let mlp = Pattern::effective_mlp(fs.pattern, read_cap);
        let hw = if fs.nic.is_some() {
            pspec.nic.as_ref().map(|n| n.outstanding).unwrap_or(1)
        } else {
            fs.cores.len() as u32 * if write { write_cap } else { mlp }
        };
        let budget = match fs.peak_demand() {
            Some(bw) => {
                let bdp = (bw.as_gb_per_s() * unloaded_ns * BUDGET_HEADROOM) / LINE;
                (bdp.ceil() as u32).clamp(2, hw.max(2))
            }
            None => hw.max(1),
        };
        (budget as f64, hw as f64 * LINE / unloaded_ns)
    };

    let mut demand = fs
        .peak_demand()
        .map(|b| b.as_gb_per_s())
        .unwrap_or(f64::INFINITY)
        .min(mlp_bound);
    let mut weight = 1.0;
    match policy {
        TrafficPolicy::WeightedFair { weights } => {
            weight = weights.get(flow_idx).copied().unwrap_or(1.0).max(1e-9);
        }
        TrafficPolicy::RateLimit { caps_gb_s } => {
            if let Some(cap) = caps_gb_s.get(flow_idx) {
                demand = demand.min(*cap);
            }
        }
        _ => {}
    }

    // Key order, exactly as the ordered map iterated.
    fracs.sort_unstable_by_key(|e| e.0);
    let footprint: Vec<(u32, f64)> = fracs
        .into_iter()
        .map(|(key, frac, cap)| (arena.intern(key, cap), frac))
        .collect();

    Ok(FlowAlloc {
        demand,
        weight,
        footprint,
        unloaded_ns,
        budget_lines,
    })
}

/// Spreads one class template over the entities it stands for: private
/// core/CCX stages aggregate into per-flow keys with multiplied capacity,
/// `Gmi`/`CxlPort` stages land on the class's CCD, `Mem` stages are skipped
/// (redistributed analytically by the caller), and global stages (NoC,
/// xGMI, hub, PCIe) take the class weight directly.
#[allow(clippy::too_many_arguments)]
fn apply_template(
    template: &[TemplateStage],
    w: f64,
    write: bool,
    ccd: u32,
    k_total: u32,
    x_total: u32,
    flow_idx: usize,
    add: &mut impl FnMut(u64, f64, f64),
) {
    for s in template {
        let Some(cap) = s.cap_gb_s else { continue };
        let frac = w * s.byte_scale;
        match s.class {
            // Private per-flow aggregates carry no direction bit: the key
            // already names the flow.
            PointClass::PrivCore => add(
                point_key(PointClass::PrivCore, flow_idx as u64, false),
                frac,
                cap * k_total as f64,
            ),
            PointClass::PrivCcx => add(
                point_key(PointClass::PrivCcx, flow_idx as u64, false),
                frac,
                cap * x_total as f64,
            ),
            PointClass::Gmi => add(point_key(PointClass::Gmi, ccd as u64, write), frac, cap),
            PointClass::CxlPort => {
                add(point_key(PointClass::CxlPort, ccd as u64, write), frac, cap)
            }
            PointClass::Mem => {} // redistributed per target DIMM
            PointClass::Noc
            | PointClass::Xgmi
            | PointClass::Hub
            | PointClass::Pcie
            | PointClass::Other => add(point_key(s.class, s.entity, write), frac, cap),
        }
    }
}

/// Stable symmetry-class key of a (core, dimm) pair: the pair of quadrant
/// coordinates plus the socket-crossing bit.
fn pair_key(topo: &Topology, core: CoreId, dimm: DimmId) -> u64 {
    let qc = topo.quadrant_of_ccd(topo.ccd_of_core(core));
    let qu = topo.quadrant_of_umc(UmcId(dimm.0));
    let remote = (topo.socket_of_core(core) != topo.socket_of_umc(UmcId(dimm.0))) as u64;
    (remote << 32)
        | ((qc.col as u64) << 24)
        | ((qc.row as u64) << 16)
        | ((qu.col as u64) << 8)
        | qu.row as u64
}

/// Quadrant key of a DIMM (for NIC routes, whose source is fixed).
fn quadrant_key(topo: &Topology, dimm: DimmId) -> u64 {
    let q = topo.quadrant_of_umc(UmcId(dimm.0));
    let socket = topo.socket_of_umc(UmcId(dimm.0)) as u64;
    (socket << 32) | ((q.col as u64) << 8) | q.row as u64
}

/// Quadrant key of a core (for CXL routes, whose target is fixed).
fn quadrant_of_core(topo: &Topology, core: CoreId) -> u64 {
    let q = topo.quadrant_of_ccd(topo.ccd_of_core(core));
    let socket = topo.socket_of_core(core) as u64;
    (socket << 32) | ((q.col as u64) << 8) | q.row as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{
        BackendKind, CoreSelect, EngineFlow, EngineOptions, ScenarioFlow, TargetSpec,
        TopologyChoice,
    };
    use chiplet_sim::{Bandwidth, ByteSize, DemandSchedule, SimTime};

    fn event_spec(demand_gb_s: Option<f64>) -> ScenarioSpec {
        ScenarioSpec {
            name: "unit_dse_estimate".into(),
            description: String::new(),
            topology: TopologyChoice::Named("epyc_9634".into()),
            backend: BackendKind::Event,
            seed: Some(42),
            horizon: SimTime::from_micros(30),
            policy: Default::default(),
            engine: Some(EngineOptions {
                deterministic_memory: true,
                ..Default::default()
            }),
            fluid: None,
            flows: vec![ScenarioFlow {
                name: "probe".into(),
                demand: demand_gb_s
                    .map(|g| DemandSchedule::constant(Some(Bandwidth::from_gb_per_s(g)))),
                engine: Some(EngineFlow {
                    cores: CoreSelect::Ccd(0),
                    nic: None,
                    target: TargetSpec::AllDimms,
                    op: None,
                    pattern: None,
                    working_set: Some(ByteSize::from_mib(64)),
                    start: None,
                    stop: None,
                }),
                links: Vec::new(),
            }],
        }
    }

    #[test]
    fn unloaded_latency_matches_engine_plan_mean() {
        let spec = event_spec(Some(4.0));
        let topo = spec.topology.resolve().unwrap();
        let est = estimate_on(&spec, &topo).unwrap();
        // Exhaustive mean over every (core, dimm) plan, the engine's way.
        let fs = spec.compile_flow(&spec.flows[0], &topo).unwrap();
        let Target::Dimms(ds) = &fs.target else {
            panic!()
        };
        let mut sum = 0.0;
        let mut n = 0.0;
        for &c in &fs.cores {
            for &d in ds {
                sum += StagePlan::to_dimm(&topo, c, d).unloaded_ns;
                n += 1.0;
            }
        }
        let exact = sum / n;
        let got = est.flows[0].unloaded_ns;
        assert!(
            (got - exact).abs() < 1e-6,
            "class-weighted unloaded mean {got} != exhaustive {exact}"
        );
    }

    #[test]
    fn throttled_flow_below_knee_is_demand_limited_at_unloaded_latency() {
        let est = estimate_design(&event_spec(Some(8.0))).unwrap();
        let f = &est.flows[0];
        assert!((f.achieved_gb_s - 8.0).abs() < 1e-9);
        assert!((f.latency_ns - f.unloaded_ns).abs() < 1e-9);
    }

    #[test]
    fn unthrottled_flow_saturates_the_gmi_phy() {
        let est = estimate_design(&event_spec(None)).unwrap();
        let f = &est.flows[0];
        // One CCD of the 9634 reading all DIMMs: the 33.2 GB/s GMI read phy
        // binds well before the NoC or the UMC aggregate.
        assert!(
            (f.achieved_gb_s - 33.2).abs() < 0.5,
            "achieved {} !~ 33.2",
            f.achieved_gb_s
        );
        assert!(f.latency_ns > f.unloaded_ns, "congested flow must queue");
    }

    #[test]
    fn congested_latency_follows_the_inflight_budget() {
        let est = estimate_design(&event_spec(None)).unwrap();
        let f = &est.flows[0];
        // hw budget = 7 cores × 34 lines; latency = budget × 64B / rate.
        let budget = 7.0 * 34.0 * 64.0;
        assert!((f.latency_ns - budget / f.achieved_gb_s).abs() < 1e-6);
    }

    #[test]
    fn two_flows_share_the_noc_max_min() {
        let mut spec = event_spec(None);
        spec.flows.push(ScenarioFlow {
            name: "rest".into(),
            demand: None,
            engine: Some(EngineFlow {
                cores: CoreSelect::Ccds((1..12).collect()),
                nic: None,
                target: TargetSpec::AllDimms,
                op: None,
                pattern: None,
                working_set: Some(ByteSize::from_mib(64)),
                start: None,
                stop: None,
            }),
            links: Vec::new(),
        });
        let est = estimate_design(&spec).unwrap();
        // Socket-wide: 12 GMI phys offer 12 × 33.2 = 398 GB/s, the NoC
        // read capacity 366.2 binds; no flow exceeds its own GMI share.
        assert!(est.bandwidth_gb_s < 12.0 * 33.2 + 1.0);
        assert!(est.bandwidth_gb_s > 300.0, "total {}", est.bandwidth_gb_s);
    }

    #[test]
    fn cache_resident_flow_matches_engine_accounting() {
        let mut spec = event_spec(None);
        if let Some(engine) = &mut spec.flows[0].engine {
            engine.working_set = Some(ByteSize::from_kib(16)); // L1-resident
        }
        let est = estimate_design(&spec).unwrap();
        let f = &est.flows[0];
        assert!(!f.fabric);
        // 7 cores, one line per L1 hit latency each.
        let per_core = 64.0 / 1.19;
        assert!((f.achieved_gb_s - 7.0 * per_core).abs() < 1e-6);
    }

    #[test]
    fn cost_proxy_orders_platforms_sensibly() {
        let small = cost_proxy(&PlatformSpec::epyc_7302());
        let big = cost_proxy(&PlatformSpec::epyc_9634());
        assert!(
            big > small,
            "9634 ({big}) must cost more than 7302 ({small})"
        );
        let mut cheap = PlatformSpec::epyc_9634();
        cheap.cxl = None;
        assert!(cost_proxy(&cheap) < big, "dropping CXL must cut cost");
    }
}
