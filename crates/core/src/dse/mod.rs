//! `chiplet-dse`: analytical fast-path design-space exploration with
//! Pareto escalation to the event engine.
//!
//! The paper's §4 hardware-abstraction story implies a design space — CCD
//! counts, NoC grid shapes, per-class link capacities, CXL attach points —
//! that full DES runs explore at 7–62 ms per design. This module searches
//! it the RapidChiplet way: a deterministic [candidate generator]
//! enumerates inline-topology [`ScenarioSpec`]s over declarative axes, an
//! [analytical estimator](estimate) scores each candidate in tens of
//! microseconds (hop-walk latency, one-shot max-min bandwidth, closed-form
//! cost), a [Pareto extraction](pareto) keeps the non-dominated designs,
//! and only that frontier escalates to full event-engine runs through the
//! content-cached parallel [`SweepRunner`].
//!
//! Determinism end to end: candidates carry the sweep layer's
//! content-hash-derived seeds, the estimator is pure arithmetic, frontier
//! order is a total order over (metrics, hash), and the escalation reuses
//! the byte-stable sweep machinery — so a [`DseOutcome`] is byte-identical
//! across worker counts, cache states, and repeat runs.
//!
//! [candidate generator]: DseSpec::expand

pub mod estimate;
pub mod pareto;

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use chiplet_sim::Bandwidth;
use chiplet_topology::PlatformSpec;
use serde::{Deserialize, Serialize};

use crate::metrics::{MetricKind, MetricsRegistry};
use crate::scenario::{
    fnv1a64, parallel_ordered, splitmix64, ScenarioError, ScenarioSpec, SweepOutcome, SweepPoint,
    SweepRunner, SweepStats, TopologyChoice,
};

pub use estimate::{cost_proxy, estimate_design, estimate_on, DesignEstimate, FlowEstimate};
pub use pareto::{pareto_frontier, ParetoPoint};

/// Default cap on the number of candidates one search may expand to;
/// override per search with [`DseSpec::max_candidates`]. Far above the
/// sweep layer's DES-sized default because candidates cost microseconds,
/// not milliseconds.
pub const MAX_CANDIDATES: usize = 100_000;

fn invalid<T>(msg: impl Into<String>) -> Result<T, ScenarioError> {
    Err(ScenarioError::Invalid(msg.into()))
}

/// One design axis of a search. The expansion takes the cartesian product
/// of all axes, first axis outermost, and applies them to the base
/// scenario's platform in axis order — so a [`DseAxis::Platform`] axis,
/// which replaces the platform wholesale, belongs first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DseAxis {
    /// Named platform presets (`epyc_7302`, `epyc_9634`) as the starting
    /// point; later axes mutate the chosen preset.
    Platform {
        /// Preset names to sweep.
        values: Vec<String>,
    },
    /// Compute chiplets per socket.
    CcdCount {
        /// CCD counts to sweep.
        values: Vec<u32>,
    },
    /// I/O-die NoC grid as (columns, rows).
    QuadrantGrid {
        /// Grid shapes to sweep.
        values: Vec<(u8, u8)>,
    },
    /// Whether the die provisions the diagonal express route.
    DiagonalExpress {
        /// Settings to sweep.
        values: Vec<bool>,
    },
    /// Scales the per-CCD GMI read+write capacities.
    GmiScale {
        /// Multipliers to sweep.
        values: Vec<f64>,
    },
    /// Scales the socket-wide NoC routing read+write capacities.
    NocScale {
        /// Multipliers to sweep.
        values: Vec<f64>,
    },
    /// Number of UMC channels (== DIMMs) per socket.
    UmcCount {
        /// Channel counts to sweep.
        values: Vec<u32>,
    },
    /// Scales the per-UMC read+write capacities.
    UmcScale {
        /// Multipliers to sweep.
        values: Vec<f64>,
    },
    /// CXL attach points: device count, 0 = no CXL. A non-zero count on a
    /// platform without a CXL calibration borrows the EPYC 9634's.
    CxlDevices {
        /// Device counts to sweep.
        values: Vec<u32>,
    },
}

impl DseAxis {
    /// Number of settings on this axis.
    pub fn len(&self) -> usize {
        match self {
            DseAxis::Platform { values } => values.len(),
            DseAxis::CcdCount { values } => values.len(),
            DseAxis::QuadrantGrid { values } => values.len(),
            DseAxis::DiagonalExpress { values } => values.len(),
            DseAxis::GmiScale { values } => values.len(),
            DseAxis::NocScale { values } => values.len(),
            DseAxis::UmcCount { values } => values.len(),
            DseAxis::UmcScale { values } => values.len(),
            DseAxis::CxlDevices { values } => values.len(),
        }
    }

    /// True when the axis has no settings (an invalid search).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Human-readable `key=value` label of setting `idx`.
    fn label(&self, idx: usize) -> String {
        match self {
            DseAxis::Platform { values } => format!("platform={}", values[idx]),
            DseAxis::CcdCount { values } => format!("ccd={}", values[idx]),
            DseAxis::QuadrantGrid { values } => {
                format!("grid={}x{}", values[idx].0, values[idx].1)
            }
            DseAxis::DiagonalExpress { values } => format!("diag={}", values[idx]),
            DseAxis::GmiScale { values } => format!("gmi_scale={}", values[idx]),
            DseAxis::NocScale { values } => format!("noc_scale={}", values[idx]),
            DseAxis::UmcCount { values } => format!("umc={}", values[idx]),
            DseAxis::UmcScale { values } => format!("umc_scale={}", values[idx]),
            DseAxis::CxlDevices { values } => format!("cxl={}", values[idx]),
        }
    }

    /// Applies setting `idx` to a platform under construction.
    fn apply(&self, idx: usize, p: &mut PlatformSpec) -> Result<(), ScenarioError> {
        fn scale(b: &mut Bandwidth, s: f64) {
            *b = Bandwidth::from_gb_per_s(b.as_gb_per_s() * s);
        }
        match self {
            DseAxis::Platform { values } => {
                *p = TopologyChoice::Named(values[idx].clone()).platform()?;
            }
            DseAxis::CcdCount { values } => p.ccd_count = values[idx],
            DseAxis::QuadrantGrid { values } => p.quadrant_grid = values[idx],
            DseAxis::DiagonalExpress { values } => p.noc.diagonal_express = values[idx],
            DseAxis::GmiScale { values } => {
                let s = values[idx];
                if !(s.is_finite() && s > 0.0) {
                    return invalid(format!("gmi_scale axis: invalid multiplier {s}"));
                }
                scale(&mut p.caps.gmi_read, s);
                scale(&mut p.caps.gmi_write, s);
            }
            DseAxis::NocScale { values } => {
                let s = values[idx];
                if !(s.is_finite() && s > 0.0) {
                    return invalid(format!("noc_scale axis: invalid multiplier {s}"));
                }
                scale(&mut p.caps.noc_read, s);
                scale(&mut p.caps.noc_write, s);
            }
            DseAxis::UmcCount { values } => p.mem.umc_count = values[idx],
            DseAxis::UmcScale { values } => {
                let s = values[idx];
                if !(s.is_finite() && s > 0.0) {
                    return invalid(format!("umc_scale axis: invalid multiplier {s}"));
                }
                scale(&mut p.mem.umc_read_bw, s);
                scale(&mut p.mem.umc_write_bw, s);
            }
            DseAxis::CxlDevices { values } => {
                let n = values[idx];
                if n == 0 {
                    p.cxl = None;
                } else {
                    let mut cxl = match p.cxl.take() {
                        Some(cxl) => cxl,
                        // Borrow the 9634's CXL calibration for platforms
                        // without one; per-device capacities stay as-is,
                        // only the attach count varies.
                        None => PlatformSpec::epyc_9634()
                            .cxl
                            .expect("epyc_9634 carries a CXL calibration"),
                    };
                    cxl.device_count = n;
                    p.cxl = Some(cxl);
                }
            }
        }
        Ok(())
    }
}

/// A declarative design-space search: a base workload scenario plus design
/// axes over its platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseSpec {
    /// Search name (appears in the report).
    pub name: String,
    /// One-line description.
    #[serde(default)]
    pub description: String,
    /// The workload every candidate is scored under; its topology is the
    /// starting platform the axes mutate.
    pub base: ScenarioSpec,
    /// The design axes (cartesian product, first axis outermost).
    pub axes: Vec<DseAxis>,
    /// Expansion cap; `None` means [`MAX_CANDIDATES`].
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub max_candidates: Option<usize>,
    /// How many frontier designs escalate to full event-engine runs;
    /// `None` escalates the whole frontier.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub escalate: Option<usize>,
}

impl DseSpec {
    /// Serializes to pretty JSON (deterministic bytes).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("dse specs always serialize")
    }

    /// Parses a search back from [`DseSpec::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, ScenarioError> {
        serde_json::from_str(s).map_err(|e| ScenarioError::Invalid(format!("JSON error: {e:?}")))
    }

    /// Expands the cartesian product of all axes into concrete candidates,
    /// in a stable order (first axis outermost, last fastest). Candidates
    /// are [`SweepPoint`]s — same content-hash and derived-seed scheme as
    /// sweep expansion — so the escalation path shares the sweep cache
    /// namespace and results never depend on execution order.
    pub fn expand(&self) -> Result<Vec<SweepPoint>, ScenarioError> {
        if self.axes.is_empty() {
            return invalid(format!("search '{}' has no axes", self.name));
        }
        let mut total = 1usize;
        for (a, axis) in self.axes.iter().enumerate() {
            if axis.is_empty() {
                return invalid(format!("search '{}': axis {a} has no values", self.name));
            }
            total = total.saturating_mul(axis.len());
        }
        let max_candidates = self.max_candidates.unwrap_or(MAX_CANDIDATES);
        if total > max_candidates {
            return invalid(format!(
                "search '{}' expands to {total} candidates (max_candidates limit \
                 {max_candidates}); raise `max_candidates` on the search to allow more",
                self.name
            ));
        }
        let base_platform = self.base.topology.platform()?;
        let base_seed = self.base.seed_or_default();
        let mut points = Vec::with_capacity(total);
        let mut idx = vec![0usize; self.axes.len()];
        loop {
            let mut platform = base_platform.clone();
            let mut labels = Vec::with_capacity(self.axes.len());
            for (axis, &i) in self.axes.iter().zip(&idx) {
                axis.apply(i, &mut platform)?;
                labels.push(axis.label(i));
            }
            let label = labels.join(" ");
            let mut spec = self.base.clone();
            spec.topology = TopologyChoice::Inline(platform);
            spec.name = format!("{} [{label}]", self.name);
            // Same two-pass scheme as sweep expansion: hash the content
            // before the derived seed is written, then hash the final spec.
            let key_hash = fnv1a64(spec.to_json().as_bytes());
            spec.seed = Some(splitmix64(base_seed ^ key_hash));
            let hash = format!("{:016x}", fnv1a64(spec.to_json().as_bytes()));
            points.push(SweepPoint { label, spec, hash });

            // Odometer increment, last axis fastest.
            let mut carry = true;
            for (i, axis) in self.axes.iter().enumerate().rev() {
                if !carry {
                    break;
                }
                idx[i] += 1;
                carry = idx[i] == axis.len();
                if carry {
                    idx[i] = 0;
                }
            }
            if carry {
                break;
            }
        }
        Ok(points)
    }
}

/// One frontier design in the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierEntry {
    /// The candidate's axis label.
    pub label: String,
    /// Content hash of the candidate spec (the escalation cache key).
    pub hash: String,
    /// Latency proxy, ns.
    pub latency_ns: f64,
    /// Bandwidth proxy, GB/s.
    pub bandwidth_gb_s: f64,
    /// Cost proxy, unitless.
    pub cost: f64,
}

/// The deterministic report of one search: byte-identical across worker
/// counts, cache states, and repeat runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseOutcome {
    /// Search name.
    pub dse: String,
    /// Candidates enumerated (after any budget truncation).
    pub candidates: usize,
    /// Candidates the estimator scored.
    pub scored: usize,
    /// Candidates rejected as infeasible (workload does not map onto the
    /// design).
    pub infeasible: usize,
    /// The Pareto frontier, in deterministic frontier order.
    pub frontier: Vec<FrontierEntry>,
    /// Full event-engine reports of the escalated frontier designs.
    pub escalation: SweepOutcome,
}

impl DseOutcome {
    /// Serializes to pretty JSON, deterministically.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("dse outcomes always serialize")
    }

    /// Parses back from [`DseOutcome::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Execution metadata of one search run (not part of the report bytes).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DseStats {
    /// Candidates enumerated.
    pub candidates: usize,
    /// Candidates scored by the estimator.
    pub scored: usize,
    /// Infeasible candidates.
    pub infeasible: usize,
    /// Frontier size.
    pub frontier: usize,
    /// Designs escalated to the event engine.
    pub escalated: usize,
    /// Mean estimator time per scored candidate, ns.
    pub estimator_ns: f64,
    /// Escalation sweep execution stats (cache hits show up here).
    pub sweep: SweepStats,
}

/// Runs design-space searches: parallel scoring, frontier extraction, and
/// frontier escalation through the sweep runner.
#[derive(Debug, Clone, Default)]
pub struct DseRunner {
    /// Worker threads; 0 = one per available core.
    pub jobs: usize,
    /// Escalation result cache directory (shared with the sweep runner's
    /// namespace); `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Deterministic-prefix truncation of the candidate list; `None` runs
    /// the full expansion. The CLI's `--budget N`.
    pub budget: Option<usize>,
}

impl DseRunner {
    /// A runner with `jobs` workers and no cache.
    pub fn with_jobs(jobs: usize) -> Self {
        DseRunner {
            jobs,
            ..Default::default()
        }
    }

    /// Expands, scores, extracts the frontier, and escalates. The outcome
    /// is byte-identical for any worker count.
    pub fn run(&self, spec: &DseSpec) -> Result<(DseOutcome, DseStats), ScenarioError> {
        let mut points = spec.expand()?;
        if let Some(budget) = self.budget {
            points.truncate(budget);
        }
        let candidates = points.len();

        // Score every candidate in parallel. Estimator failures mean the
        // workload does not map onto that design (e.g. a flow pinned to
        // CCD 7 on a 4-CCD candidate) — count them, don't fail the search.
        let spent_ns = AtomicU64::new(0);
        let estimates = parallel_ordered(&points, self.jobs, |_, point| {
            let started = std::time::Instant::now();
            let est = estimate_design(&point.spec);
            spent_ns.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
            est.ok()
        });

        let mut scored_idx: Vec<usize> = Vec::with_capacity(points.len());
        let mut pareto_points: Vec<ParetoPoint> = Vec::with_capacity(points.len());
        for (i, est) in estimates.iter().enumerate() {
            let Some(est) = est else { continue };
            scored_idx.push(i);
            pareto_points.push(ParetoPoint {
                latency_ns: est.latency_ns,
                bandwidth_gb_s: est.bandwidth_gb_s,
                cost: est.cost,
                hash: u64::from_str_radix(&points[i].hash, 16).expect("hashes are 16 hex digits"),
            });
        }
        let scored = scored_idx.len();
        let infeasible = candidates - scored;

        let frontier_local = pareto_frontier(&pareto_points);
        let frontier: Vec<FrontierEntry> = frontier_local
            .iter()
            .map(|&k| {
                let i = scored_idx[k];
                FrontierEntry {
                    label: points[i].label.clone(),
                    hash: points[i].hash.clone(),
                    latency_ns: pareto_points[k].latency_ns,
                    bandwidth_gb_s: pareto_points[k].bandwidth_gb_s,
                    cost: pareto_points[k].cost,
                }
            })
            .collect();

        // Escalate the frontier head to full event-engine runs.
        let escalate = spec.escalate.unwrap_or(frontier_local.len());
        let escalated: Vec<SweepPoint> = frontier_local
            .iter()
            .take(escalate)
            .map(|&k| points[scored_idx[k]].clone())
            .collect();
        let sweep_runner = SweepRunner {
            jobs: self.jobs,
            cache_dir: self.cache_dir.clone(),
        };
        let (escalation, sweep_stats) =
            sweep_runner.run_points(&format!("{}/frontier", spec.name), escalated)?;

        let stats = DseStats {
            candidates,
            scored,
            infeasible,
            frontier: frontier.len(),
            escalated: escalation.points.len(),
            estimator_ns: if scored > 0 {
                spent_ns.load(Ordering::Relaxed) as f64 / scored as f64
            } else {
                0.0
            },
            sweep: sweep_stats,
        };
        Ok((
            DseOutcome {
                dse: spec.name.clone(),
                candidates,
                scored,
                infeasible,
                frontier,
                escalation,
            },
            stats,
        ))
    }

    /// Like [`DseRunner::run`], but instruments the search into `metrics`
    /// with **volatile** families (excluded from the default OpenMetrics
    /// dump, like all execution telemetry): `dse_candidates_scored_total`,
    /// `dse_infeasible_total`, `dse_frontier_size`, `dse_escalated_total`,
    /// and `dse_estimator_ns`, labelled `{dse}`.
    pub fn run_with_metrics(
        &self,
        spec: &DseSpec,
        metrics: &mut MetricsRegistry,
    ) -> Result<(DseOutcome, DseStats), ScenarioError> {
        let (outcome, stats) = self.run(spec)?;
        metrics.describe_volatile(
            "dse_candidates_scored_total",
            MetricKind::Counter,
            "Design candidates scored by the analytical estimator.",
        );
        metrics.describe_volatile(
            "dse_infeasible_total",
            MetricKind::Counter,
            "Design candidates the workload does not map onto.",
        );
        metrics.describe_volatile(
            "dse_frontier_size",
            MetricKind::Gauge,
            "Designs on the Pareto frontier.",
        );
        metrics.describe_volatile(
            "dse_escalated_total",
            MetricKind::Counter,
            "Frontier designs escalated to full event-engine runs.",
        );
        metrics.describe_volatile(
            "dse_estimator_ns",
            MetricKind::Gauge,
            "Mean estimator time per scored candidate, ns.",
        );
        let labels = [("dse", outcome.dse.as_str())];
        metrics.counter_add("dse_candidates_scored_total", &labels, stats.scored as f64);
        metrics.counter_add("dse_infeasible_total", &labels, stats.infeasible as f64);
        metrics.gauge_set("dse_frontier_size", &labels, stats.frontier as f64);
        metrics.counter_add("dse_escalated_total", &labels, stats.escalated as f64);
        metrics.gauge_set("dse_estimator_ns", &labels, stats.estimator_ns);
        Ok((outcome, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{
        BackendKind, CoreSelect, EngineFlow, EngineOptions, ScenarioFlow, TargetSpec,
    };
    use chiplet_sim::{ByteSize, SimTime};

    fn base_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "unit_dse".into(),
            description: String::new(),
            topology: TopologyChoice::Named("epyc_9634".into()),
            backend: BackendKind::Event,
            seed: Some(42),
            horizon: SimTime::from_micros(10),
            policy: Default::default(),
            engine: Some(EngineOptions {
                deterministic_memory: true,
                ..Default::default()
            }),
            fluid: None,
            flows: vec![ScenarioFlow {
                name: "probe".into(),
                demand: None,
                engine: Some(EngineFlow {
                    cores: CoreSelect::Ccd(0),
                    nic: None,
                    target: TargetSpec::AllDimms,
                    op: None,
                    pattern: None,
                    working_set: Some(ByteSize::from_mib(64)),
                    start: None,
                    stop: None,
                }),
                links: Vec::new(),
            }],
        }
    }

    fn small_search() -> DseSpec {
        DseSpec {
            name: "unit_search".into(),
            description: String::new(),
            base: base_spec(),
            axes: vec![
                DseAxis::CcdCount {
                    values: vec![2, 4, 12],
                },
                DseAxis::GmiScale {
                    values: vec![0.5, 1.0],
                },
            ],
            max_candidates: None,
            escalate: Some(2),
        }
    }

    #[test]
    fn expansion_is_stable_and_content_hashed() {
        let search = small_search();
        let a = search.expand().unwrap();
        let b = search.expand().unwrap();
        assert_eq!(a.len(), 6);
        assert_eq!(a, b);
        assert_eq!(a[0].label, "ccd=2 gmi_scale=0.5");
        assert_eq!(a[5].label, "ccd=12 gmi_scale=1");
        // Distinct designs hash (and therefore seed) differently.
        let hashes: std::collections::BTreeSet<_> = a.iter().map(|p| p.hash.clone()).collect();
        assert_eq!(hashes.len(), 6);
        assert_ne!(a[0].spec.seed, a[1].spec.seed);
    }

    #[test]
    fn candidate_hash_matches_sweep_spec_hash() {
        let points = small_search().expand().unwrap();
        for p in &points {
            assert_eq!(crate::scenario::spec_hash(&p.spec), p.hash);
        }
    }

    #[test]
    fn axes_mutate_the_inline_platform() {
        let points = small_search().expand().unwrap();
        let TopologyChoice::Inline(p0) = &points[0].spec.topology else {
            panic!("candidates carry inline platforms");
        };
        assert_eq!(p0.ccd_count, 2);
        assert!((p0.caps.gmi_read.as_gb_per_s() - 16.6).abs() < 0.01);
        let TopologyChoice::Inline(p5) = &points[5].spec.topology else {
            panic!();
        };
        assert_eq!(p5.ccd_count, 12);
        assert!((p5.caps.gmi_read.as_gb_per_s() - 33.2).abs() < 0.01);
    }

    #[test]
    fn infeasible_candidates_are_counted_not_fatal() {
        let mut search = small_search();
        // Pin the workload to CCD 5: the 2- and 4-CCD candidates can't host
        // it (2 settings × gmi axis = 4 infeasible candidates).
        for flow in &mut search.base.flows {
            if let Some(engine) = &mut flow.engine {
                engine.cores = CoreSelect::Ccd(5);
            }
        }
        let (outcome, stats) = DseRunner::with_jobs(1).run(&search).unwrap();
        assert_eq!(outcome.candidates, 6);
        assert_eq!(outcome.infeasible, 4);
        assert_eq!(outcome.scored, 2);
        assert_eq!(stats.infeasible, 4);
    }

    #[test]
    fn outcome_bytes_are_jobs_invariant() {
        let search = small_search();
        let (a, _) = DseRunner::with_jobs(1).run(&search).unwrap();
        let (b, _) = DseRunner::with_jobs(4).run(&search).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.escalation.points.len(), 2);
    }

    #[test]
    fn budget_truncates_the_deterministic_prefix() {
        let search = small_search();
        let full = search.expand().unwrap();
        let runner = DseRunner {
            jobs: 1,
            cache_dir: None,
            budget: Some(3),
        };
        let (outcome, _) = runner.run(&search).unwrap();
        assert_eq!(outcome.candidates, 3);
        let budget_hashes: Vec<_> = outcome.frontier.iter().map(|f| f.hash.clone()).collect();
        for h in &budget_hashes {
            assert!(full[..3].iter().any(|p| &p.hash == h));
        }
    }

    #[test]
    fn outcome_roundtrips_through_json() {
        let (outcome, _) = DseRunner::with_jobs(2).run(&small_search()).unwrap();
        let back = DseOutcome::from_json(&outcome.to_json()).unwrap();
        assert_eq!(outcome, back);
    }

    #[test]
    fn cxl_axis_toggles_the_attach_points() {
        let mut search = small_search();
        search.axes = vec![DseAxis::CxlDevices { values: vec![0, 2] }];
        let points = search.expand().unwrap();
        let TopologyChoice::Inline(p0) = &points[0].spec.topology else {
            panic!();
        };
        assert!(p0.cxl.is_none());
        let TopologyChoice::Inline(p1) = &points[1].spec.topology else {
            panic!();
        };
        assert_eq!(p1.cxl.as_ref().map(|c| c.device_count), Some(2));
    }

    #[test]
    fn volatile_metrics_are_emitted() {
        let mut metrics = MetricsRegistry::new();
        let (_, stats) = DseRunner::with_jobs(2)
            .run_with_metrics(&small_search(), &mut metrics)
            .unwrap();
        assert_eq!(stats.scored, 6);
        let dump = metrics.to_openmetrics_with_volatile();
        assert!(dump.contains("dse_candidates_scored_total"));
        assert!(dump.contains("dse_frontier_size"));
        assert!(dump.contains("dse_escalated_total"));
        assert!(dump.contains("dse_estimator_ns"));
        let default_dump = metrics.to_openmetrics();
        assert!(!default_dump.contains("dse_estimator_ns"));
    }
}
