//! Probabilistic profiling sketches.
//!
//! §4 #5 proposes a perf-like profiler that combines PMU counters "with
//! time-series-based probabilistic and compact data structures (like
//! Sketches) to distill application-specific execution telemetry".
//! Tracking per-flow (or per cacheline-region) byte counts exactly would
//! need unbounded memory at terabit rates; these two classics bound it:
//!
//! * [`CountMinSketch`] — per-key byte counters with a one-sided
//!   (overestimate-only) error of at most `ε · total` with probability
//!   `1 − δ`, in `O(ln(1/δ) · e/ε)` counters;
//! * [`SpaceSaving`] — the top-k heavy hitters with guaranteed inclusion of
//!   every key above `total / capacity`.

use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasher, Hash, Hasher};

/// The splitmix64 finalizer — the same mixing discipline the sweep runner
/// uses for per-point seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded FNV-1a `BuildHasher`: deterministic across runs and platforms,
/// unlike `RandomState`, so sketches built from the same seed produce
/// byte-identical reports.
#[derive(Debug, Clone, Copy)]
struct SeededFnv {
    seed: u64,
}

impl BuildHasher for SeededFnv {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher {
            state: 0xcbf2_9ce4_8422_2325 ^ self.seed,
        }
    }
}

/// FNV-1a over the written bytes, with a splitmix64 finalizer to spread
/// the low-entropy keys (small integers) Count-Min rows index with.
#[derive(Debug, Clone, Copy)]
struct FnvHasher {
    state: u64,
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        splitmix64(self.state)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x1_0000_0000_01b3);
        }
    }
}

/// A DDSketch-style quantile sketch with relative-error guarantee.
///
/// Values are bucketed by `⌈log_γ(v)⌉` with `γ = (1+α)/(1−α)`; any quantile
/// query returns a value within relative error `α` of an exact order
/// statistic. Mergeable (same α) and O(log range) buckets — the
/// "time-series-based probabilistic and compact" latency structure §4 #5
/// calls for.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    alpha: f64,
    gamma_ln: f64,
    buckets: HashMap<i32, u64>,
    zero_count: u64,
    total: u64,
    min: f64,
    max: f64,
}

impl QuantileSketch {
    /// Creates a sketch with relative accuracy `alpha` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range `alpha`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha in (0,1)");
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        QuantileSketch {
            alpha,
            gamma_ln: gamma.ln(),
            buckets: HashMap::new(),
            zero_count: 0,
            total: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The configured relative accuracy.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    fn key_of(&self, v: f64) -> i32 {
        (v.ln() / self.gamma_ln).ceil() as i32
    }

    fn value_of(&self, key: i32) -> f64 {
        // Bucket midpoint in log space: γ^key × 2/(γ+1) ≈ γ^(key−1/2).
        let gamma = self.gamma_ln.exp();
        gamma.powi(key) * 2.0 / (1.0 + gamma)
    }

    /// Adds a sample (non-negative; negatives are clamped to zero).
    pub fn record(&mut self, v: f64) {
        self.total += 1;
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v <= f64::MIN_POSITIVE {
            self.zero_count += 1;
        } else {
            *self.buckets.entry(self.key_of(v)).or_insert(0) += 1;
        }
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The `q`-quantile, or `None` when empty. Within relative error α of
    /// an exact order statistic.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        if rank <= self.zero_count {
            return Some(0.0);
        }
        let mut keys: Vec<i32> = self.buckets.keys().copied().collect();
        keys.sort_unstable();
        let mut seen = self.zero_count;
        for k in keys {
            seen += self.buckets[&k];
            if seen >= rank {
                return Some(self.value_of(k).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merges another sketch (same α).
    ///
    /// # Panics
    ///
    /// Panics on mismatched accuracies.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            (self.alpha - other.alpha).abs() < 1e-12,
            "cannot merge sketches with different accuracies"
        );
        for (&k, &c) in &other.buckets {
            *self.buckets.entry(k).or_insert(0) += c;
        }
        self.zero_count += other.zero_count;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Bucket memory in bytes (excluding map overhead constants).
    pub fn memory_bytes(&self) -> usize {
        self.buckets.len() * (std::mem::size_of::<i32>() + std::mem::size_of::<u64>())
    }
}

/// A Count-Min sketch over hashable keys.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    counters: Vec<u64>,
    hashers: Vec<SeededFnv>,
    total: u64,
}

impl CountMinSketch {
    /// Creates a sketch with error bound `epsilon` (relative to the total
    /// count) at confidence `1 − delta`, hashing with the default seed 0.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range parameters.
    pub fn with_error(epsilon: f64, delta: f64) -> Self {
        Self::with_error_seeded(epsilon, delta, 0)
    }

    /// Like [`CountMinSketch::with_error`], deriving the per-row hash
    /// functions from an explicit seed (splitmix64 stream), so identical
    /// seeds give identical estimates run-to-run.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range parameters.
    pub fn with_error_seeded(epsilon: f64, delta: f64, seed: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta in (0,1)");
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil() as usize;
        Self::with_seed(width.max(1), depth.max(1), seed)
    }

    /// Creates a sketch with explicit dimensions and the default seed 0.
    pub fn new(width: usize, depth: usize) -> Self {
        Self::with_seed(width, depth, 0)
    }

    /// Creates a sketch with explicit dimensions, its row hashers drawn
    /// from a splitmix64 stream of `seed`.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn with_seed(width: usize, depth: usize, seed: u64) -> Self {
        assert!(width > 0 && depth > 0, "dimensions must be positive");
        let mut stream = seed;
        CountMinSketch {
            width,
            depth,
            counters: vec![0; width * depth],
            hashers: (0..depth)
                .map(|_| {
                    stream = splitmix64(stream);
                    SeededFnv { seed: stream }
                })
                .collect(),
            total: 0,
        }
    }

    fn index(&self, row: usize, key: &impl Hash) -> usize {
        let h = self.hashers[row].hash_one(key);
        row * self.width + (h as usize % self.width)
    }

    /// Adds `count` to `key`.
    pub fn update(&mut self, key: &impl Hash, count: u64) {
        for row in 0..self.depth {
            let i = self.index(row, key);
            self.counters[i] += count;
        }
        self.total += count;
    }

    /// Point estimate for `key`: never below the true count; above it by at
    /// most `ε · total` with probability `1 − δ`.
    pub fn estimate(&self, key: &impl Hash) -> u64 {
        (0..self.depth)
            .map(|row| self.counters[self.index(row, key)])
            .min()
            .unwrap_or(0)
    }

    /// Total count across all keys (exact).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Counter memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.counters.len() * std::mem::size_of::<u64>()
    }
}

/// SpaceSaving heavy-hitter tracking with a fixed number of slots.
///
/// Keys are `Ord` so that eviction and the heavy-hitter ordering break
/// count ties by key — fully deterministic, per the repo's contract.
#[derive(Debug, Clone)]
pub struct SpaceSaving<K: Ord + Clone> {
    capacity: usize,
    counts: BTreeMap<K, u64>,
    total: u64,
}

impl<K: Ord + Clone> SpaceSaving<K> {
    /// Creates a tracker with `capacity` slots. Every key whose true count
    /// exceeds `total / capacity` is guaranteed to be present.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        SpaceSaving {
            capacity,
            counts: BTreeMap::new(),
            total: 0,
        }
    }

    /// Adds `count` to `key`, evicting the smallest slot when full (the
    /// newcomer inherits the evicted count — SpaceSaving's overestimate).
    /// Eviction ties go to the smallest key.
    pub fn update(&mut self, key: K, count: u64) {
        self.total += count;
        if let Some(c) = self.counts.get_mut(&key) {
            *c += count;
            return;
        }
        if self.counts.len() < self.capacity {
            self.counts.insert(key, count);
            return;
        }
        let (min_key, min_count) = self
            .counts
            .iter()
            .min_by(|a, b| a.1.cmp(b.1).then_with(|| a.0.cmp(b.0)))
            .map(|(k, &c)| (k.clone(), c))
            .expect("tracker is non-empty when full");
        self.counts.remove(&min_key);
        self.counts.insert(key, min_count + count);
    }

    /// The tracked keys with their (over-)estimates, heaviest first
    /// (count descending, then key ascending).
    pub fn heavy_hitters(&self) -> Vec<(K, u64)> {
        let mut v: Vec<(K, u64)> = self.counts.iter().map(|(k, &c)| (k.clone(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// Total count observed (exact).
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_min_never_underestimates() {
        let mut cm = CountMinSketch::new(64, 4);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        for i in 0..1000u32 {
            let key = i % 97;
            let count = (i as u64 % 7) + 1;
            cm.update(&key, count);
            *truth.entry(key).or_insert(0) += count;
        }
        for (k, &t) in &truth {
            assert!(
                cm.estimate(k) >= t,
                "key {k}: est {} < true {t}",
                cm.estimate(k)
            );
        }
    }

    #[test]
    fn count_min_error_bound_mostly_holds() {
        let mut cm = CountMinSketch::with_error(0.01, 0.01);
        for i in 0..10_000u32 {
            cm.update(&(i % 500), 1);
        }
        let bound = (0.01 * cm.total() as f64) as u64;
        let mut violations = 0;
        for k in 0..500u32 {
            let true_count = 10_000 / 500;
            if cm.estimate(&k) > true_count + bound {
                violations += 1;
            }
        }
        // δ = 1% per key; allow generous slack.
        assert!(violations <= 25, "{violations} violations");
    }

    #[test]
    fn count_min_memory_is_bounded() {
        let cm = CountMinSketch::with_error(0.001, 0.01);
        // e/0.001 ≈ 2719 wide × 5 deep × 8 B ≈ 109 KB, regardless of keys.
        assert!(cm.memory_bytes() < 256 * 1024);
    }

    #[test]
    fn count_min_unknown_key_bounded_by_collisions() {
        let mut cm = CountMinSketch::new(1024, 4);
        cm.update(&1u64, 1000);
        // A different key collides with probability ~1/1024 per row.
        assert!(cm.estimate(&999_999u64) <= 1000);
    }

    #[test]
    fn count_min_is_deterministic_for_a_seed() {
        let build = |seed| {
            let mut cm = CountMinSketch::with_error_seeded(0.01, 0.01, seed);
            for i in 0..5000u32 {
                cm.update(&(i % 311), u64::from(i % 5) + 1);
            }
            (0..311u32).map(|k| cm.estimate(&k)).collect::<Vec<_>>()
        };
        assert_eq!(build(7), build(7));
        // Different seeds give different hash layouts (collisions move).
        assert_ne!(build(7), build(8));
    }

    #[test]
    fn space_saving_eviction_breaks_ties_by_smallest_key() {
        let mut ss = SpaceSaving::new(2);
        ss.update(5u32, 3);
        ss.update(9u32, 3);
        // Full; the newcomer evicts the tied minimum with the smaller key.
        ss.update(1u32, 1);
        let hh = ss.heavy_hitters();
        assert_eq!(hh, vec![(1, 4), (9, 3)]);
    }

    #[test]
    fn space_saving_finds_true_heavy_hitter() {
        let mut ss = SpaceSaving::new(10);
        // One elephant among mice.
        for i in 0..10_000u32 {
            ss.update(i % 1000, 1);
        }
        for _ in 0..5000 {
            ss.update(42u32, 1);
        }
        let hh = ss.heavy_hitters();
        assert_eq!(hh[0].0, 42, "elephant missing: {hh:?}");
        assert!(hh[0].1 >= 5000);
    }

    #[test]
    fn space_saving_capacity_is_respected() {
        let mut ss = SpaceSaving::new(5);
        for i in 0..1000u32 {
            ss.update(i, 1);
        }
        assert!(ss.heavy_hitters().len() <= 5);
        assert_eq!(ss.total(), 1000);
    }

    #[test]
    fn space_saving_overestimates_only() {
        let mut ss = SpaceSaving::new(3);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        for i in 0..300u32 {
            let k = i % 7;
            ss.update(k, 2);
            *truth.entry(k).or_insert(0) += 2;
        }
        for (k, est) in ss.heavy_hitters() {
            assert!(est >= truth[&k], "key {k} underestimated");
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: SpaceSaving<u32> = SpaceSaving::new(0);
    }

    #[test]
    fn quantile_sketch_relative_error() {
        let mut s = QuantileSketch::new(0.01);
        let mut values: Vec<f64> = (1..=10_000).map(|i| (i as f64) * 0.7 + 3.0).collect();
        for &v in &values {
            s.record(v);
        }
        values.sort_by(f64::total_cmp);
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1);
            let exact = values[rank - 1];
            let got = s.quantile(q).unwrap();
            let rel = (got - exact).abs() / exact;
            assert!(rel <= 0.011, "q={q}: got {got}, exact {exact}, rel {rel}");
        }
    }

    #[test]
    fn quantile_sketch_merge_equals_union() {
        let mut a = QuantileSketch::new(0.02);
        let mut b = QuantileSketch::new(0.02);
        let mut whole = QuantileSketch::new(0.02);
        for i in 0..5000 {
            let v = 10.0 + (i as f64 % 977.0);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for q in [0.1, 0.5, 0.95] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn quantile_sketch_handles_zeros_and_empty() {
        let mut s = QuantileSketch::new(0.05);
        assert_eq!(s.quantile(0.5), None);
        s.record(0.0);
        s.record(0.0);
        s.record(100.0);
        assert_eq!(s.quantile(0.5), Some(0.0));
        let p99 = s.quantile(0.99).unwrap();
        assert!((p99 - 100.0).abs() / 100.0 <= 0.05);
    }

    #[test]
    fn quantile_sketch_memory_is_logarithmic() {
        let mut s = QuantileSketch::new(0.01);
        for i in 1..=1_000_000u64 {
            s.record(i as f64);
        }
        // log_γ(1e6) ≈ 690 buckets at α=1%.
        assert!(s.memory_bytes() < 16 * 1024, "{} bytes", s.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "different accuracies")]
    fn quantile_sketch_merge_mismatch_rejected() {
        let mut a = QuantileSketch::new(0.01);
        let b = QuantileSketch::new(0.02);
        a.merge(&b);
    }
}
