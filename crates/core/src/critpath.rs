//! Flow latency attribution: where did each flow's latency go?
//!
//! §4 of the paper asks for telemetry that can attribute end-to-end latency
//! to individual segments of the heterogeneous intra-host network. The
//! engine's span traces ([`crate::trace::TraceReport`]) already record, for
//! every sampled transaction, the exact dwell at each capacity point; this
//! module turns those raw spans into answers:
//!
//! * [`FlowCritPath`] — a per-flow critical-path decomposition: for each
//!   (hop class, capacity point) slot the flow crossed, its queueing wait,
//!   service time, and share of the flow's total end-to-end latency. The
//!   hops of a span tile its latency exactly, so the decomposition
//!   conserves it: summed over slots it equals the summed e2e latency.
//! * [`BlameMatrix`] — the cross-flow aggregation: which capacity points
//!   account for what share of overall and tail (≥ p99 e2e) latency, with
//!   per-slot dwell quantiles from the existing DDSketch machinery.
//! * Flame-style exports — [`to_speedscope`] (the speedscope JSON file
//!   format, one sampled profile per flow) and
//!   [`CritPathReport::to_folded`] (Brendan Gregg's folded-stack text fed
//!   to `flamegraph.pl`), alongside the existing Chrome trace.
//!
//! Everything here is a pure function of the spans, so the output is
//! byte-deterministic: same trace in, identical JSON/text out, independent
//! of thread count or wall-clock.

use crate::sketch::QuantileSketch;
use crate::trace::{decode_hop_label, HopClass, TraceReport};
use serde::Serialize;
use std::collections::BTreeMap;

/// Relative-error parameter for the dwell/e2e DDSketches (1% bins).
const SKETCH_ALPHA: f64 = 0.01;

/// Identity of an attribution slot: a hop class plus the concrete capacity
/// point it was observed at (`None` for point-free hops such as the token
/// limiter and the propagation residual). Ordered by class code then point
/// so every aggregation below is deterministic.
type SlotKey = (u32, Option<u32>);

/// Human-readable slot label: `gmi@link3`, `socket-noc@noc0`, or the bare
/// class name for point-free hops. Unknown points render as `@pt{idx}`.
fn slot_label(class: Option<HopClass>, point: Option<u32>, point_names: &[String]) -> String {
    let base = class.map(HopClass::name).unwrap_or("unknown");
    match point {
        Some(p) => match point_names.get(p as usize) {
            Some(n) => format!("{base}@{n}"),
            None => format!("{base}@pt{p}"),
        },
        None => base.to_string(),
    }
}

/// Capacity-point names in engine point-index order (links by id, then
/// socket NoCs, then CXL ports). Matches the `link{l}` / `noc{s}` /
/// `cxl{c}` labels the metrics registry uses. Derived structurally from
/// the topology because telemetry only lists links that carry a channel.
pub fn point_names(topo: &chiplet_topology::Topology) -> Vec<String> {
    let spec = topo.spec();
    let mut v: Vec<String> = (0..topo.links().len())
        .map(|l| format!("link{l}"))
        .collect();
    v.extend((0..spec.socket_count).map(|sk| format!("noc{sk}")));
    if spec.cxl.is_some() {
        v.extend((0..topo.ccd_total()).map(|c| format!("cxl{c}")));
    }
    v
}

/// One slot of a flow's critical-path decomposition.
#[derive(Debug, Clone, Serialize)]
pub struct HopShare {
    /// Slot label (`class@point` or the bare class name).
    pub hop: String,
    /// Hop events the flow's sampled spans spent at this slot.
    pub count: u64,
    /// Total queueing wait, ns.
    pub wait_ns: f64,
    /// Total latency-contributing service, ns.
    pub service_ns: f64,
    /// Total dwell (wait + service), ns.
    pub total_ns: f64,
    /// Fraction of the flow's summed e2e latency spent here.
    pub share: f64,
}

/// A flow's critical-path decomposition over its sampled spans.
///
/// Invariant (latency conservation): `Σ hops[i].total_ns == e2e_total_ns`
/// up to float rounding, because every span's hops tile its e2e latency.
#[derive(Debug, Clone, Serialize)]
pub struct FlowCritPath {
    /// Flow id (the span group).
    pub flow: u32,
    /// Flow name, `flow{id}` when unnamed.
    pub name: String,
    /// Sampled spans attributed.
    pub spans: u64,
    /// Summed end-to-end latency over those spans, ns.
    pub e2e_total_ns: f64,
    /// Mean end-to-end latency, ns.
    pub mean_e2e_ns: f64,
    /// Slots in (class code, point) order.
    pub hops: Vec<HopShare>,
}

/// One row of the blame matrix: a capacity-point slot's share of overall
/// and tail latency across all flows.
#[derive(Debug, Clone, Serialize)]
pub struct BlameRow {
    /// Slot label (`class@point` or the bare class name).
    pub hop: String,
    /// Hop events observed at this slot.
    pub count: u64,
    /// Total dwell across all sampled spans, ns.
    pub total_ns: f64,
    /// Fraction of all spans' summed e2e latency spent here.
    pub share: f64,
    /// Dwell summed over tail spans only (e2e ≥ p99), ns.
    pub tail_total_ns: f64,
    /// Fraction of the tail spans' summed e2e latency spent here.
    pub tail_share: f64,
    /// Median per-hop dwell, ns (DDSketch, 1% relative error).
    pub p50_dwell_ns: f64,
    /// P99 per-hop dwell, ns (DDSketch, 1% relative error).
    pub p99_dwell_ns: f64,
}

/// The per-link blame matrix: which slots account for what share of p50
/// and p99 end-to-end latency, aggregated across every flow.
#[derive(Debug, Clone, Serialize)]
pub struct BlameMatrix {
    /// Sampled spans aggregated.
    pub spans: u64,
    /// Summed e2e latency over all spans, ns.
    pub e2e_total_ns: f64,
    /// Median e2e latency, ns (DDSketch).
    pub e2e_p50_ns: f64,
    /// P99 e2e latency, ns (DDSketch); the tail threshold.
    pub e2e_p99_ns: f64,
    /// Spans at or above the tail threshold.
    pub tail_spans: u64,
    /// Summed e2e latency over the tail spans, ns.
    pub tail_total_ns: f64,
    /// Slots, descending by total dwell (ties by slot key).
    pub rows: Vec<BlameRow>,
}

/// The full attribution report: per-flow critical paths plus the blame
/// matrix, with the sampling configuration that produced the spans.
#[derive(Debug, Clone, Serialize)]
pub struct CritPathReport {
    /// The configured 1-in-N sampling rate.
    pub sampling: u32,
    /// Sampled spans attributed.
    pub spans: u64,
    /// Samples dropped by the collector cap.
    pub dropped: u64,
    /// Per-flow decompositions, by flow id.
    pub flows: Vec<FlowCritPath>,
    /// The cross-flow blame matrix.
    pub blame: BlameMatrix,
}

#[derive(Default)]
struct SlotAcc {
    count: u64,
    wait: f64,
    service: f64,
    tail: f64,
}

impl CritPathReport {
    /// Attributes a trace: decomposes every sampled span into per-slot
    /// dwells, grouped per flow and aggregated into the blame matrix.
    pub fn from_trace(
        trace: &TraceReport,
        flow_names: &[String],
        point_names: &[String],
    ) -> CritPathReport {
        // Pass 1: the e2e sketch fixes the tail threshold.
        let mut e2e_sketch = QuantileSketch::new(SKETCH_ALPHA);
        for span in &trace.spans {
            e2e_sketch.record(span.e2e_ns);
        }
        let e2e_p50 = e2e_sketch.quantile(0.50).unwrap_or(0.0);
        let e2e_p99 = e2e_sketch.quantile(0.99).unwrap_or(0.0);

        // Pass 2: accumulate per-flow and cross-flow slot dwells.
        let mut flows: BTreeMap<u32, (u64, f64, BTreeMap<SlotKey, SlotAcc>)> = BTreeMap::new();
        let mut blame: BTreeMap<SlotKey, SlotAcc> = BTreeMap::new();
        let mut dwell_sketches: BTreeMap<SlotKey, QuantileSketch> = BTreeMap::new();
        let mut e2e_total = 0.0;
        let mut tail_spans = 0u64;
        let mut tail_total = 0.0;
        for span in &trace.spans {
            let in_tail = !trace.spans.is_empty() && span.e2e_ns >= e2e_p99;
            e2e_total += span.e2e_ns;
            if in_tail {
                tail_spans += 1;
                tail_total += span.e2e_ns;
            }
            let flow = flows.entry(span.group).or_default();
            flow.0 += 1;
            flow.1 += span.e2e_ns;
            for hop in &span.hops {
                let (_, point) = decode_hop_label(hop.label);
                let key: SlotKey = (hop.label & 0xff, point);
                let wait = hop.wait_ns();
                let service = hop.service_ns();
                for acc in [
                    flow.2.entry(key).or_default(),
                    blame.entry(key).or_default(),
                ] {
                    acc.count += 1;
                    acc.wait += wait;
                    acc.service += service;
                    if in_tail {
                        acc.tail += wait + service;
                    }
                }
                dwell_sketches
                    .entry(key)
                    .or_insert_with(|| QuantileSketch::new(SKETCH_ALPHA))
                    .record(hop.total_ns());
            }
        }

        let label = |key: &SlotKey| slot_label(HopClass::from_code(key.0), key.1, point_names);
        let flows: Vec<FlowCritPath> = flows
            .into_iter()
            .map(|(id, (n, e2e, slots))| FlowCritPath {
                flow: id,
                name: flow_names
                    .get(id as usize)
                    .cloned()
                    .unwrap_or_else(|| format!("flow{id}")),
                spans: n,
                e2e_total_ns: e2e,
                mean_e2e_ns: if n == 0 { 0.0 } else { e2e / n as f64 },
                hops: slots
                    .into_iter()
                    .map(|(key, acc)| HopShare {
                        hop: label(&key),
                        count: acc.count,
                        wait_ns: acc.wait,
                        service_ns: acc.service,
                        total_ns: acc.wait + acc.service,
                        share: if e2e > 0.0 {
                            (acc.wait + acc.service) / e2e
                        } else {
                            0.0
                        },
                    })
                    .collect(),
            })
            .collect();

        let mut rows: Vec<(SlotKey, BlameRow)> = blame
            .into_iter()
            .map(|(key, acc)| {
                let sketch = &dwell_sketches[&key];
                let row = BlameRow {
                    hop: label(&key),
                    count: acc.count,
                    total_ns: acc.wait + acc.service,
                    share: if e2e_total > 0.0 {
                        (acc.wait + acc.service) / e2e_total
                    } else {
                        0.0
                    },
                    tail_total_ns: acc.tail,
                    tail_share: if tail_total > 0.0 {
                        acc.tail / tail_total
                    } else {
                        0.0
                    },
                    p50_dwell_ns: sketch.quantile(0.50).unwrap_or(0.0),
                    p99_dwell_ns: sketch.quantile(0.99).unwrap_or(0.0),
                };
                (key, row)
            })
            .collect();
        rows.sort_by(|(ka, a), (kb, b)| b.total_ns.total_cmp(&a.total_ns).then_with(|| ka.cmp(kb)));

        CritPathReport {
            sampling: trace.sampling,
            spans: trace.spans.len() as u64,
            dropped: trace.dropped,
            flows,
            blame: BlameMatrix {
                spans: trace.spans.len() as u64,
                e2e_total_ns: e2e_total,
                e2e_p50_ns: e2e_p50,
                e2e_p99_ns: e2e_p99,
                tail_spans,
                tail_total_ns: tail_total,
                rows: rows.into_iter().map(|(_, r)| r).collect(),
            },
        }
    }

    /// Serializes the report to pretty JSON (byte-deterministic).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("critpath report is always serializable")
    }

    /// Fixed-width per-flow critical-path tables.
    pub fn flows_table(&self) -> String {
        let mut out = String::new();
        for f in &self.flows {
            out.push_str(&format!(
                "flow {} ({}): spans {}  mean-e2e-ns {:.2}\n",
                f.flow, f.name, f.spans, f.mean_e2e_ns
            ));
            out.push_str(&format!(
                "  {:<24} {:>8} {:>14} {:>14} {:>14} {:>8}\n",
                "hop", "count", "wait-ns", "svc-ns", "total-ns", "share"
            ));
            for h in &f.hops {
                out.push_str(&format!(
                    "  {:<24} {:>8} {:>14.2} {:>14.2} {:>14.2} {:>7.2}%\n",
                    h.hop,
                    h.count,
                    h.wait_ns,
                    h.service_ns,
                    h.total_ns,
                    h.share * 100.0,
                ));
            }
        }
        out.push_str(&format!(
            "spans: {}  dropped: {}  sampling: 1-in-{}\n",
            self.spans, self.dropped, self.sampling
        ));
        out
    }

    /// Fixed-width blame-matrix table, busiest slot first.
    pub fn blame_table(&self) -> String {
        let b = &self.blame;
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>8} {:>14} {:>8} {:>8} {:>12} {:>12}\n",
            "hop", "count", "total-ns", "share", "tail", "p50-dwell", "p99-dwell"
        ));
        for r in &b.rows {
            out.push_str(&format!(
                "{:<24} {:>8} {:>14.2} {:>7.2}% {:>7.2}% {:>12.2} {:>12.2}\n",
                r.hop,
                r.count,
                r.total_ns,
                r.share * 100.0,
                r.tail_share * 100.0,
                r.p50_dwell_ns,
                r.p99_dwell_ns,
            ));
        }
        out.push_str(&format!(
            "spans: {}  e2e-p50-ns: {:.2}  e2e-p99-ns: {:.2}  tail-spans: {}\n",
            b.spans, b.e2e_p50_ns, b.e2e_p99_ns, b.tail_spans
        ));
        out
    }

    /// Folded-stack flamegraph text: one `flow;hop;phase weight` line per
    /// slot (weight = dwell ns, rounded), lexically sorted — the input
    /// format of Brendan Gregg's `flamegraph.pl`.
    pub fn to_folded(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        for f in &self.flows {
            for h in &f.hops {
                for (phase, ns) in [("wait", h.wait_ns), ("service", h.service_ns)] {
                    let w = ns.round() as u64;
                    if w > 0 {
                        lines.push(format!("{};{};{} {}", f.name, h.hop, phase, w));
                    }
                }
            }
        }
        lines.sort_unstable();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }
}

/// Exports a trace in the speedscope JSON file format
/// (<https://www.speedscope.app/file-format-schema.json>): one *sampled*
/// profile per flow, where each sample is a `[slot, wait|service]` stack
/// weighted by its dwell in nanoseconds. Sampled profiles are used rather
/// than evented ones because spans from different lanes overlap in time.
pub fn to_speedscope(trace: &TraceReport, flow_names: &[String], point_names: &[String]) -> String {
    use serde_json::Value;

    fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Map(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    // Deterministic frame table: every observed slot in key order, then
    // the two leaf phases.
    let mut slots: BTreeMap<SlotKey, usize> = BTreeMap::new();
    for span in &trace.spans {
        for hop in &span.hops {
            let (_, point) = decode_hop_label(hop.label);
            let next = slots.len();
            slots.entry((hop.label & 0xff, point)).or_insert(next);
        }
    }
    let wait_frame = slots.len();
    let service_frame = slots.len() + 1;
    let mut frames: Vec<Value> = slots
        .keys()
        .map(|key| {
            let name = slot_label(HopClass::from_code(key.0), key.1, point_names);
            obj(vec![("name", Value::Str(name))])
        })
        .collect();
    frames.push(obj(vec![("name", Value::Str("wait".into()))]));
    frames.push(obj(vec![("name", Value::Str("service".into()))]));

    let mut groups: Vec<u32> = trace.spans.iter().map(|s| s.group).collect();
    groups.sort_unstable();
    groups.dedup();
    let profiles: Vec<Value> = groups
        .iter()
        .map(|&flow| {
            let mut samples: Vec<Value> = Vec::new();
            let mut weights: Vec<Value> = Vec::new();
            let mut end = 0.0f64;
            for span in trace.spans.iter().filter(|s| s.group == flow) {
                for hop in &span.hops {
                    let (_, point) = decode_hop_label(hop.label);
                    let slot = slots[&(hop.label & 0xff, point)] as u64;
                    for (leaf, ns) in [
                        (wait_frame, hop.wait_ns()),
                        (service_frame, hop.service_ns()),
                    ] {
                        if ns > 0.0 {
                            samples
                                .push(Value::Seq(vec![Value::U64(slot), Value::U64(leaf as u64)]));
                            weights.push(Value::F64(ns));
                            end += ns;
                        }
                    }
                }
            }
            let name = flow_names
                .get(flow as usize)
                .cloned()
                .unwrap_or_else(|| format!("flow{flow}"));
            obj(vec![
                ("type", Value::Str("sampled".into())),
                ("name", Value::Str(name)),
                ("unit", Value::Str("nanoseconds".into())),
                ("startValue", Value::F64(0.0)),
                ("endValue", Value::F64(end)),
                ("samples", Value::Seq(samples)),
                ("weights", Value::Seq(weights)),
            ])
        })
        .collect();

    let doc = obj(vec![
        (
            "$schema",
            Value::Str("https://www.speedscope.app/file-format-schema.json".into()),
        ),
        ("shared", obj(vec![("frames", Value::Seq(frames))])),
        ("profiles", Value::Seq(profiles)),
        ("exporter", Value::Str("chiplet-trace".into())),
        ("activeProfileIndex", Value::U64(0)),
    ]);
    serde_json::to_string(&doc).expect("speedscope doc is always serializable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::encode_hop_label;
    use chiplet_sim::stats::SpanCollector;

    fn two_flow_trace() -> TraceReport {
        let mut c = SpanCollector::new(8);
        // Flow 0: limiter wait + a pointed GMI hop + propagation.
        let h = c.start(0, 0, 0.0).unwrap();
        c.hop(h, HopClass::TrafficCtrl.code(), 0.0, 10.0, 10.0);
        c.hop(
            h,
            encode_hop_label(HopClass::Gmi, Some(2)),
            10.0,
            14.0,
            20.0,
        );
        c.hop(h, HopClass::Propagation.code(), 20.0, 20.0, 120.0);
        c.finish(h, 120.0, 120.0);
        // Flow 1: the same GMI point plus a different one.
        let h = c.start(1, 1, 0.0).unwrap();
        c.hop(h, encode_hop_label(HopClass::Gmi, Some(2)), 0.0, 0.0, 30.0);
        c.hop(
            h,
            encode_hop_label(HopClass::Gmi, Some(5)),
            30.0,
            35.0,
            50.0,
        );
        c.finish(h, 50.0, 50.0);
        let (spans, dropped) = c.into_parts();
        TraceReport::from_spans(4, spans, dropped)
    }

    fn names() -> (Vec<String>, Vec<String>) {
        let flows = vec!["alpha".to_string(), "beta".to_string()];
        let points = (0..8).map(|i| format!("link{i}")).collect();
        (flows, points)
    }

    #[test]
    fn flow_decomposition_conserves_latency() {
        let (flows, points) = names();
        let r = CritPathReport::from_trace(&two_flow_trace(), &flows, &points);
        assert_eq!(r.flows.len(), 2);
        for f in &r.flows {
            let hop_sum: f64 = f.hops.iter().map(|h| h.total_ns).sum();
            assert!((hop_sum - f.e2e_total_ns).abs() < 1e-9);
            let share_sum: f64 = f.hops.iter().map(|h| h.share).sum();
            assert!((share_sum - 1.0).abs() < 1e-9);
        }
        let alpha = &r.flows[0];
        assert_eq!(alpha.name, "alpha");
        assert_eq!(alpha.hops.len(), 3);
        assert_eq!(alpha.hops[1].hop, "gmi@link2");
    }

    #[test]
    fn blame_totals_equal_sum_over_flows() {
        let (flows, points) = names();
        let r = CritPathReport::from_trace(&two_flow_trace(), &flows, &points);
        let blame_total: f64 = r.blame.rows.iter().map(|row| row.total_ns).sum();
        assert!((blame_total - r.blame.e2e_total_ns).abs() < 1e-9);
        // The shared gmi@link2 slot aggregates across both flows.
        let shared = r
            .blame
            .rows
            .iter()
            .find(|row| row.hop == "gmi@link2")
            .unwrap();
        assert_eq!(shared.count, 2);
        assert!((shared.total_ns - 40.0).abs() < 1e-9);
        // Rows are sorted by descending dwell; propagation dominates here.
        assert_eq!(r.blame.rows[0].hop, "propagation");
    }

    #[test]
    fn report_json_is_deterministic() {
        let (flows, points) = names();
        let a = CritPathReport::from_trace(&two_flow_trace(), &flows, &points).to_json();
        let b = CritPathReport::from_trace(&two_flow_trace(), &flows, &points).to_json();
        assert_eq!(a, b);
        let doc: serde_json::Value = serde_json::from_str(&a).unwrap();
        assert!(doc.get("blame").is_some());
    }

    #[test]
    fn folded_output_is_sorted_and_integer_weighted() {
        let (flows, points) = names();
        let folded = CritPathReport::from_trace(&two_flow_trace(), &flows, &points).to_folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert!(!lines.is_empty());
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
        for line in &lines {
            let (stack, weight) = line.rsplit_once(' ').unwrap();
            assert_eq!(stack.split(';').count(), 3);
            weight.parse::<u64>().unwrap();
        }
        assert!(folded.contains("alpha;gmi@link2;service 6"));
    }

    #[test]
    fn speedscope_export_is_valid_and_weight_conserving() {
        let (flows, points) = names();
        let trace = two_flow_trace();
        let json = to_speedscope(&trace, &flows, &points);
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        let frames = doc
            .get("shared")
            .unwrap()
            .get("frames")
            .unwrap()
            .as_seq()
            .unwrap();
        // 4 slots + wait + service.
        assert_eq!(frames.len(), 6);
        let profiles = doc.get("profiles").unwrap().as_seq().unwrap();
        assert_eq!(profiles.len(), 2);
        for (p, expected_e2e) in profiles.iter().zip([120.0, 50.0]) {
            let weights = p.get("weights").unwrap().as_seq().unwrap();
            let sum: f64 = weights.iter().map(|w| w.as_f64().unwrap()).sum();
            assert!((sum - expected_e2e).abs() < 1e-9);
            assert_eq!(p.get("endValue").unwrap().as_f64(), Some(sum));
            let samples = p.get("samples").unwrap().as_seq().unwrap();
            assert_eq!(samples.len(), weights.len());
        }
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let r = CritPathReport::from_trace(&TraceReport::from_spans(1, Vec::new(), 0), &[], &[]);
        assert_eq!(r.spans, 0);
        assert!(r.flows.is_empty());
        assert!(r.blame.rows.is_empty());
        assert_eq!(r.to_folded(), "");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::trace::encode_hop_label;
    use chiplet_sim::stats::{HopEvent, TxnSpan};
    use proptest::prelude::*;

    /// Builds a span whose hops tile the e2e latency by construction.
    fn build_span(seq: u64, group: u32, hops: Vec<(u32, Option<u32>, u32, u32)>) -> TxnSpan {
        let mut t = 0.0f64;
        let hops: Vec<HopEvent> = hops
            .into_iter()
            .map(|(code, point, wait, service)| {
                let class = HopClass::from_code(code).unwrap();
                let enter = t;
                let start = enter + wait as f64;
                let end = start + service as f64;
                t = end;
                HopEvent {
                    label: encode_hop_label(class, point),
                    queue_enter_ns: enter,
                    service_start_ns: start,
                    service_end_ns: end,
                }
            })
            .collect();
        TxnSpan {
            seq,
            group,
            lane: 0,
            issue_ns: 0.0,
            end_ns: t,
            e2e_ns: t,
            hops,
        }
    }

    fn arb_trace() -> impl Strategy<Value = TraceReport> {
        let hop = (
            0u32..HopClass::ALL.len() as u32,
            prop::option::of(0u32..6),
            0u32..1000,
            0u32..1000,
        );
        prop::collection::vec((0u32..4, prop::collection::vec(hop, 1..6)), 0..24).prop_map(|raw| {
            let spans = raw
                .into_iter()
                .enumerate()
                .map(|(i, (group, hops))| build_span(i as u64, group, hops))
                .collect();
            TraceReport::from_spans(1, spans, 0)
        })
    }

    proptest! {
        /// Per-flow critical-path hop totals sum exactly to the flow's
        /// summed e2e latency — attribution never creates or loses time.
        #[test]
        fn flow_hop_shares_sum_to_e2e(trace in arb_trace()) {
            let r = CritPathReport::from_trace(&trace, &[], &[]);
            for f in &r.flows {
                let hop_sum: f64 = f.hops.iter().map(|h| h.total_ns).sum();
                prop_assert!((hop_sum - f.e2e_total_ns).abs() <= 1e-6 * f.e2e_total_ns.max(1.0));
                if f.e2e_total_ns > 0.0 {
                    let share_sum: f64 = f.hops.iter().map(|h| h.share).sum();
                    prop_assert!((share_sum - 1.0).abs() < 1e-9);
                }
            }
            let flow_total: f64 = r.flows.iter().map(|f| f.e2e_total_ns).sum();
            prop_assert!((flow_total - r.blame.e2e_total_ns).abs() <= 1e-6 * flow_total.max(1.0));
        }

        /// Blame-matrix per-slot totals equal the sum of the matching
        /// per-flow slot totals, and the matrix grand total equals the
        /// summed e2e latency.
        #[test]
        fn blame_totals_match_flow_totals(trace in arb_trace()) {
            let r = CritPathReport::from_trace(&trace, &[], &[]);
            let mut per_slot: std::collections::BTreeMap<String, f64> =
                std::collections::BTreeMap::new();
            for f in &r.flows {
                for h in &f.hops {
                    *per_slot.entry(h.hop.clone()).or_default() += h.total_ns;
                }
            }
            prop_assert_eq!(per_slot.len(), r.blame.rows.len());
            for row in &r.blame.rows {
                let flow_sum = per_slot[&row.hop];
                prop_assert!((row.total_ns - flow_sum).abs() <= 1e-6 * flow_sum.max(1.0));
            }
            let grand: f64 = r.blame.rows.iter().map(|row| row.total_ns).sum();
            prop_assert!((grand - r.blame.e2e_total_ns).abs() <= 1e-6 * grand.max(1.0));
        }
    }
}
