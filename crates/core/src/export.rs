//! Filesystem export: the `/sys/firmware/chiplet-net` + `/proc/chiplet-net`
//! layout the paper proposes (§4 #1).
//!
//! "We believe that a similar hardware abstraction for chiplet networks
//! (like /sys/firmware/chiplet-net) is essential. It not only presents an
//! architectural overview, but also provides runtime performance telemetry
//! statistics for each link and intermediate hop through /proc/chiplet-net."
//!
//! [`export_sysfs`] materializes exactly that under a caller-chosen root:
//!
//! ```text
//! <root>/sys/firmware/chiplet-net/platform        one-line platform name
//! <root>/sys/firmware/chiplet-net/descriptor.json the full structural doc
//! <root>/sys/firmware/chiplet-net/summary         human-readable counts
//! <root>/proc/chiplet-net/links/<id>              per-capacity-point counters
//! <root>/proc/chiplet-net/flows/<name>            per-flow statistics
//! <root>/proc/chiplet-net/matrix                  src dest bytes triples
//! ```

use std::fs;
use std::io;
use std::path::Path;

use chiplet_topology::descriptor::ChipletNetDescriptor;

use crate::telemetry::{CapacityPoint, TelemetryReport};

/// Writes the firmware descriptor and runtime telemetry as a sysfs/procfs
/// style tree under `root`. Existing files are overwritten.
pub fn export_sysfs(
    desc: &ChipletNetDescriptor,
    report: &TelemetryReport,
    root: &Path,
) -> io::Result<()> {
    let firmware = root.join("sys/firmware/chiplet-net");
    fs::create_dir_all(&firmware)?;
    fs::write(firmware.join("platform"), format!("{}\n", desc.platform))?;
    fs::write(firmware.join("descriptor.json"), desc.to_json())?;
    fs::write(
        firmware.join("summary"),
        format!(
            "platform: {}\nmicroarchitecture: {}\ncompute: {} CCD x {} CCX x {} cores\n\
             umcs: {}\ncxl-devices: {}\nnodes: {}\nlinks: {}\ncapacity-points: {}\n",
            desc.platform,
            desc.microarchitecture,
            desc.compute_shape.0,
            desc.compute_shape.1,
            desc.compute_shape.2,
            desc.umc_count,
            desc.cxl_device_count,
            desc.nodes.len(),
            desc.links.len(),
            desc.capacity_point_count(),
        ),
    )?;

    let proc = root.join("proc/chiplet-net");
    let links_dir = proc.join("links");
    fs::create_dir_all(&links_dir)?;
    for link in &report.links {
        let name = match link.point {
            CapacityPoint::Link { link, kind } => format!("link{link}-{kind:?}"),
            CapacityPoint::SocketNoc { socket } => format!("noc-socket{socket}"),
            CapacityPoint::CxlPort { ccd } => format!("cxl-port-ccd{ccd}"),
        };
        let body = format!(
            "read_bytes: {}\nread_admissions: {}\nread_utilization: {:.4}\n\
             read_mean_wait_ns: {:.2}\nread_max_wait_ns: {:.2}\n\
             write_bytes: {}\nwrite_admissions: {}\nwrite_utilization: {:.4}\n\
             write_mean_wait_ns: {:.2}\nwrite_max_wait_ns: {:.2}\n",
            link.read.bytes,
            link.read.admissions,
            link.read.utilization,
            link.read.mean_wait_ns,
            link.read.max_wait_ns,
            link.write.bytes,
            link.write.admissions,
            link.write.utilization,
            link.write.mean_wait_ns,
            link.write.max_wait_ns,
        );
        fs::write(links_dir.join(name), body)?;
    }

    let flows_dir = proc.join("flows");
    fs::create_dir_all(&flows_dir)?;
    for flow in &report.flows {
        let safe: String = flow
            .name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        let body = format!(
            "id: {}\nissued: {}\ncompleted: {}\nbytes: {}\nachieved_gb_s: {:.3}\n\
             mean_latency_ns: {:.2}\np999_latency_ns: {:.2}\nanalytic: {}\n",
            flow.id,
            flow.issued,
            flow.completed,
            flow.bytes,
            flow.achieved.as_gb_per_s(),
            flow.mean_latency_ns(),
            flow.p999_latency_ns(),
            flow.analytic,
        );
        fs::write(flows_dir.join(safe), body)?;
    }

    let mut matrix = String::from("# src dest bytes\n");
    for cell in &report.matrix {
        matrix.push_str(&format!("{} {} {}\n", cell.ccd, cell.dest, cell.bytes));
    }
    fs::write(proc.join("matrix"), matrix)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use crate::flow::{FlowSpec, Target};
    use chiplet_sim::SimTime;
    use chiplet_topology::{CcdId, PlatformSpec, Topology};

    fn unique_root(tag: &str) -> std::path::PathBuf {
        let root = std::env::temp_dir().join(format!(
            "chiplet-net-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn exports_the_full_tree() {
        let topo = Topology::build(&PlatformSpec::epyc_7302());
        let mut engine = Engine::new(&topo, EngineConfig::deterministic());
        engine.add_flow(
            FlowSpec::reads("probe", topo.cores_of_ccd(CcdId(0)).collect(), Target::all_dimms(&topo))
                .build(&topo),
        );
        let result = engine.run(SimTime::from_micros(15));
        let desc = ChipletNetDescriptor::from_topology(&topo);

        let root = unique_root("tree");
        export_sysfs(&desc, &result.telemetry, &root).unwrap();

        let platform =
            fs::read_to_string(root.join("sys/firmware/chiplet-net/platform")).unwrap();
        assert!(platform.contains("7302"));
        let summary = fs::read_to_string(root.join("sys/firmware/chiplet-net/summary")).unwrap();
        assert!(summary.contains("compute: 4 CCD x 2 CCX x 2 cores"));
        // Descriptor round-trips through the file.
        let json =
            fs::read_to_string(root.join("sys/firmware/chiplet-net/descriptor.json")).unwrap();
        let back = ChipletNetDescriptor::from_json(&json).unwrap();
        assert_eq!(back, desc);
        // One file per capacity point, one per flow, plus the matrix.
        let links = fs::read_dir(root.join("proc/chiplet-net/links")).unwrap().count();
        assert_eq!(links, result.telemetry.links.len());
        let flow =
            fs::read_to_string(root.join("proc/chiplet-net/flows/probe")).unwrap();
        assert!(flow.contains("achieved_gb_s"));
        let matrix = fs::read_to_string(root.join("proc/chiplet-net/matrix")).unwrap();
        assert!(matrix.lines().count() > 1);

        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn flow_names_are_sanitized() {
        let topo = Topology::build(&PlatformSpec::epyc_7302());
        let mut engine = Engine::new(&topo, EngineConfig::deterministic());
        engine.add_flow(
            FlowSpec::reads(
                "weird/name with spaces!",
                vec![chiplet_topology::CoreId(0)],
                Target::all_dimms(&topo),
            )
            .build(&topo),
        );
        let result = engine.run(SimTime::from_micros(10));
        let desc = ChipletNetDescriptor::from_topology(&topo);
        let root = unique_root("sanitize");
        export_sysfs(&desc, &result.telemetry, &root).unwrap();
        assert!(root
            .join("proc/chiplet-net/flows/weird_name_with_spaces_")
            .exists());
        let _ = fs::remove_dir_all(&root);
    }
}
