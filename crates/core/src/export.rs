//! Filesystem export: the `/sys/firmware/chiplet-net` + `/proc/chiplet-net`
//! layout the paper proposes (§4 #1).
//!
//! "We believe that a similar hardware abstraction for chiplet networks
//! (like /sys/firmware/chiplet-net) is essential. It not only presents an
//! architectural overview, but also provides runtime performance telemetry
//! statistics for each link and intermediate hop through /proc/chiplet-net."
//!
//! [`export_sysfs`] materializes exactly that under a caller-chosen root:
//!
//! ```text
//! <root>/sys/firmware/chiplet-net/platform        one-line platform name
//! <root>/sys/firmware/chiplet-net/descriptor.json the full structural doc
//! <root>/sys/firmware/chiplet-net/summary         human-readable counts
//! <root>/proc/chiplet-net/links/<id>/stats        per-capacity-point counters
//! <root>/proc/chiplet-net/links/<id>/trace        windowed time series (when
//!                                                 the run recorded traces)
//! <root>/proc/chiplet-net/flows/<name>            per-flow statistics
//! <root>/proc/chiplet-net/matrix                  src dest bytes triples
//! ```

use std::fs;
use std::io;
use std::path::Path;

use chiplet_topology::descriptor::ChipletNetDescriptor;

use crate::telemetry::{CapacityPoint, TelemetryReport};

/// Writes the firmware descriptor and runtime telemetry as a sysfs/procfs
/// style tree under `root`. Existing files are overwritten.
pub fn export_sysfs(
    desc: &ChipletNetDescriptor,
    report: &TelemetryReport,
    root: &Path,
) -> io::Result<()> {
    let firmware = root.join("sys/firmware/chiplet-net");
    fs::create_dir_all(&firmware)?;
    fs::write(firmware.join("platform"), format!("{}\n", desc.platform))?;
    fs::write(firmware.join("descriptor.json"), desc.to_json())?;
    fs::write(
        firmware.join("summary"),
        format!(
            "platform: {}\nmicroarchitecture: {}\ncompute: {} CCD x {} CCX x {} cores\n\
             umcs: {}\ncxl-devices: {}\nnodes: {}\nlinks: {}\ncapacity-points: {}\n",
            desc.platform,
            desc.microarchitecture,
            desc.compute_shape.0,
            desc.compute_shape.1,
            desc.compute_shape.2,
            desc.umc_count,
            desc.cxl_device_count,
            desc.nodes.len(),
            desc.links.len(),
            desc.capacity_point_count(),
        ),
    )?;

    let proc = root.join("proc/chiplet-net");
    let links_dir = proc.join("links");
    fs::create_dir_all(&links_dir)?;
    for link in &report.links {
        let name = match link.point {
            CapacityPoint::Link { link, kind } => format!("link{link}-{kind:?}"),
            CapacityPoint::SocketNoc { socket } => format!("noc-socket{socket}"),
            CapacityPoint::CxlPort { ccd } => format!("cxl-port-ccd{ccd}"),
        };
        let dir = links_dir.join(name);
        fs::create_dir_all(&dir)?;
        let body = format!(
            "read_bytes: {}\nread_admissions: {}\nread_utilization: {:.4}\n\
             read_mean_wait_ns: {:.2}\nread_max_wait_ns: {:.2}\n\
             write_bytes: {}\nwrite_admissions: {}\nwrite_utilization: {:.4}\n\
             write_mean_wait_ns: {:.2}\nwrite_max_wait_ns: {:.2}\n",
            link.read.bytes,
            link.read.admissions,
            link.read.utilization,
            link.read.mean_wait_ns,
            link.read.max_wait_ns,
            link.write.bytes,
            link.write.admissions,
            link.write.utilization,
            link.write.mean_wait_ns,
            link.write.max_wait_ns,
        );
        fs::write(dir.join("stats"), body)?;
        // Windowed per-point series, one line per window; present when the
        // run was configured with a trace window.
        if !link.read_trace.is_empty()
            || !link.write_trace.is_empty()
            || !link.depth_trace.is_empty()
        {
            let n = link
                .read_trace
                .len()
                .max(link.write_trace.len())
                .max(link.depth_trace.len());
            let mut trace =
                String::from("# at_ns read_gb_s write_gb_s depth_mean_ns depth_max_ns\n");
            for i in 0..n {
                let at = link
                    .read_trace
                    .get(i)
                    .map(|p| p.at)
                    .or_else(|| link.write_trace.get(i).map(|p| p.at))
                    .or_else(|| link.depth_trace.get(i).map(|p| p.at))
                    .expect("n bounded by a nonempty series");
                let r = link
                    .read_trace
                    .get(i)
                    .map_or(0.0, |p| p.bandwidth.as_gb_per_s());
                let w = link
                    .write_trace
                    .get(i)
                    .map_or(0.0, |p| p.bandwidth.as_gb_per_s());
                let (dm, dx) = link
                    .depth_trace
                    .get(i)
                    .map_or((0.0, 0.0), |p| (p.mean, p.max));
                trace.push_str(&format!(
                    "{} {:.6} {:.6} {:.3} {:.3}\n",
                    at.as_nanos(),
                    r,
                    w,
                    dm,
                    dx,
                ));
            }
            fs::write(dir.join("trace"), trace)?;
        }
    }

    let flows_dir = proc.join("flows");
    fs::create_dir_all(&flows_dir)?;
    for flow in &report.flows {
        let safe: String = flow
            .name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let body = format!(
            "id: {}\nissued: {}\ncompleted: {}\nbytes: {}\nachieved_gb_s: {:.3}\n\
             mean_latency_ns: {:.2}\np999_latency_ns: {:.2}\nanalytic: {}\n",
            flow.id,
            flow.issued,
            flow.completed,
            flow.bytes,
            flow.achieved.as_gb_per_s(),
            flow.mean_latency_ns(),
            flow.p999_latency_ns(),
            flow.analytic,
        );
        fs::write(flows_dir.join(safe), body)?;
    }

    let mut matrix = String::from("# src dest bytes\n");
    for cell in &report.matrix {
        matrix.push_str(&format!("{} {} {}\n", cell.ccd, cell.dest, cell.bytes));
    }
    fs::write(proc.join("matrix"), matrix)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use crate::flow::{FlowSpec, Target};
    use chiplet_sim::SimTime;
    use chiplet_topology::{CcdId, PlatformSpec, Topology};

    fn unique_root(tag: &str) -> std::path::PathBuf {
        let root =
            std::env::temp_dir().join(format!("chiplet-net-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn exports_the_full_tree() {
        let topo = Topology::build(&PlatformSpec::epyc_7302());
        let mut engine = Engine::new(&topo, EngineConfig::deterministic());
        engine.add_flow(
            FlowSpec::reads(
                "probe",
                topo.cores_of_ccd(CcdId(0)).collect(),
                Target::all_dimms(&topo),
            )
            .build(&topo),
        );
        let result = engine.run(SimTime::from_micros(15));
        let desc = ChipletNetDescriptor::from_topology(&topo);

        let root = unique_root("tree");
        export_sysfs(&desc, &result.telemetry, &root).unwrap();

        let platform = fs::read_to_string(root.join("sys/firmware/chiplet-net/platform")).unwrap();
        assert!(platform.contains("7302"));
        let summary = fs::read_to_string(root.join("sys/firmware/chiplet-net/summary")).unwrap();
        assert!(summary.contains("compute: 4 CCD x 2 CCX x 2 cores"));
        // Descriptor round-trips through the file.
        let json =
            fs::read_to_string(root.join("sys/firmware/chiplet-net/descriptor.json")).unwrap();
        let back = ChipletNetDescriptor::from_json(&json).unwrap();
        assert_eq!(back, desc);
        // One directory per capacity point, one file per flow, plus the
        // matrix.
        let links = fs::read_dir(root.join("proc/chiplet-net/links"))
            .unwrap()
            .count();
        assert_eq!(links, result.telemetry.links.len());
        let flow = fs::read_to_string(root.join("proc/chiplet-net/flows/probe")).unwrap();
        assert!(flow.contains("achieved_gb_s"));
        let matrix = fs::read_to_string(root.join("proc/chiplet-net/matrix")).unwrap();
        assert!(matrix.lines().count() > 1);

        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn exported_tree_round_trips() {
        // Write the tree, re-read every file, and check the counters
        // against the in-memory report — including the per-link trace
        // series recorded by `trace_window`.
        let topo = Topology::build(&PlatformSpec::epyc_7302());
        let cfg =
            EngineConfig::deterministic().with_trace(chiplet_sim::SimDuration::from_micros(2));
        let mut engine = Engine::new(&topo, cfg);
        engine.add_flow(
            FlowSpec::reads(
                "probe",
                topo.cores_of_ccd(CcdId(0)).collect(),
                Target::all_dimms(&topo),
            )
            .build(&topo),
        );
        let result = engine.run(SimTime::from_micros(20));
        let desc = ChipletNetDescriptor::from_topology(&topo);
        let root = unique_root("roundtrip");
        export_sysfs(&desc, &result.telemetry, &root).unwrap();

        // Descriptor round-trips.
        let json =
            fs::read_to_string(root.join("sys/firmware/chiplet-net/descriptor.json")).unwrap();
        assert_eq!(ChipletNetDescriptor::from_json(&json).unwrap(), desc);

        let parse_field = |body: &str, key: &str| -> f64 {
            body.lines()
                .find_map(|l| l.strip_prefix(&format!("{key}: ")))
                .unwrap_or_else(|| panic!("field {key} present"))
                .parse()
                .unwrap()
        };

        let links_dir = root.join("proc/chiplet-net/links");
        for link in &result.telemetry.links {
            let name = match link.point {
                CapacityPoint::Link { link, kind } => format!("link{link}-{kind:?}"),
                CapacityPoint::SocketNoc { socket } => format!("noc-socket{socket}"),
                CapacityPoint::CxlPort { ccd } => format!("cxl-port-ccd{ccd}"),
            };
            let stats = fs::read_to_string(links_dir.join(&name).join("stats")).unwrap();
            assert_eq!(parse_field(&stats, "read_bytes") as u64, link.read.bytes);
            assert_eq!(
                parse_field(&stats, "read_admissions") as u64,
                link.read.admissions
            );
            assert_eq!(parse_field(&stats, "write_bytes") as u64, link.write.bytes);
            assert!((parse_field(&stats, "read_utilization") - link.read.utilization).abs() < 1e-3);
            // Tracing was on: every capacity point has a series file with
            // one line per window plus the header.
            let trace = fs::read_to_string(links_dir.join(&name).join("trace")).unwrap();
            let data: Vec<&str> = trace.lines().filter(|l| !l.starts_with('#')).collect();
            assert_eq!(data.len(), link.read_trace.len());
            // First window is stamped at t = 0 and its bandwidth matches.
            let first: Vec<f64> = data[0]
                .split_whitespace()
                .map(|t| t.parse().unwrap())
                .collect();
            assert_eq!(first[0], 0.0);
            assert!((first[1] - link.read_trace[0].bandwidth.as_gb_per_s()).abs() < 1e-3);
            assert!((first[4] - link.depth_trace[0].max).abs() < 1e-2);
        }

        // Per-flow counters round-trip.
        for flow in &result.telemetry.flows {
            let body =
                fs::read_to_string(root.join("proc/chiplet-net/flows").join(&flow.name)).unwrap();
            assert_eq!(parse_field(&body, "completed") as u64, flow.completed);
            assert_eq!(parse_field(&body, "bytes") as u64, flow.bytes);
            assert!((parse_field(&body, "mean_latency_ns") - flow.mean_latency_ns()).abs() < 0.5);
        }

        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn flow_names_are_sanitized() {
        let topo = Topology::build(&PlatformSpec::epyc_7302());
        let mut engine = Engine::new(&topo, EngineConfig::deterministic());
        engine.add_flow(
            FlowSpec::reads(
                "weird/name with spaces!",
                vec![chiplet_topology::CoreId(0)],
                Target::all_dimms(&topo),
            )
            .build(&topo),
        );
        let result = engine.run(SimTime::from_micros(10));
        let desc = ChipletNetDescriptor::from_topology(&topo);
        let root = unique_root("sanitize");
        export_sysfs(&desc, &result.telemetry, &root).unwrap();
        assert!(root
            .join("proc/chiplet-net/flows/weird_name_with_spaces_")
            .exists());
        let _ = fs::remove_dir_all(&root);
    }
}
