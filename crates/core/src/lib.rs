//! # chiplet-net
//!
//! The server chiplet networking stack — the system layer the paper argues
//! for ("our community lacks such a system layer and the capabilities it
//! would provide", §2.3), built over a transaction-level simulation of the
//! chiplet SoC.
//!
//! ## What lives here
//!
//! * [`flow`] — the **communication flow abstraction** (Implication #4): a
//!   named stream of memory/device transactions from a set of cores to a
//!   memory or CXL target, with operation kind, access pattern, working set,
//!   and offered load.
//! * [`engine`] — the discrete-event **engine**: flows issue cacheline
//!   transactions under per-core MLP budgets and token-based chiplet
//!   limiters; transactions traverse the topology's capacity points (CCX
//!   limiter link, GMI, socket NoC, UMC channel, P-Link) as FIFO bandwidth
//!   servers; latency, throughput, and interference *emerge* from the
//!   queueing dynamics.
//! * [`telemetry`] — per-link and per-flow runtime statistics: the
//!   `/proc/chiplet-net` analog of the paper's §4 #1.
//! * [`trace`] — span-level hop tracing (§4 #5): sampled transactions
//!   record timestamped events at every capacity point they cross; the
//!   report breaks latency down by hop class and exports Chrome
//!   trace-event JSON for Perfetto.
//! * [`critpath`] — **latency attribution** over those spans: per-flow
//!   critical-path decompositions, the cross-flow blame matrix (which
//!   capacity points own what share of p50/p99 e2e latency), and
//!   speedscope / folded-flamegraph exports.
//! * [`traffic`] — the **global software traffic manager**: pluggable
//!   policies (hardware default sender-driven, max-min fair, weighted fair,
//!   static rate caps) enforced by pacing flows at the source.
//! * [`bdp`] — runtime **bandwidth-delay product monitoring** (Implication
//!   #3): per-flow BDP estimates from achieved bandwidth × observed latency.
//! * [`matrix`] — the **intra-server traffic matrix** (§3.3): ground truth
//!   from the engine plus a gravity-model estimator that reconstructs it
//!   from link counters alone (network-tomography style).
//! * [`sketch`] — probabilistic profiling structures (§4 #5): Count-Min
//!   sketch and SpaceSaving heavy hitters for bounded-memory per-flow
//!   telemetry.
//! * [`metrics`] — the unified **metrics registry** (§4 #5's exposition
//!   half): counters, gauges, and windowed quantile-sketch histograms with
//!   label sets, fed by every engine and the sweep runner, encoded as
//!   OpenMetrics text.
//! * [`dse`] — **design-space exploration**: a deterministic candidate
//!   generator over platform axes (CCD count, NoC grid, link-capacity
//!   scales, CXL attach points), an analytical estimator ~1000x cheaper
//!   than a DES run, Pareto-frontier extraction, and frontier escalation
//!   to full event-engine runs through the content-cached sweep runner.
//! * [`scenario`] — the **declarative scenario layer**: experiments as
//!   JSON-serializable [`ScenarioSpec`]s run through a [`Backend`] trait by
//!   either this crate's event engine or `chiplet_fluid`'s fluid sim, both
//!   producing a common [`ScenarioReport`]; a [`ScenarioRegistry`] names the
//!   built-in paper scenarios.
//!
//! ## Quick start
//!
//! ```
//! use chiplet_net::engine::{Engine, EngineConfig};
//! use chiplet_net::flow::{FlowSpec, Target};
//! use chiplet_mem::{OpKind, Pattern};
//! use chiplet_sim::{Bandwidth, ByteSize, SimTime};
//! use chiplet_topology::{CoreId, PlatformSpec, Topology};
//!
//! let topo = Topology::build(&PlatformSpec::epyc_7302());
//! let mut engine = Engine::new(&topo, EngineConfig::default());
//! engine.add_flow(
//!     FlowSpec::reads("probe", vec![CoreId(0)], Target::all_dimms(&topo))
//!         .working_set(ByteSize::from_gib(1))
//!         .build(&topo),
//! );
//! let result = engine.run(SimTime::from_micros(50));
//! let flow = &result.flows[0];
//! assert!(flow.achieved.as_gb_per_s() > 10.0); // ~14.9 GB/s per Table 3
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bdp;
pub mod critpath;
pub mod dse;
pub mod engine;
pub mod export;
pub mod flow;
pub mod matrix;
pub mod metrics;
pub mod profiler;
pub mod scenario;
pub mod sketch;
pub mod telemetry;
pub mod trace;
pub mod traffic;

pub use bdp::BdpMonitor;
pub use critpath::{BlameMatrix, CritPathReport, FlowCritPath};
pub use dse::{DseAxis, DseOutcome, DseRunner, DseSpec, DseStats, FrontierEntry};
pub use engine::{
    capture_parallel_fallbacks, take_parallel_fallbacks, Engine, EngineConfig, ParallelFallback,
    RunResult,
};
pub use export::export_sysfs;
pub use flow::{FlowId, FlowSpec, Target};
pub use matrix::TrafficMatrix;
pub use metrics::{
    describe_serve_metrics, lint_openmetrics, parse_openmetrics, MetricKind, MetricsRegistry,
    WindowedSketch,
};
pub use profiler::{ProfileReport, Profiler};
pub use scenario::{
    Backend, EventEngineBackend, FluidBackend, ScenarioRegistry, ScenarioReport, ScenarioSpec,
};
pub use telemetry::TelemetryReport;
pub use trace::{HopClass, TraceReport};
pub use traffic::TrafficPolicy;
