//! The communication-flow abstraction.
//!
//! Implication #4 of the paper: "it will be valuable to introduce the
//! communication flow abstraction, materialize it in a global software-based
//! traffic manager, and expose it to the chiplet network." A [`FlowSpec`]
//! is that abstraction: a named, long-lived stream of transactions between
//! a set of cores and a memory or device target, with enough metadata
//! (operation, pattern, working set, offered load, lifetime) for the
//! traffic manager to reason about it.

use chiplet_mem::{OpKind, Pattern};
use chiplet_sim::{Bandwidth, ByteSize, DemandSchedule, SimTime};
use chiplet_topology::{CoreId, DimmId, Topology};
use serde::{Deserialize, Serialize};

/// A flow's identity within one engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId(pub u32);

impl core::fmt::Display for FlowId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "flow{}", self.0)
    }
}

/// What a flow targets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Target {
    /// A set of DIMMs, accessed with cacheline interleaving across the set.
    Dimms(Vec<DimmId>),
    /// A CXL memory device, by index.
    Cxl(u32),
}

impl Target {
    /// Every DIMM of the platform (the NPS1 interleave set).
    pub fn all_dimms(topo: &Topology) -> Target {
        Target::Dimms(topo.dimm_ids().collect())
    }

    /// A single DIMM.
    pub fn dimm(d: DimmId) -> Target {
        Target::Dimms(vec![d])
    }

    /// True when the target is a CXL device.
    pub fn is_cxl(&self) -> bool {
        matches!(self, Target::Cxl(_))
    }
}

/// A fully specified flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Human-readable name (appears in telemetry).
    pub name: String,
    /// Issuing cores; the offered load is split evenly among them. Empty
    /// for device-sourced (DMA) flows.
    pub cores: Vec<CoreId>,
    /// Issuing NIC for DMA flows (§4 #3's fused stack); mutually exclusive
    /// with `cores`.
    #[serde(default)]
    pub nic: Option<u32>,
    /// Destination.
    pub target: Target,
    /// Operation kind.
    pub op: OpKind,
    /// Spatial pattern.
    pub pattern: Pattern,
    /// Working-set size (decides cache residency).
    pub working_set: ByteSize,
    /// Total offered load across all cores; `None` = unthrottled (issue as
    /// fast as MLP allows — the paper's maximum-bandwidth mode).
    pub offered: Option<Bandwidth>,
    /// Time-varying offered load; when present it overrides `offered`.
    /// Schedule times are absolute simulation times, and a zero-demand
    /// piece pauses the flow until the next piece.
    #[serde(default)]
    pub demand: Option<DemandSchedule>,
    /// When the flow starts issuing.
    pub start: SimTime,
    /// When the flow stops issuing; `None` = until the run's horizon.
    pub stop: Option<SimTime>,
}

/// Builder for [`FlowSpec`] with sensible defaults.
#[derive(Debug, Clone)]
pub struct FlowBuilder {
    spec: FlowSpec,
}

impl FlowSpec {
    /// Starts building a read flow (sequential, memory-sized working set).
    pub fn reads(name: &str, cores: Vec<CoreId>, target: Target) -> FlowBuilder {
        FlowBuilder::new(name, cores, target, OpKind::Read)
    }

    /// Starts building a non-temporal write flow.
    pub fn writes(name: &str, cores: Vec<CoreId>, target: Target) -> FlowBuilder {
        FlowBuilder::new(name, cores, target, OpKind::WriteNonTemporal)
    }

    /// Starts building a pointer-chase (latency probe) flow.
    pub fn pointer_chase(name: &str, core: CoreId, target: Target) -> FlowBuilder {
        let mut b = FlowBuilder::new(name, vec![core], target, OpKind::Read);
        b.spec.pattern = Pattern::PointerChase;
        b
    }

    /// Starts building a NIC DMA-write flow (RX path: the device pushes
    /// packet data into memory).
    pub fn nic_dma_write(name: &str, nic: u32, target: Target) -> FlowBuilder {
        let mut b = FlowBuilder::new(name, Vec::new(), target, OpKind::WriteNonTemporal);
        b.spec.nic = Some(nic);
        b
    }

    /// Starts building a NIC DMA-read flow (TX path: the device pulls
    /// payloads from memory).
    pub fn nic_dma_read(name: &str, nic: u32, target: Target) -> FlowBuilder {
        let mut b = FlowBuilder::new(name, Vec::new(), target, OpKind::Read);
        b.spec.nic = Some(nic);
        b
    }

    /// Number of issuing engines: cores, or one DMA engine.
    pub fn issuer_count(&self) -> usize {
        if self.nic.is_some() {
            1
        } else {
            self.cores.len()
        }
    }

    /// The effective stop time given a run horizon.
    pub fn stop_or(&self, horizon: SimTime) -> SimTime {
        self.stop.unwrap_or(horizon).min(horizon)
    }

    /// Offered load per issuing engine, when throttled.
    pub fn offered_per_core(&self) -> Option<Bandwidth> {
        self.offered.map(|total| {
            Bandwidth::from_bytes_per_s(total.as_bytes_per_s() / self.issuer_count() as f64)
        })
    }

    /// The effective total demand at time `t`: the schedule when present,
    /// otherwise the constant `offered` load.
    pub fn demand_at(&self, t: SimTime) -> Option<Bandwidth> {
        match &self.demand {
            Some(s) => s.at(t),
            None => self.offered,
        }
    }

    /// The effective per-issuer demand at time `t`.
    pub fn demand_per_issuer_at(&self, t: SimTime) -> Option<Bandwidth> {
        self.demand_at(t).map(|total| {
            Bandwidth::from_bytes_per_s(total.as_bytes_per_s() / self.issuer_count() as f64)
        })
    }

    /// The largest demand the flow ever offers (`None` = unthrottled at
    /// some point); sizes the in-flight budget.
    pub fn peak_demand(&self) -> Option<Bandwidth> {
        match &self.demand {
            Some(s) => s.peak(),
            None => self.offered,
        }
    }
}

impl FlowBuilder {
    fn new(name: &str, cores: Vec<CoreId>, target: Target, op: OpKind) -> Self {
        FlowBuilder {
            spec: FlowSpec {
                name: name.to_string(),
                cores,
                nic: None,
                target,
                op,
                pattern: Pattern::Sequential,
                working_set: ByteSize::from_gib(1),
                offered: None,
                demand: None,
                start: SimTime::ZERO,
                stop: None,
            },
        }
    }

    /// Sets the access pattern.
    pub fn pattern(mut self, pattern: Pattern) -> Self {
        self.spec.pattern = pattern;
        self
    }

    /// Sets the working-set size.
    pub fn working_set(mut self, ws: ByteSize) -> Self {
        self.spec.working_set = ws;
        self
    }

    /// Sets the operation kind.
    pub fn op(mut self, op: OpKind) -> Self {
        self.spec.op = op;
        self
    }

    /// Throttles the flow to a total offered load.
    pub fn offered(mut self, bw: Bandwidth) -> Self {
        self.spec.offered = Some(bw);
        self
    }

    /// Gives the flow a time-varying demand schedule (overrides `offered`).
    pub fn demand(mut self, schedule: DemandSchedule) -> Self {
        self.spec.demand = Some(schedule);
        self
    }

    /// Sets the start time.
    pub fn start(mut self, at: SimTime) -> Self {
        self.spec.start = at;
        self
    }

    /// Sets the stop time.
    pub fn stop(mut self, at: SimTime) -> Self {
        self.spec.stop = Some(at);
        self
    }

    /// Validates against a topology and finishes.
    ///
    /// # Panics
    ///
    /// Panics on an empty core set, an empty DIMM set, out-of-range ids, or
    /// a CXL target on a platform without CXL.
    pub fn build(self, topo: &Topology) -> FlowSpec {
        let spec = self.spec;
        if let Some(nic) = spec.nic {
            assert!(
                spec.cores.is_empty(),
                "flow '{}' cannot have both cores and a NIC source",
                spec.name
            );
            assert!(
                nic < topo.nic_count(),
                "flow '{}': NIC {nic} not present on {}",
                spec.name,
                topo.spec().name
            );
            assert!(
                matches!(spec.target, Target::Dimms(_)),
                "flow '{}': NIC DMA targets memory, not CXL",
                spec.name
            );
            assert!(
                spec.op != OpKind::WriteTemporal,
                "flow '{}': DMA writes are non-temporal",
                spec.name
            );
        } else {
            assert!(!spec.cores.is_empty(), "flow '{}' has no cores", spec.name);
        }
        for c in &spec.cores {
            assert!(
                c.0 < topo.core_count(),
                "flow '{}': core {c} out of range",
                spec.name
            );
        }
        match &spec.target {
            Target::Dimms(ds) => {
                assert!(!ds.is_empty(), "flow '{}' has no target DIMMs", spec.name);
                for d in ds {
                    assert!(
                        d.0 < topo.dimm_count(),
                        "flow '{}': DIMM {d} out of range",
                        spec.name
                    );
                }
            }
            Target::Cxl(dev) => {
                assert!(
                    *dev < topo.cxl_device_count(),
                    "flow '{}': CXL device {dev} not present on {}",
                    spec.name,
                    topo.spec().name
                );
            }
        }
        if let Some(stop) = spec.stop {
            assert!(
                stop >= spec.start,
                "flow '{}' stops before start",
                spec.name
            );
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_topology::PlatformSpec;

    fn topo() -> Topology {
        Topology::build(&PlatformSpec::epyc_9634())
    }

    #[test]
    fn builder_defaults() {
        let t = topo();
        let f = FlowSpec::reads("r", vec![CoreId(0)], Target::all_dimms(&t)).build(&t);
        assert_eq!(f.op, OpKind::Read);
        assert_eq!(f.pattern, Pattern::Sequential);
        assert!(f.offered.is_none());
        assert_eq!(f.start, SimTime::ZERO);
    }

    #[test]
    fn per_core_offered_split() {
        let t = topo();
        let f = FlowSpec::reads("r", vec![CoreId(0), CoreId(1)], Target::all_dimms(&t))
            .offered(Bandwidth::from_gb_per_s(10.0))
            .build(&t);
        let per = f.offered_per_core().unwrap();
        assert!((per.as_gb_per_s() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn pointer_chase_sets_pattern() {
        let t = topo();
        let f = FlowSpec::pointer_chase("p", CoreId(3), Target::dimm(DimmId(0))).build(&t);
        assert_eq!(f.pattern, Pattern::PointerChase);
        assert_eq!(f.cores.len(), 1);
    }

    #[test]
    fn stop_clamps_to_horizon() {
        let t = topo();
        let f = FlowSpec::reads("r", vec![CoreId(0)], Target::all_dimms(&t))
            .stop(SimTime::from_micros(100))
            .build(&t);
        assert_eq!(
            f.stop_or(SimTime::from_micros(50)),
            SimTime::from_micros(50)
        );
        assert_eq!(
            f.stop_or(SimTime::from_micros(200)),
            SimTime::from_micros(100)
        );
    }

    #[test]
    #[should_panic(expected = "CXL device 0 not present")]
    fn cxl_on_7302_rejected() {
        let t = Topology::build(&PlatformSpec::epyc_7302());
        let _ = FlowSpec::reads("r", vec![CoreId(0)], Target::Cxl(0)).build(&t);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_rejected() {
        let t = topo();
        let _ = FlowSpec::reads("r", vec![CoreId(999)], Target::all_dimms(&t)).build(&t);
    }

    #[test]
    fn cxl_target_on_9634_ok() {
        let t = topo();
        let f = FlowSpec::reads("r", vec![CoreId(0)], Target::Cxl(2)).build(&t);
        assert!(f.target.is_cxl());
    }
}
