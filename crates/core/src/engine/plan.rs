//! Stage plans: precompiled transaction itineraries.
//!
//! A transaction does not walk every graph node — only the *capacity
//! points* along its route contend. A [`StagePlan`] is the precompiled
//! sequence of those points for one (core, destination) pair, plus the
//! route's unloaded latency and limiter coordinates. Plans are built once
//! per flow, so the hot path is array walks.

use chiplet_fabric::FlitFraming;
use chiplet_sim::ByteSize;
use chiplet_topology::{CoreId, DimmId, LinkKind, Topology};

/// A capacity point a transaction crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageRef {
    /// A topology link's directional channel.
    Link(u32),
    /// A socket's NoC routing capacity, by socket index.
    SocketNoc(u32),
    /// The per-CCD CXL port capacity.
    CxlPort(u32),
}

/// One step of a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stage {
    /// Which capacity point.
    pub point: StageRef,
    /// Wire bytes this transaction occupies at the point (payload for
    /// coherent links; FLIT-framed for the CXL serial path).
    pub bytes: u64,
    /// Whether memory-device service variability applies here (the UMC
    /// channel for DRAM, the P-Link aggregate for CXL).
    pub device: bool,
}

/// A compiled itinerary for one (core, destination) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct StagePlan {
    /// Capacity points in traversal order.
    pub stages: Vec<Stage>,
    /// Unloaded end-to-end latency, ns.
    pub unloaded_ns: f64,
    /// Socket-wide CCX index (first limiter).
    pub ccx: u32,
    /// CCD index (second limiter, when the platform has one).
    pub ccd: u32,
    /// Destination for traffic-matrix accounting: UMC index, or
    /// `umc_count + device` for CXL.
    pub matrix_dest: u32,
    /// True for CXL destinations.
    pub is_cxl: bool,
    /// Whether the source passes the chiplet token limiters (false for
    /// device DMA engines, which sit on the I/O die past them).
    pub limiters: bool,
}

impl StagePlan {
    /// Compiles the plan for a core→DIMM route. Remote (other-socket)
    /// routes cross the xGMI fabric and both sockets' NoCs.
    pub fn to_dimm(topo: &Topology, core: CoreId, dimm: DimmId) -> StagePlan {
        let route = topo.route_core_to_dimm(core, dimm);
        let home_socket = topo.socket_of_core(core);
        let mut stages = Vec::with_capacity(7);
        for link_id in route.link_sequence() {
            let link = topo.link(link_id);
            let has_cap = link.read_cap.is_some() || link.write_cap.is_some();
            if has_cap {
                let device = link.kind == LinkKind::MemChannel;
                stages.push(Stage {
                    point: StageRef::Link(link_id.0),
                    bytes: ByteSize::CACHELINE.as_bytes(),
                    device,
                });
            }
            // The socket NoC capacity applies once the request enters an
            // I/O die: the home die right after the GMI crossing, the
            // remote die right after the xGMI crossing.
            let entered_noc = match link.kind {
                LinkKind::Gmi => Some(home_socket),
                LinkKind::Xgmi => Some(1 - home_socket),
                _ => None,
            };
            if let Some(socket) = entered_noc {
                stages.push(Stage {
                    point: StageRef::SocketNoc(socket),
                    bytes: ByteSize::CACHELINE.as_bytes(),
                    device: false,
                });
            }
        }
        let ccd = topo.ccd_of_core(core);
        StagePlan {
            stages,
            unloaded_ns: route.latency_ns,
            ccx: core.0 / topo.spec().cores_per_ccx,
            ccd: ccd.0,
            matrix_dest: dimm.0,
            is_cxl: false,
            limiters: true,
        }
    }

    /// Compiles the plan for a NIC-DMA→DIMM route (§4 #3). The DMA engine
    /// sits on the I/O die: no CCX/CCD limiters, but the PCIe lane, the
    /// socket NoC, and the UMC channel all apply.
    pub fn nic_to_dimm(topo: &Topology, nic: u32, dimm: DimmId) -> StagePlan {
        let route = topo
            .route_nic_to_dimm(nic, dimm)
            .expect("platform has the NIC");
        let mut stages = Vec::with_capacity(4);
        for link_id in route.link_sequence() {
            let link = topo.link(link_id);
            let has_cap = link.read_cap.is_some() || link.write_cap.is_some();
            if has_cap {
                stages.push(Stage {
                    point: StageRef::Link(link_id.0),
                    bytes: ByteSize::CACHELINE.as_bytes(),
                    device: link.kind == LinkKind::MemChannel,
                });
            }
            // Entering the I/O die from the hub side (NICs live on socket 0).
            if link.kind == LinkKind::PcieLane {
                stages.push(Stage {
                    point: StageRef::SocketNoc(0),
                    bytes: ByteSize::CACHELINE.as_bytes(),
                    device: false,
                });
            }
            if link.kind == LinkKind::Xgmi {
                stages.push(Stage {
                    point: StageRef::SocketNoc(1),
                    bytes: ByteSize::CACHELINE.as_bytes(),
                    device: false,
                });
            }
        }
        StagePlan {
            stages,
            unloaded_ns: route.latency_ns,
            ccx: u32::MAX,
            ccd: u32::MAX,
            matrix_dest: dimm.0,
            is_cxl: false,
            limiters: false,
        }
    }

    /// Compiles the plan for a core→CXL-device route.
    ///
    /// # Panics
    ///
    /// Panics when the platform has no such device.
    pub fn to_cxl(topo: &Topology, core: CoreId, device: u32) -> StagePlan {
        let route = topo
            .route_core_to_cxl(core, device)
            .expect("platform has the CXL device");
        let spec = topo.spec();
        let cxl = spec.cxl.as_ref().expect("CXL spec present");
        let framing = FlitFraming::for_flit_size(cxl.flit_bytes);
        let wire = framing.wire_bytes(ByteSize::CACHELINE.as_bytes());

        let ccd = topo.ccd_of_core(core);
        let home_socket = topo.socket_of_core(core);
        let mut stages = Vec::with_capacity(7);
        let mut inserted_noc = false;
        for link_id in route.link_sequence() {
            let link = topo.link(link_id);
            match link.kind {
                LinkKind::HubRc => {
                    // The serialized P-Link aggregate: FLIT framing applies,
                    // and CXL media variability is charged here.
                    stages.push(Stage {
                        point: StageRef::Link(link_id.0),
                        bytes: wire,
                        device: true,
                    });
                }
                _ if link.read_cap.is_some() || link.write_cap.is_some() => {
                    stages.push(Stage {
                        point: StageRef::Link(link_id.0),
                        bytes: ByteSize::CACHELINE.as_bytes(),
                        device: false,
                    });
                }
                _ => {}
            }
            if link.kind == LinkKind::Gmi && !inserted_noc {
                stages.push(Stage {
                    point: StageRef::SocketNoc(home_socket),
                    bytes: ByteSize::CACHELINE.as_bytes(),
                    device: false,
                });
                // The per-CCD CXL port models the Table 3 per-chiplet CXL
                // ceilings (a compute chiplet reaches ~24/15 GB/s to CXL,
                // well under its GMI capacity).
                stages.push(Stage {
                    point: StageRef::CxlPort(ccd.0),
                    bytes: ByteSize::CACHELINE.as_bytes(),
                    device: false,
                });
                inserted_noc = true;
            }
            if link.kind == LinkKind::Xgmi {
                stages.push(Stage {
                    point: StageRef::SocketNoc(1 - home_socket),
                    bytes: ByteSize::CACHELINE.as_bytes(),
                    device: false,
                });
            }
        }
        StagePlan {
            stages,
            unloaded_ns: route.latency_ns,
            ccx: core.0 / spec.cores_per_ccx,
            ccd: ccd.0,
            matrix_dest: spec.mem.umc_count + device,
            is_cxl: true,
            limiters: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_topology::{DimmPosition, PlatformSpec};

    #[test]
    fn dimm_plan_has_expected_stages() {
        let topo = Topology::build(&PlatformSpec::epyc_9634());
        let plan = StagePlan::to_dimm(&topo, CoreId(0), DimmId(0));
        // CoreL3, L3Tc, Gmi, SocketNoc, MemChannel.
        assert_eq!(plan.stages.len(), 5);
        assert!(matches!(plan.stages[2].point, StageRef::Link(_)));
        assert_eq!(plan.stages[3].point, StageRef::SocketNoc(0));
        // Exactly one device stage, and it is last.
        let device_stages: Vec<usize> = plan
            .stages
            .iter()
            .enumerate()
            .filter(|(_, s)| s.device)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(device_stages, vec![plan.stages.len() - 1]);
        assert!(!plan.is_cxl);
        assert_eq!(plan.matrix_dest, 0);
    }

    #[test]
    fn dimm_plan_latency_matches_position() {
        let spec = PlatformSpec::epyc_7302();
        let topo = Topology::build(&spec);
        for pos in DimmPosition::ALL {
            let dimm = topo.dimm_at_position(CoreId(0), pos).unwrap();
            let plan = StagePlan::to_dimm(&topo, CoreId(0), dimm);
            assert!((plan.unloaded_ns - spec.dram_latency_ns(pos)).abs() < 1e-9);
        }
    }

    #[test]
    fn cxl_plan_uses_flit_framing() {
        let spec = PlatformSpec::epyc_9634();
        let topo = Topology::build(&spec);
        let plan = StagePlan::to_cxl(&topo, CoreId(0), 0);
        assert!(plan.is_cxl);
        assert!((plan.unloaded_ns - spec.cxl_latency_ns().unwrap()).abs() < 1e-9);
        // The P-Link stage carries 68 wire bytes per 64 B line.
        let plink_stage = plan.stages.iter().find(|s| s.device).unwrap();
        assert_eq!(plink_stage.bytes, 68);
        // A per-CCD CXL port stage exists.
        assert!(plan
            .stages
            .iter()
            .any(|s| matches!(s.point, StageRef::CxlPort(0))));
        assert_eq!(plan.matrix_dest, spec.mem.umc_count);
    }

    #[test]
    fn limiter_coordinates() {
        let topo = Topology::build(&PlatformSpec::epyc_7302());
        // 7302: 2 cores per CCX, 4 per CCD.
        let plan = StagePlan::to_dimm(&topo, CoreId(5), DimmId(0));
        assert_eq!(plan.ccx, 2);
        assert_eq!(plan.ccd, 1);
    }

    #[test]
    fn plans_differ_by_destination_quadrant() {
        let topo = Topology::build(&PlatformSpec::epyc_7302());
        let near = topo
            .dimm_at_position(CoreId(0), DimmPosition::Near)
            .unwrap();
        let diag = topo
            .dimm_at_position(CoreId(0), DimmPosition::Diagonal)
            .unwrap();
        let p_near = StagePlan::to_dimm(&topo, CoreId(0), near);
        let p_diag = StagePlan::to_dimm(&topo, CoreId(0), diag);
        assert!(p_diag.unloaded_ns > p_near.unloaded_ns);
        // Same stage structure: the extra hops are uncapped switches.
        assert_eq!(p_near.stages.len(), p_diag.stages.len());
    }
}
