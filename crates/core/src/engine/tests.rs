//! Engine calibration and behavior tests.
//!
//! These assert the paper's *shapes* (who binds where, what rises when)
//! with tolerances; exact paper-vs-measured numbers live in EXPERIMENTS.md.

use super::*;
use chiplet_mem::OpKind;
use chiplet_sim::{Bandwidth, ByteSize, SimTime};
use chiplet_topology::{DimmPosition, PlatformSpec};

fn topo_7302() -> Topology {
    Topology::build(&PlatformSpec::epyc_7302())
}

fn topo_9634() -> Topology {
    Topology::build(&PlatformSpec::epyc_9634())
}

fn within(value: f64, expected: f64, tol_frac: f64) -> bool {
    (value - expected).abs() <= expected * tol_frac
}

/// All cores of CCD 0 / CCX 0 / the whole socket.
fn cores_of(topo: &Topology, scope: &str) -> Vec<CoreId> {
    match scope {
        "core" => vec![CoreId(0)],
        "ccx" => topo.cores_of_ccx(0).collect(),
        "ccd" => topo.cores_of_ccd(chiplet_topology::CcdId(0)).collect(),
        "cpu" => topo.core_ids().collect(),
        _ => unreachable!(),
    }
}

fn max_bandwidth(topo: &Topology, scope: &str, op: OpKind) -> f64 {
    let mut engine = Engine::new(topo, EngineConfig::deterministic());
    let cores = cores_of(topo, scope);
    let b = FlowSpec::reads("bw", cores, Target::all_dimms(topo))
        .op(op)
        .working_set(ByteSize::from_gib(1));
    engine.add_flow(b.build(topo));
    let result = engine.run(SimTime::from_micros(40));
    result.flows[0].achieved.as_gb_per_s()
}

#[test]
fn table2_pointer_chase_near_dimm() {
    for (topo, expected) in [(topo_7302(), 124.0), (topo_9634(), 141.0)] {
        let dimm = topo
            .dimm_at_position(CoreId(0), DimmPosition::Near)
            .unwrap();
        let lat = pointer_chase_latency_ns(
            &topo,
            CoreId(0),
            dimm,
            ByteSize::from_gib(1),
            EngineConfig::deterministic(),
        );
        assert!(
            within(lat, expected, 0.05),
            "{}: chase latency {lat} vs {expected}",
            topo.spec().name
        );
    }
}

#[test]
fn table2_position_ordering_holds_under_chase() {
    let topo = topo_7302();
    let mut last = 0.0;
    for pos in [
        DimmPosition::Near,
        DimmPosition::Vertical,
        DimmPosition::Horizontal,
        DimmPosition::Diagonal,
    ] {
        let dimm = topo.dimm_at_position(CoreId(0), pos).unwrap();
        let lat = pointer_chase_latency_ns(
            &topo,
            CoreId(0),
            dimm,
            ByteSize::from_gib(1),
            EngineConfig::deterministic(),
        );
        assert!(lat > last, "{pos}: {lat} not above {last}");
        last = lat;
    }
}

#[test]
fn table2_cache_levels_resolve_analytically() {
    let topo = topo_7302();
    let lat = pointer_chase_latency_ns(
        &topo,
        CoreId(0),
        DimmId(0),
        ByteSize::from_kib(16),
        EngineConfig::deterministic(),
    );
    assert!((lat - 1.24).abs() < 1e-6, "L1 chase {lat}");
    let lat = pointer_chase_latency_ns(
        &topo,
        CoreId(0),
        DimmId(0),
        ByteSize::from_mib(8),
        EngineConfig::deterministic(),
    );
    assert!((lat - 34.3).abs() < 1e-6, "L3 chase {lat}");
}

#[test]
fn table3_read_bandwidth_7302() {
    let topo = topo_7302();
    // Paper: core 14.9, CCX 25.1, CCD 32.5, CPU 106.7 GB/s.
    let core = max_bandwidth(&topo, "core", OpKind::Read);
    assert!(within(core, 14.9, 0.10), "core read {core}");
    let ccx = max_bandwidth(&topo, "ccx", OpKind::Read);
    assert!(within(ccx, 25.1, 0.10), "ccx read {ccx}");
    let ccd = max_bandwidth(&topo, "ccd", OpKind::Read);
    assert!(within(ccd, 32.5, 0.10), "ccd read {ccd}");
    let cpu = max_bandwidth(&topo, "cpu", OpKind::Read);
    assert!(within(cpu, 106.7, 0.10), "cpu read {cpu}");
}

#[test]
fn table3_write_bandwidth_7302() {
    let topo = topo_7302();
    // Paper: core 3.6, CCX 7.1, CCD 14.3, CPU 55.1 GB/s.
    let core = max_bandwidth(&topo, "core", OpKind::WriteNonTemporal);
    assert!(within(core, 3.6, 0.12), "core write {core}");
    let ccx = max_bandwidth(&topo, "ccx", OpKind::WriteNonTemporal);
    assert!(within(ccx, 7.1, 0.12), "ccx write {ccx}");
    let cpu = max_bandwidth(&topo, "cpu", OpKind::WriteNonTemporal);
    assert!(within(cpu, 55.1, 0.12), "cpu write {cpu}");
}

#[test]
fn table3_read_bandwidth_9634() {
    let topo = topo_9634();
    let core = max_bandwidth(&topo, "core", OpKind::Read);
    assert!(within(core, 14.6, 0.10), "core read {core}");
    let ccd = max_bandwidth(&topo, "ccd", OpKind::Read);
    assert!(within(ccd, 33.2, 0.10), "ccd read {ccd}");
    let cpu = max_bandwidth(&topo, "cpu", OpKind::Read);
    assert!(within(cpu, 366.2, 0.10), "cpu read {cpu}");
}

#[test]
fn table3_cxl_bandwidth_9634() {
    let topo = topo_9634();
    let run = |cores: Vec<CoreId>, op: OpKind| {
        let mut engine = Engine::new(&topo, EngineConfig::deterministic());
        engine.add_flow(
            FlowSpec::reads("cxl", cores, Target::Cxl(0))
                .op(op)
                .working_set(ByteSize::from_gib(1))
                .build(&topo),
        );
        engine.run(SimTime::from_micros(40)).flows[0]
            .achieved
            .as_gb_per_s()
    };
    // Paper: core 5.4/2.8; CCD ~24-25/15-16; CPU 88.1/87.7.
    let core_r = run(vec![CoreId(0)], OpKind::Read);
    assert!(within(core_r, 5.4, 0.12), "cxl core read {core_r}");
    let core_w = run(vec![CoreId(0)], OpKind::WriteNonTemporal);
    assert!(within(core_w, 2.8, 0.15), "cxl core write {core_w}");
    let ccd_r = run(
        topo.cores_of_ccd(chiplet_topology::CcdId(0)).collect(),
        OpKind::Read,
    );
    assert!(within(ccd_r, 24.3, 0.12), "cxl ccd read {ccd_r}");
}

#[test]
fn cxl_chase_latency_matches_table2() {
    let topo = topo_9634();
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    engine.add_flow(
        FlowSpec::pointer_chase("chase", CoreId(0), Target::Cxl(0))
            .working_set(ByteSize::from_gib(1))
            .build(&topo),
    );
    let result = engine.run(SimTime::from_micros(30));
    let lat = result.flows[0].mean_latency_ns();
    assert!(within(lat, 243.0, 0.05), "cxl chase {lat}");
}

#[test]
fn single_umc_binds_a_one_dimm_flow() {
    // §3.3: "a compute chiplet must access multiple memory controllers to
    // attain higher aggregated bandwidth" — one DIMM caps at the UMC rate.
    let topo = topo_7302();
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    engine.add_flow(
        FlowSpec::reads(
            "one-dimm",
            topo.cores_of_ccd(chiplet_topology::CcdId(0)).collect(),
            Target::dimm(DimmId(0)),
        )
        .working_set(ByteSize::from_gib(1))
        .build(&topo),
    );
    let bw = engine.run(SimTime::from_micros(40)).flows[0]
        .achieved
        .as_gb_per_s();
    assert!(within(bw, 21.1, 0.10), "one-DIMM bw {bw} vs UMC cap 21.1");
}

#[test]
fn latency_rises_with_offered_load() {
    // Figure 3's shape: mean latency grows toward saturation.
    let topo = topo_7302();
    let run_at = |gb: f64| {
        let mut engine = Engine::new(&topo, EngineConfig::deterministic());
        engine.add_flow(
            FlowSpec::reads(
                "load",
                topo.cores_of_ccd(chiplet_topology::CcdId(0)).collect(),
                Target::all_dimms(&topo),
            )
            .offered(Bandwidth::from_gb_per_s(gb))
            .working_set(ByteSize::from_gib(1))
            .build(&topo),
        );
        let r = engine.run(SimTime::from_micros(60));
        (
            r.flows[0].achieved.as_gb_per_s(),
            r.flows[0].mean_latency_ns(),
        )
    };
    let (bw_lo, lat_lo) = run_at(5.0);
    let (bw_hi, lat_hi) = run_at(31.0);
    assert!(within(bw_lo, 5.0, 0.10), "low load achieved {bw_lo}");
    assert!(bw_hi > 28.0, "high load achieved {bw_hi}");
    assert!(
        lat_hi > lat_lo + 5.0,
        "latency should rise: {lat_lo} -> {lat_hi}"
    );
    assert!(lat_lo < 142.0, "unloaded latency {lat_lo}");
}

#[test]
fn competing_flows_share_proportionally() {
    // Figure 4 case 4: both demands above the equal share of the shared
    // GMI link; shares settle ∝ demand (sender-driven aggressive).
    let topo = topo_7302();
    let ccd0: Vec<CoreId> = topo.cores_of_ccd(chiplet_topology::CcdId(0)).collect();
    let (f0_cores, f1_cores) = ccd0.split_at(2);
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    engine.add_flow(
        FlowSpec::reads("aggressive", f0_cores.to_vec(), Target::all_dimms(&topo))
            .offered(Bandwidth::from_gb_per_s(24.0))
            .build(&topo),
    );
    engine.add_flow(
        FlowSpec::reads("modest", f1_cores.to_vec(), Target::all_dimms(&topo))
            .offered(Bandwidth::from_gb_per_s(12.0))
            .build(&topo),
    );
    let r = engine.run(SimTime::from_micros(60));
    let a = r.flow("aggressive").unwrap().achieved.as_gb_per_s();
    let m = r.flow("modest").unwrap().achieved.as_gb_per_s();
    // GMI cap 32.5 shared 2:1 → ~21.7 / ~10.8.
    assert!(a + m > 29.0, "link underused: {a} + {m}");
    let ratio = a / m;
    assert!(
        (1.6..=2.4).contains(&ratio),
        "share ratio {ratio} (a={a}, m={m})"
    );
}

#[test]
fn equal_demands_split_evenly() {
    // Figure 4 case 3.
    let topo = topo_7302();
    let ccd0: Vec<CoreId> = topo.cores_of_ccd(chiplet_topology::CcdId(0)).collect();
    let (f0_cores, f1_cores) = ccd0.split_at(2);
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    for (name, cores) in [("a", f0_cores), ("b", f1_cores)] {
        engine.add_flow(
            FlowSpec::reads(name, cores.to_vec(), Target::all_dimms(&topo))
                .offered(Bandwidth::from_gb_per_s(24.0))
                .build(&topo),
        );
    }
    let r = engine.run(SimTime::from_micros(60));
    let a = r.flow("a").unwrap().achieved.as_gb_per_s();
    let b = r.flow("b").unwrap().achieved.as_gb_per_s();
    assert!((a / b - 1.0).abs() < 0.15, "unequal split {a} vs {b}");
}

#[test]
fn under_subscription_gives_everyone_their_demand() {
    // Figure 4 case 1.
    let topo = topo_7302();
    let ccd0: Vec<CoreId> = topo.cores_of_ccd(chiplet_topology::CcdId(0)).collect();
    let (f0_cores, f1_cores) = ccd0.split_at(2);
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    engine.add_flow(
        FlowSpec::reads("a", f0_cores.to_vec(), Target::all_dimms(&topo))
            .offered(Bandwidth::from_gb_per_s(10.0))
            .build(&topo),
    );
    engine.add_flow(
        FlowSpec::reads("b", f1_cores.to_vec(), Target::all_dimms(&topo))
            .offered(Bandwidth::from_gb_per_s(14.0))
            .build(&topo),
    );
    let r = engine.run(SimTime::from_micros(60));
    assert!(within(
        r.flow("a").unwrap().achieved.as_gb_per_s(),
        10.0,
        0.08
    ));
    assert!(within(
        r.flow("b").unwrap().achieved.as_gb_per_s(),
        14.0,
        0.08
    ));
}

#[test]
fn max_min_policy_protects_the_small_flow() {
    // Implication #4's fix: under MaxMinFair the small flow gets its full
    // demand instead of a proportional share.
    let topo = topo_7302();
    let ccd0: Vec<CoreId> = topo.cores_of_ccd(chiplet_topology::CcdId(0)).collect();
    let (f0_cores, f1_cores) = ccd0.split_at(2);
    let mut cfg = EngineConfig::deterministic();
    cfg.policy = TrafficPolicy::MaxMinFair;
    let mut engine = Engine::new(&topo, cfg);
    engine.add_flow(
        FlowSpec::reads("big", f0_cores.to_vec(), Target::all_dimms(&topo))
            .offered(Bandwidth::from_gb_per_s(30.0))
            .build(&topo),
    );
    engine.add_flow(
        FlowSpec::reads("small", f1_cores.to_vec(), Target::all_dimms(&topo))
            .offered(Bandwidth::from_gb_per_s(8.0))
            .build(&topo),
    );
    let r = engine.run(SimTime::from_micros(60));
    let small = r.flow("small").unwrap().achieved.as_gb_per_s();
    assert!(
        within(small, 8.0, 0.10),
        "max-min should satisfy the small flow, got {small}"
    );
}

#[test]
fn determinism_same_seed_same_result() {
    let topo = topo_9634();
    let run = |seed| {
        let cfg = EngineConfig::default().with_seed(seed);
        let mut engine = Engine::new(&topo, cfg);
        engine.add_flow(
            FlowSpec::reads(
                "r",
                topo.cores_of_ccd(chiplet_topology::CcdId(0)).collect(),
                Target::all_dimms(&topo),
            )
            .build(&topo),
        );
        let r = engine.run(SimTime::from_micros(20));
        (
            r.flows[0].bytes,
            r.flows[0].latency.quantile(0.999),
            r.telemetry.total_bytes(),
        )
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7).0, 0);
}

#[test]
fn telemetry_identifies_gmi_bottleneck() {
    let topo = topo_7302();
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    engine.add_flow(
        FlowSpec::reads(
            "r",
            topo.cores_of_ccd(chiplet_topology::CcdId(0)).collect(),
            Target::all_dimms(&topo),
        )
        .build(&topo),
    );
    let r = engine.run(SimTime::from_micros(40));
    let b = r.telemetry.bottleneck().unwrap();
    assert!(
        matches!(
            b.point,
            CapacityPoint::Link {
                kind: chiplet_topology::LinkKind::Gmi,
                ..
            }
        ),
        "bottleneck was {:?}",
        b.point
    );
    assert!(b.read.utilization > 0.9);
}

#[test]
fn traffic_matrix_recorded() {
    let topo = topo_7302();
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    engine.add_flow(FlowSpec::reads("r", vec![CoreId(0)], Target::all_dimms(&topo)).build(&topo));
    let r = engine.run(SimTime::from_micros(20));
    // Core 0 is on CCD 0; traffic spreads across all 8 UMCs.
    assert_eq!(r.telemetry.matrix.len(), 8);
    for cell in &r.telemetry.matrix {
        assert_eq!(cell.ccd, 0);
        assert!(cell.bytes > 0);
    }
}

#[test]
fn random_pattern_loses_prefetch_bandwidth() {
    let topo = topo_7302();
    let run = |pattern: Pattern| {
        let mut engine = Engine::new(&topo, EngineConfig::deterministic());
        engine.add_flow(
            FlowSpec::reads("r", vec![CoreId(0)], Target::all_dimms(&topo))
                .pattern(pattern)
                .working_set(ByteSize::from_gib(1))
                .build(&topo),
        );
        engine.run(SimTime::from_micros(30)).flows[0]
            .achieved
            .as_gb_per_s()
    };
    let seq = run(Pattern::Sequential);
    let rnd = run(Pattern::Random);
    assert!(
        rnd < seq * 0.65 && rnd > seq * 0.35,
        "random {rnd} vs sequential {seq}"
    );
}

#[test]
fn cache_resident_flow_is_analytic() {
    let topo = topo_7302();
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    engine.add_flow(
        FlowSpec::reads("l1", vec![CoreId(0)], Target::all_dimms(&topo))
            .working_set(ByteSize::from_kib(16))
            .build(&topo),
    );
    let r = engine.run(SimTime::from_micros(10));
    assert!(r.flows[0].analytic);
    assert_eq!(r.flows[0].issued, 0);
    // No fabric traffic at all.
    assert_eq!(
        r.telemetry.links.iter().map(|l| l.read.bytes).sum::<u64>(),
        0
    );
}

#[test]
fn tail_latency_reflects_dram_variability() {
    // With the stochastic DDR4 model, low-load P999 sits hundreds of ns
    // above the mean (Figure 3's low-load tails).
    let topo = topo_7302();
    let mut engine = Engine::new(&topo, EngineConfig::default());
    engine.add_flow(
        FlowSpec::reads("r", vec![CoreId(0)], Target::all_dimms(&topo))
            .offered(Bandwidth::from_gb_per_s(5.0))
            .build(&topo),
    );
    let r = engine.run(SimTime::from_micros(200));
    let mean = r.flows[0].mean_latency_ns();
    let p999 = r.flows[0].p999_latency_ns();
    assert!(mean < 160.0, "mean {mean}");
    assert!(p999 > 350.0 && p999 < 700.0, "p999 {p999}");
}

#[test]
#[should_panic(expected = "already belongs to another flow")]
fn double_core_claim_rejected() {
    let topo = topo_7302();
    let mut engine = Engine::new(&topo, EngineConfig::default());
    engine.add_flow(FlowSpec::reads("a", vec![CoreId(0)], Target::all_dimms(&topo)).build(&topo));
    engine.add_flow(FlowSpec::reads("b", vec![CoreId(0)], Target::all_dimms(&topo)).build(&topo));
}

#[test]
fn traces_capture_flow_lifecycle() {
    // A flow that stops mid-run leaves a trace that is busy, then zero.
    let topo = topo_7302();
    let mut cfg = EngineConfig::deterministic();
    cfg.trace_window = Some(SimDuration::from_micros(2));
    let mut engine = Engine::new(&topo, cfg);
    engine.add_flow(
        FlowSpec::reads("traced", vec![CoreId(0)], Target::all_dimms(&topo))
            .stop(SimTime::from_micros(20))
            .build(&topo),
    );
    let r = engine.run(SimTime::from_micros(40));
    let trace = &r.flows[0].trace;
    assert!(trace.len() >= 15, "trace has {} points", trace.len());
    // Busy early...
    assert!(trace[2].bandwidth.as_gb_per_s() > 5.0, "{:?}", trace[2]);
    // ...silent after the stop.
    let late = trace.iter().rev().take(5).collect::<Vec<_>>();
    for p in late {
        assert_eq!(p.bandwidth.as_gb_per_s(), 0.0, "{p:?}");
    }
    // No trace requested => empty.
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    engine.add_flow(
        FlowSpec::reads("untraced", vec![CoreId(0)], Target::all_dimms(&topo)).build(&topo),
    );
    let r = engine.run(SimTime::from_micros(10));
    assert!(r.flows[0].trace.is_empty());
}

#[test]
fn flow_stops_at_its_stop_time() {
    let topo = topo_7302();
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    engine.add_flow(
        FlowSpec::reads("short", vec![CoreId(0)], Target::all_dimms(&topo))
            .stop(SimTime::from_micros(10))
            .build(&topo),
    );
    engine
        .add_flow(FlowSpec::reads("long", vec![CoreId(4)], Target::all_dimms(&topo)).build(&topo));
    let r = engine.run(SimTime::from_micros(40));
    let short = r.flow("short").unwrap();
    let long = r.flow("long").unwrap();
    // The short flow only issued for ~8 µs of the 38 µs window.
    assert!(short.bytes < long.bytes / 2);
    assert!(short.bytes > 0);
}

#[test]
fn spans_tile_end_to_end_latency() {
    // Acceptance: per-transaction hop spans tile the charged end-to-end
    // latency within 1 ns, even under load (queueing + device variability).
    let topo = topo_9634();
    let cfg = EngineConfig::default().with_trace_sampling(1);
    let mut engine = Engine::new(&topo, cfg);
    engine.add_flow(
        FlowSpec::reads(
            "r",
            topo.cores_of_ccd(chiplet_topology::CcdId(0)).collect(),
            Target::all_dimms(&topo),
        )
        .build(&topo),
    );
    let r = engine.run(SimTime::from_micros(20));
    let trace = r.trace.expect("sampling was on");
    assert!(trace.spans.len() > 100, "only {} spans", trace.spans.len());
    for span in &trace.spans {
        assert!(
            (span.hop_sum_ns() - span.e2e_ns).abs() < 1.0,
            "span {} hops sum {} vs e2e {}",
            span.seq,
            span.hop_sum_ns(),
            span.e2e_ns
        );
        // Limiter queueing first, propagation last.
        assert_eq!(
            span.hops.first().unwrap().label,
            HopClass::TrafficCtrl.code()
        );
        assert_eq!(
            span.hops.last().unwrap().label,
            HopClass::Propagation.code()
        );
    }
}

#[test]
fn unloaded_hop_means_match_table2_on_light_load() {
    // Acceptance: under a single unloaded pointer chase, the observed mean
    // end-to-end span — and its propagation hop — match the configured
    // Table 2 latency within 5%.
    for (spec, _expected) in [
        (PlatformSpec::epyc_7302(), 124.0),
        (PlatformSpec::epyc_9634(), 141.0),
    ] {
        let topo = Topology::build(&spec);
        let dimm = topo
            .dimm_at_position(CoreId(0), DimmPosition::Near)
            .unwrap();
        let table2 = spec.dram_latency_ns(DimmPosition::Near);
        let cfg = EngineConfig::deterministic().with_trace_sampling(1);
        let mut engine = Engine::new(&topo, cfg);
        engine.add_flow(
            FlowSpec::pointer_chase("chase", CoreId(0), Target::dimm(dimm))
                .working_set(ByteSize::from_gib(1))
                .build(&topo),
        );
        let r = engine.run(SimTime::from_micros(30));
        let trace = r.trace.expect("sampling was on");
        assert!(!trace.spans.is_empty());
        assert!(
            within(trace.mean_e2e_ns(), table2, 0.05),
            "{}: span mean {} vs Table 2 {}",
            spec.name,
            trace.mean_e2e_ns(),
            table2
        );
        let breakdown = trace.breakdown();
        let prop = breakdown
            .iter()
            .find(|b| b.class == HopClass::Propagation)
            .expect("propagation hop present");
        assert!(
            within(prop.mean_total_ns, table2, 0.05),
            "{}: propagation mean {} vs Table 2 {}",
            spec.name,
            prop.mean_total_ns,
            table2
        );
        // Unloaded: queueing waits are negligible at every hop.
        for b in &breakdown {
            assert!(
                b.mean_wait_ns < 0.05 * table2,
                "{}: {} mean wait {}",
                spec.name,
                b.class.name(),
                b.mean_wait_ns
            );
        }
    }
}

#[test]
fn trace_sampling_never_perturbs_results() {
    // Acceptance: trace_sampling: None leaves results identical to any
    // sampled run with the same seed — the sampler draws from a derived
    // RNG stream, never the simulation's.
    let topo = topo_9634();
    let run = |sampling: Option<u32>| {
        let mut cfg = EngineConfig::default().with_seed(11);
        cfg.trace_sampling = sampling;
        let mut engine = Engine::new(&topo, cfg);
        engine.add_flow(
            FlowSpec::reads(
                "r",
                topo.cores_of_ccd(chiplet_topology::CcdId(0)).collect(),
                Target::all_dimms(&topo),
            )
            .build(&topo),
        );
        let r = engine.run(SimTime::from_micros(20));
        (
            r.flows[0].bytes,
            r.flows[0].completed,
            r.flows[0].latency.quantile(0.999),
        )
    };
    let baseline = run(None);
    assert_eq!(baseline, run(Some(1)));
    assert_eq!(baseline, run(Some(64)));
    assert_ne!(baseline.0, 0);
}

#[test]
fn phase_profiling_reports_without_perturbing_results() {
    // Acceptance: profile_phases only reads the wall clock — simulation
    // results are identical with it on or off, the RunResult carries a
    // phase report covering the run, and the profiling families stay out
    // of the deterministic default metrics dump.
    let topo = topo_7302();
    let run = |profile: bool| {
        let mut cfg = EngineConfig::default().with_seed(7);
        cfg.profile_phases = profile;
        cfg.metrics_window = Some(SimDuration::from_micros(5));
        let mut engine = Engine::new(&topo, cfg);
        engine.add_flow(
            FlowSpec::reads(
                "r",
                topo.cores_of_ccd(chiplet_topology::CcdId(0)).collect(),
                Target::all_dimms(&topo),
            )
            .build(&topo),
        );
        engine.run(SimTime::from_micros(20))
    };

    let plain = run(false);
    assert!(plain.phases.is_none());

    let profiled = run(true);
    assert_eq!(plain.flows[0].bytes, profiled.flows[0].bytes);
    assert_eq!(plain.flows[0].completed, profiled.flows[0].completed);
    let phases = profiled.phases.as_ref().expect("phase report present");
    assert!(phases.accounted_seconds() > 0.0);
    assert!(
        phases
            .phases
            .iter()
            .any(|p| p.name == "engine/stage" && p.calls > 0),
        "stage handler was timed"
    );

    // Volatile-only emission: the default dump is byte-identical to the
    // unprofiled run's; the profiling families need --metrics-all.
    let plain_m = plain.metrics.as_ref().expect("metrics on");
    let prof_m = profiled.metrics.as_ref().expect("metrics on");
    assert_eq!(plain_m.to_openmetrics(), prof_m.to_openmetrics());
    let all = prof_m.to_openmetrics_with_volatile();
    for family in [
        "sim_phase_seconds",
        "sim_phase_calls",
        "chiplet_engine_queue_depth_bucket",
        "chiplet_engine_epoch_events_max",
    ] {
        assert!(!prof_m.to_openmetrics().contains(family), "{family} leaked");
        assert!(all.contains(family), "{family} missing from volatile dump");
    }
}

#[test]
fn trace_json_is_bit_reproducible() {
    // Acceptance: same seed + same trace_sampling ⇒ byte-identical
    // Chrome trace JSON.
    let topo = topo_7302();
    let run = || {
        let cfg = EngineConfig::default().with_seed(3).with_trace_sampling(8);
        let mut engine = Engine::new(&topo, cfg);
        engine.add_flow(
            FlowSpec::reads(
                "a",
                topo.cores_of_ccx(0).collect(),
                Target::all_dimms(&topo),
            )
            .build(&topo),
        );
        engine.add_flow(
            FlowSpec::reads(
                "b",
                topo.cores_of_ccx(1).collect(),
                Target::all_dimms(&topo),
            )
            .op(OpKind::WriteNonTemporal)
            .build(&topo),
        );
        let r = engine.run(SimTime::from_micros(20));
        let names: Vec<String> = r.flows.iter().map(|f| f.name.clone()).collect();
        let trace = r.trace.expect("sampling was on");
        (trace.spans.len(), trace.to_chrome_trace(&names))
    };
    let (n1, json1) = run();
    let (n2, json2) = run();
    assert!(n1 > 0);
    assert_eq!(n1, n2);
    assert_eq!(json1, json2);
    // And the export is valid JSON with the trace-event envelope.
    let doc: serde_json::Value = serde_json::from_str(&json1).unwrap();
    assert!(doc.get("traceEvents").is_some());
}

#[test]
fn sampling_rate_thins_the_span_set() {
    let topo = topo_9634();
    let run = |n: u32| {
        let cfg = EngineConfig::default().with_seed(5).with_trace_sampling(n);
        let mut engine = Engine::new(&topo, cfg);
        engine.add_flow(
            FlowSpec::reads(
                "r",
                topo.cores_of_ccd(chiplet_topology::CcdId(0)).collect(),
                Target::all_dimms(&topo),
            )
            .build(&topo),
        );
        let r = engine.run(SimTime::from_micros(20));
        (r.flows[0].issued, r.trace.unwrap().spans.len() as f64)
    };
    let (issued, full) = run(1);
    let (_, sampled) = run(64);
    assert!(full > 0.0 && sampled > 0.0);
    // Full sampling spans every completed transaction (issued bounds it).
    assert!(full <= issued as f64);
    // 1-in-64: between 1/3 and 3x the expected thinning.
    let ratio = sampled / full;
    assert!(
        ratio > 1.0 / (64.0 * 3.0) && ratio < 3.0 / 64.0,
        "thinning ratio {ratio}"
    );
}

#[test]
fn link_time_series_cover_the_run() {
    let topo = topo_7302();
    let window = SimDuration::from_micros(2);
    let cfg = EngineConfig::deterministic().with_trace(window);
    let mut engine = Engine::new(&topo, cfg);
    engine.add_flow(
        FlowSpec::reads(
            "r",
            topo.cores_of_ccd(chiplet_topology::CcdId(0)).collect(),
            Target::all_dimms(&topo),
        )
        .build(&topo),
    );
    let horizon = SimTime::from_micros(20);
    let r = engine.run(horizon);
    // The GMI link that carried the flow has a full series: windows are
    // half-open [start, start+window), stamped at the window start,
    // beginning at t = 0.
    let gmi = r
        .telemetry
        .links
        .iter()
        .find(|l| {
            matches!(
                l.point,
                CapacityPoint::Link {
                    kind: chiplet_topology::LinkKind::Gmi,
                    ..
                }
            ) && !l.read_trace.is_empty()
        })
        .expect("a GMI link carries the flow");
    let n_windows = (horizon.as_nanos() / window.as_nanos()) as usize;
    assert_eq!(gmi.read_trace.len(), n_windows);
    assert_eq!(gmi.read_trace[0].at, SimTime::ZERO);
    assert_eq!(gmi.read_trace[1].at, SimTime::from_nanos(window.as_nanos()));
    assert!(gmi.read_trace[5].bandwidth.as_gb_per_s() > 1.0);
    // Queue-backlog gauge rides along and sees contention.
    assert_eq!(gmi.depth_trace.len(), n_windows);
    assert!(gmi.depth_trace[5].max > 0.0);
    // An idle link's series exists but stays flat at zero.
    let idle = r
        .telemetry
        .links
        .iter()
        .find(|l| l.read.bytes == 0 && !l.read_trace.is_empty());
    if let Some(idle) = idle {
        assert!(idle
            .read_trace
            .iter()
            .all(|p| p.bandwidth == Bandwidth::ZERO));
    }
}

#[test]
fn constant_demand_schedule_matches_offered() {
    // A single-piece schedule must behave bit-identically to `offered`.
    let topo = topo_7302();
    let run = |schedule: bool| {
        let mut engine = Engine::new(&topo, EngineConfig::deterministic());
        let b = FlowSpec::reads(
            "f",
            topo.cores_of_ccd(chiplet_topology::CcdId(0)).collect(),
            Target::all_dimms(&topo),
        );
        let b = if schedule {
            b.demand(chiplet_sim::DemandSchedule::constant(Some(
                Bandwidth::from_gb_per_s(12.0),
            )))
        } else {
            b.offered(Bandwidth::from_gb_per_s(12.0))
        };
        engine.add_flow(b.build(&topo));
        engine.run(SimTime::from_micros(40)).telemetry.to_json()
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn piecewise_demand_throttles_and_recovers() {
    // Demand drops mid-run and comes back: the trace must show all three
    // phases at the scheduled rates.
    let topo = topo_7302();
    let mut cfg = EngineConfig::deterministic();
    cfg.trace_window = Some(SimDuration::from_micros(2));
    let mut engine = Engine::new(&topo, cfg);
    engine.add_flow(
        FlowSpec::reads(
            "varying",
            topo.cores_of_ccd(chiplet_topology::CcdId(0)).collect(),
            Target::all_dimms(&topo),
        )
        .demand(chiplet_sim::DemandSchedule::piecewise(vec![
            (SimTime::ZERO, None),
            (
                SimTime::from_micros(20),
                Some(Bandwidth::from_gb_per_s(4.0)),
            ),
            (SimTime::from_micros(40), None),
        ]))
        .build(&topo),
    );
    let r = engine.run(SimTime::from_micros(60));
    let at = |us: u64| {
        r.flows[0]
            .trace
            .iter()
            .rev()
            .find(|p| p.at <= SimTime::from_micros(us))
            .map(|p| p.bandwidth.as_gb_per_s())
            .unwrap()
    };
    let unthrottled = at(16);
    let throttled = at(34);
    let recovered = at(56);
    assert!(unthrottled > 20.0, "phase 1 unthrottled: {unthrottled}");
    assert!(
        within(throttled, 4.0, 0.25),
        "phase 2 follows the schedule: {throttled}"
    );
    assert!(recovered > 20.0, "phase 3 recovers: {recovered}");
}

#[test]
fn zero_demand_piece_pauses_the_flow() {
    let topo = topo_7302();
    let mut cfg = EngineConfig::deterministic();
    cfg.trace_window = Some(SimDuration::from_micros(2));
    let mut engine = Engine::new(&topo, cfg);
    engine.add_flow(
        FlowSpec::reads("gated", vec![CoreId(0)], Target::all_dimms(&topo))
            .demand(chiplet_sim::DemandSchedule::piecewise(vec![
                (SimTime::ZERO, Some(Bandwidth::from_gb_per_s(6.0))),
                (SimTime::from_micros(20), Some(Bandwidth::ZERO)),
                (
                    SimTime::from_micros(40),
                    Some(Bandwidth::from_gb_per_s(6.0)),
                ),
            ]))
            .build(&topo),
    );
    let r = engine.run(SimTime::from_micros(60));
    let window_bytes = |lo: u64, hi: u64| {
        r.flows[0]
            .trace
            .iter()
            .filter(|p| p.at >= SimTime::from_micros(lo) && p.at < SimTime::from_micros(hi))
            .map(|p| p.bandwidth.as_gb_per_s())
            .sum::<f64>()
    };
    assert!(window_bytes(4, 18) > 0.0, "active before the pause");
    assert_eq!(window_bytes(24, 38), 0.0, "paused window is silent");
    assert!(window_bytes(44, 58) > 0.0, "resumes after the pause");
}

#[test]
fn demand_schedule_is_deterministic_per_seed() {
    let topo = topo_9634();
    let run = |seed: u64| {
        let mut engine = Engine::new(&topo, EngineConfig::default().with_seed(seed));
        engine.add_flow(
            FlowSpec::reads(
                "a",
                topo.cores_of_ccd(chiplet_topology::CcdId(0)).collect(),
                Target::all_dimms(&topo),
            )
            .demand(chiplet_sim::DemandSchedule::piecewise(vec![
                (SimTime::ZERO, None),
                (
                    SimTime::from_micros(10),
                    Some(Bandwidth::from_gb_per_s(5.0)),
                ),
                (SimTime::from_micros(25), None),
            ]))
            .build(&topo),
        );
        engine.add_flow(
            FlowSpec::reads("b", vec![CoreId(30)], Target::all_dimms(&topo)).build(&topo),
        );
        engine.run(SimTime::from_micros(40)).telemetry.to_json()
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}

#[test]
fn profile_reports_are_byte_identical_per_seed() {
    let topo = topo_9634();
    let run = || {
        let mut engine = Engine::new(&topo, EngineConfig::default().with_seed(11).with_profile());
        engine.add_flow(
            FlowSpec::reads(
                "a",
                topo.cores_of_ccd(chiplet_topology::CcdId(0)).collect(),
                Target::all_dimms(&topo),
            )
            .build(&topo),
        );
        engine.add_flow(
            FlowSpec::reads("b", vec![CoreId(30)], Target::all_dimms(&topo)).build(&topo),
        );
        let result = engine.run(SimTime::from_micros(30));
        result.profile.expect("profiling enabled").to_json()
    };
    assert_eq!(run(), run());
}

#[test]
fn metrics_registry_captures_flows_links_and_is_deterministic() {
    let topo = topo_9634();
    let run = || {
        let mut engine = Engine::new(
            &topo,
            EngineConfig::default()
                .with_seed(3)
                .with_profile()
                .with_metrics(chiplet_sim::SimDuration::from_micros(2)),
        );
        engine.add_flow(
            FlowSpec::reads(
                "probe",
                topo.cores_of_ccd(chiplet_topology::CcdId(0)).collect(),
                Target::all_dimms(&topo),
            )
            .build(&topo),
        );
        engine.run(SimTime::from_micros(30))
    };
    let result = run();
    let m = result.metrics.as_ref().expect("metrics enabled");
    let bytes = m
        .counter_value("chiplet_flow_bytes", &[("flow", "probe")])
        .expect("flow bytes recorded");
    assert_eq!(
        bytes as u64, result.flows[0].bytes,
        "registry matches telemetry"
    );
    let lat = m
        .histogram("chiplet_flow_latency_ns", &[("flow", "probe")])
        .expect("latency recorded");
    assert_eq!(lat.count(), result.flows[0].completed);
    assert!(lat.windows().count() > 1, "multiple sim-time windows");
    assert!(
        m.gauge_value("chiplet_flow_achieved_gb_s", &[("flow", "probe")])
            .expect("achieved gauge")
            > 0.0
    );
    // Some capacity point saw traffic.
    assert!(m
        .family("chiplet_link_bytes")
        .is_some_and(|f| f.series_count() > 0));
    // Byte-identical exposition run-to-run.
    let a = run().metrics.unwrap().to_openmetrics();
    let b = run().metrics.unwrap().to_openmetrics();
    assert_eq!(a, b);
    crate::metrics::lint_openmetrics(&a).expect("engine dump lints clean");
}
