//! Domain-partitioned parallel execution of the event engine.
//!
//! The sequential engine is one event queue over shared mutable state. This
//! module splits that state along the topology's [`chiplet_topology::Domain`]
//! partition — one domain per compute chiplet, one for the I/O die, one for
//! the memory side — and runs each domain's events on its own shard through a
//! [`DomainScheduler`], synchronizing at nanosecond batches:
//!
//! * every capacity point, core slot, limiter and RNG stream is touched by
//!   exactly one domain (validated at startup; violations fall back to the
//!   sequential path), so same-nanosecond events in different domains never
//!   interact — event timestamps are integral and every admission's service
//!   time is strictly positive, which makes every cross-domain event edge at
//!   least one nanosecond long;
//! * per-flow counters and histograms are sharded and merged exactly at the
//!   end (all-integer accumulators), so the merged telemetry is the
//!   sequential telemetry;
//! * at each batch barrier the scheduler replays the batch single-threaded by
//!   sequence number alone, reconstructing the exact event order — and
//!   therefore the exact output bytes — of the single-queue engine,
//!   independent of worker count or scheduling jitter.
//!
//! Only configurations whose event dynamics are provably domain-local run
//! here: the hardware-default policy, no telemetry attachments, and
//! unthrottled sequential-pattern core flows (no RNG draws outside the memory
//! domain, no pacing, no demand schedules, no NIC DMA). Everything else —
//! and every `workers = 1` run — takes the sequential loop, byte-identical
//! by construction.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use chiplet_fabric::{Dir, DirectionalChannel, SlotLimiter};
use chiplet_mem::{DramServiceModel, OpKind, Pattern};
use chiplet_sim::{DetRng, DomainScheduler, EventLog, LoggedPush, SimDuration, SimTime};
use chiplet_topology::{Domain, LinkId};

use super::plan::{Stage, StageRef};
use super::{CoreState, Engine, EngineConfig, FlowHot, PlanInfo, Txn, LINE};

/// Worker-count override: `CHIPLET_ENGINE_WORKERS=N` takes precedence over
/// [`EngineConfig::workers`] — the CI determinism jobs use it to re-run
/// committed scenarios in parallel without touching their specs.
pub(super) fn requested_workers(cfg: &EngineConfig) -> usize {
    std::env::var("CHIPLET_ENGINE_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(cfg.workers)
        .max(1)
}

/// `CHIPLET_ENGINE_FORCE_PARALLEL=1` exercises the batch machinery even when
/// only one hardware thread is available (the inline executor): determinism
/// tests use it so single-CPU hosts still cover the replay path.
pub(super) fn force_parallel() -> bool {
    std::env::var("CHIPLET_ENGINE_FORCE_PARALLEL").is_ok_and(|v| v != "0")
}

/// Test probe: how many runs actually took the parallel path (the
/// byte-identity tests assert coverage, not just agreement).
#[cfg(test)]
static PARALLEL_RUNS: AtomicU64 = AtomicU64::new(0);

impl Engine<'_> {
    /// Why this run's dynamics are *not* provably domain-local — `None`
    /// means the parallel path is sound. Ineligible runs take the
    /// sequential loop — byte-identical anyway, just not parallel — and
    /// the caller records the downgrade loudly (see
    /// [`super::RunResult::parallel_fallback`]) instead of hiding it.
    pub(super) fn parallel_ineligible_reason(&self) -> Option<&'static str> {
        use crate::traffic::TrafficPolicy;
        if self.cfg.policy != TrafficPolicy::HardwareDefault {
            return Some("policy");
        }
        // Telemetry attachments observe admissions in global event order.
        if self.cfg.profile {
            return Some("profiler");
        }
        if self.cfg.profile_phases {
            return Some("phase_profiler");
        }
        if self.cfg.trace_window.is_some() {
            return Some("trace_window");
        }
        if self.cfg.trace_sampling.is_some() {
            return Some("trace_sampling");
        }
        if self.cfg.metrics_window.is_some() {
            return Some("metrics");
        }
        for (f, hot) in self.flows.iter().zip(&self.flow_hot) {
            // Demand re-pacing touches issuers across chiplets at once.
            if f.spec.demand.is_some() {
                return Some("paced_flow");
            }
            if !f.outcome.is_fabric_bound() && f.spec.nic.is_none() {
                continue; // analytic flow: issues no events
            }
            // NIC DMA issuers live outside the chiplet partition; temporal
            // writes alternate directions; pacing and random targeting draw
            // from the shared RNG on issue (a CCD-domain draw).
            if f.spec.nic.is_some() {
                return Some("nic_dma");
            }
            if hot.op == OpKind::WriteTemporal {
                return Some("temporal_write");
            }
            if hot.gap_mean_ns != 0.0 {
                return Some("paced_issue");
            }
            if matches!(hot.pattern, Pattern::Random) {
                return Some("random_pattern");
            }
            // Every stage must sit behind a capped server in the flow's
            // direction: an uncapped direction admits with zero service,
            // which would let an event hop domains within one nanosecond.
            let dir = if hot.op.is_write() {
                Dir::Write
            } else {
                Dir::Read
            };
            for p in &f.plans {
                for s in &p.stages {
                    if self.capacity_of(s.point, dir).is_none() {
                        return Some("uncapped_stage");
                    }
                }
            }
        }
        None
    }
}

/// The event vocabulary of the parallel engine. Unlike the sequential
/// [`super::Event`], stage-walk events carry the transaction *inline*: a
/// transaction's record travels with it across domain boundaries, and only
/// limiter-parked transactions occupy a slab slot (in their issuing CCD's
/// shard, referenced by the slot id a [`PEvent::Granted`] wake carries).
#[derive(Debug, Clone)]
enum PEvent {
    Issue { core: u32 },
    Stage { txn: Txn },
    Granted { slot: u32 },
    Complete { txn: Txn },
}

/// Immutable context shared by every domain: the flattened plan tables,
/// event-routing maps, and device models. Owned copies — cheap, and they
/// keep the worker threads free of borrows into the engine.
struct Shared {
    plan_infos: Vec<PlanInfo>,
    flat_stages: Vec<Stage>,
    /// Destination domain of `Stage` events, per flat stage index.
    stage_domain: Vec<u32>,
    /// Destination domain of `Issue`/`Complete` events, per issuer slot
    /// (`u32::MAX` for slots no eligible flow issues from).
    core_domain: Vec<u32>,
    dram_model: DramServiceModel,
    cxl_model: DramServiceModel,
    horizon_ns: f64,
    warmup_ns: f64,
    matrix_cols: usize,
}

impl Shared {
    fn stage_dest(&self, txn: &Txn) -> u32 {
        let base = self.plan_infos[txn.plan as usize].stage_base;
        self.stage_domain[(base + txn.stage as u32) as usize]
    }
}

/// One domain's shard of the engine state. Full-length clones of the
/// per-resource tables — each domain only ever touches the entries it owns,
/// so indices stay global and the merge takes whole structures from their
/// owner (channels, cores, RNG) or sums exact accumulators (flow counters,
/// histograms, the traffic matrix).
struct DomainState {
    cores: Vec<CoreState>,
    flow_hot: Vec<FlowHot>,
    /// Limiter-parked transactions only; the stage walk carries its
    /// transaction inline.
    txns: Vec<Txn>,
    free_txns: Vec<u32>,
    channels: Vec<Option<DirectionalChannel>>,
    noc: Vec<DirectionalChannel>,
    cxl_ports: Vec<DirectionalChannel>,
    ccx_limiters: Vec<SlotLimiter<u32>>,
    ccd_limiters: Option<Vec<SlotLimiter<u32>>>,
    matrix: Vec<u64>,
    rng: DetRng,
}

impl DomainState {
    fn fork(e: &Engine<'_>) -> Self {
        DomainState {
            cores: e.cores.clone(),
            flow_hot: e.flow_hot.clone(),
            txns: Vec::new(),
            free_txns: Vec::new(),
            channels: e.channels.clone(),
            noc: e.noc.clone(),
            cxl_ports: e.cxl_ports.clone(),
            ccx_limiters: e.ccx_limiters.clone(),
            ccd_limiters: e.ccd_limiters.clone(),
            matrix: e.matrix.clone(),
            rng: e.rng.clone(),
        }
    }

    /// The out-of-band analog of the sequential `ResetStats` event.
    fn reset_stats(&mut self) {
        for ch in self.channels.iter_mut().flatten() {
            ch.reset_stats();
        }
        for ch in &mut self.noc {
            ch.reset_stats();
        }
        for ch in &mut self.cxl_ports {
            ch.reset_stats();
        }
    }

    fn alloc_txn(&mut self, txn: Txn) -> u32 {
        match self.free_txns.pop() {
            Some(id) => {
                self.txns[id as usize] = txn;
                id
            }
            None => {
                self.txns.push(txn);
                (self.txns.len() - 1) as u32
            }
        }
    }

    /// Removes a parked transaction from the slab, returning it by value
    /// for the inline stage walk.
    fn take_txn(&mut self, slot: u32) -> Txn {
        self.free_txns.push(slot);
        let t = &mut self.txns[slot as usize];
        t.live = false;
        std::mem::replace(
            t,
            Txn {
                flow: 0,
                core: 0,
                plan: 0,
                issue_ns: 0.0,
                waits_ns: 0.0,
                extra_ns: 0.0,
                stage: 0,
                limiter_phase: 0,
                dir_write: false,
                live: false,
                span: u32::MAX,
            },
        )
    }
}

/// Per-event push recorder: same-nanosecond pushes join the executing
/// domain's local FIFO (they *must* be domain-local — asserted), strictly
/// later pushes are logged for the barrier replay to sequence and deliver.
struct Emitter<'a> {
    domain: u32,
    batch_t: u64,
    log: EventLog<PEvent>,
    fifo: &'a mut VecDeque<PEvent>,
}

impl Emitter<'_> {
    /// The parallel analog of `Engine::schedule_at`: identical rounding, so
    /// every event lands on the same integral nanosecond it would have in
    /// the sequential engine.
    fn schedule_at(&mut self, ns: f64, now_ns: f64, dest: u32, ev: PEvent) {
        let at = ns.max(now_ns).ceil() as u64;
        if at <= self.batch_t {
            assert_eq!(
                dest, self.domain,
                "same-nanosecond events must stay domain-local"
            );
            self.fifo.push_back(ev);
            self.log.push(LoggedPush::Local);
        } else {
            self.log.push(LoggedPush::Future {
                domain: dest,
                at: SimTime::from_nanos(at),
                payload: ev,
            });
        }
    }
}

/// One domain's reusable batch workspace: the coordinator drains the
/// domain's lane into `drained` before the barrier; the domain executor
/// fills `seqs`/`logs`; the coordinator collects them for the replay.
#[derive(Default)]
struct WorkSlot {
    drained: Vec<(u64, PEvent)>,
    seqs: Vec<u64>,
    logs: Vec<EventLog<PEvent>>,
    fifo: VecDeque<PEvent>,
}

/// Runs `engine` to `horizon` on the domain-partitioned path with `threads`
/// worker threads. Returns `false` — engine untouched — when the
/// topology's stage routing cannot be made domain-local, in which case the
/// caller falls back to the sequential loop.
pub(super) fn run_parallel(engine: &mut Engine<'_>, horizon: SimTime, threads: usize) -> bool {
    let part = engine.topo.partition();
    let ccd_total = part.ccd_total();
    let iod = Domain::Iod.index(ccd_total) as u32;
    let mem = Domain::Memory.index(ccd_total) as u32;
    let n_domains = part.domain_count();
    // The batch window is the 1 ns event quantum; the partition's cut
    // analysis guarantees that window is conservative for every boundary.
    assert!(part.lookahead_ns() >= chiplet_topology::EVENT_QUANTUM_NS);

    // Route stages: device stages (UMC channels, the CXL P-Link aggregate)
    // all run in the memory domain — that keeps every engine RNG draw in
    // one domain — other links go to their partition owner, and the NoC
    // and CXL ingress ports sit on the I/O die.
    let stage_domain: Vec<u32> = engine
        .flat_stages
        .iter()
        .map(|s| {
            if s.device {
                return mem;
            }
            match s.point {
                StageRef::Link(l) => part.link_owner(LinkId(l)).index(ccd_total) as u32,
                StageRef::SocketNoc(_) => iod,
                StageRef::CxlPort(_) => iod,
            }
        })
        .collect();

    let mut core_domain = vec![u32::MAX; engine.cores.len()];
    for c in 0..engine.topo.core_count() {
        core_domain[c as usize] = engine.topo.ccd_of_core(chiplet_topology::CoreId(c)).0;
    }

    // Validate single-domain ownership of every capacity point an eligible
    // flow touches, and that each plan's first stage lives in its issuing
    // chiplet (the limiter-exit `Stage` push is same-nanosecond local). A
    // platform that breaks either (e.g. the monolithic baseline's uncapped
    // chiplet egress) falls back to the sequential loop.
    let mut chan_owner: Vec<u32> = (0..engine.channels.len())
        .map(|l| part.link_owner(LinkId(l as u32)).index(ccd_total) as u32)
        .collect();
    for (f, hot) in engine.flows.iter().zip(&engine.flow_hot) {
        if !f.outcome.is_fabric_bound() {
            continue;
        }
        let base = hot.plan_base as usize;
        for (pi_idx, _) in f.plans.iter().enumerate() {
            let pi = &engine.plan_infos[base + pi_idx];
            if stage_domain[pi.stage_base as usize] != pi.ccd {
                return false;
            }
            for s in 0..pi.n_stages as usize {
                let d = stage_domain[pi.stage_base as usize + s];
                if let StageRef::Link(l) = engine.flat_stages[pi.stage_base as usize + s].point {
                    if chan_owner[l as usize] != d {
                        // A device stage re-homed the link to the memory
                        // domain; every user must agree.
                        if engine.flat_stages[pi.stage_base as usize + s].device
                            && chan_owner[l as usize]
                                == part.link_owner(LinkId(l)).index(ccd_total) as u32
                        {
                            chan_owner[l as usize] = d;
                        } else {
                            return false;
                        }
                    }
                }
            }
        }
    }

    let shared = Shared {
        plan_infos: engine.plan_infos.clone(),
        flat_stages: engine.flat_stages.clone(),
        stage_domain,
        core_domain,
        dram_model: engine.dram_model,
        cxl_model: engine.cxl_model,
        horizon_ns: engine.horizon_ns,
        warmup_ns: engine.warmup_ns,
        matrix_cols: engine.matrix_cols,
    };

    // Seed the issue loops exactly as the sequential engine does (flow
    // order, then issuer order), so the seeded sequence numbers give the
    // same relative order. `ResetStats` is handled out of band at the
    // warmup boundary instead of holding a sequence number; dropping it
    // shifts every later sequence number by one but changes no ordering.
    let mut sched: DomainScheduler<PEvent> = DomainScheduler::new(n_domains);
    for fi in 0..engine.flows.len() {
        if !engine.flows[fi].outcome.is_fabric_bound() {
            continue;
        }
        let start = engine.flows[fi].spec.start.min(horizon);
        for ci in 0..engine.flows[fi].spec.cores.len() {
            let core = engine.flows[fi].spec.cores[ci].0;
            engine.cores[core as usize].attempt_scheduled = true;
            sched.push(
                shared.core_domain[core as usize] as usize,
                start,
                PEvent::Issue { core },
            );
        }
    }

    let mut states: Vec<DomainState> = (0..n_domains).map(|_| DomainState::fork(engine)).collect();

    #[cfg(test)]
    PARALLEL_RUNS.fetch_add(1, Ordering::SeqCst);

    run_threaded(
        &mut sched,
        &mut states,
        &shared,
        engine.cfg.warmup,
        threads.max(1),
    );

    merge_back(
        engine,
        states,
        &shared,
        &chan_owner,
        iod as usize,
        mem as usize,
    );
    true
}

/// Threaded batch executor: persistent scoped workers, two barriers per
/// batch. The coordinator owns the scheduler — it drains lanes into the
/// per-domain slots, releases the workers, waits for the batch, then
/// replays the logs. Domains are striped over workers round-robin.
fn run_threaded(
    sched: &mut DomainScheduler<PEvent>,
    states: &mut Vec<DomainState>,
    shared: &Shared,
    warmup: SimDuration,
    threads: usize,
) {
    let n = states.len();
    let workers = threads.min(n).max(1);
    let state_cells: Vec<Mutex<DomainState>> = states.drain(..).map(Mutex::new).collect();
    let slot_cells: Vec<Mutex<WorkSlot>> =
        (0..n).map(|_| Mutex::new(WorkSlot::default())).collect();
    let batch_t = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let barrier = Barrier::new(workers + 1);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let (state_cells, slot_cells) = (&state_cells, &slot_cells);
            let (batch_t, done, barrier) = (&batch_t, &done, &barrier);
            scope.spawn(move || loop {
                barrier.wait();
                if done.load(Ordering::SeqCst) {
                    break;
                }
                let tn = batch_t.load(Ordering::SeqCst);
                for d in (w..n).step_by(workers) {
                    // Uncontended: the coordinator only touches these
                    // between barriers, and each domain has one worker.
                    let mut st = state_cells[d].lock().unwrap();
                    let mut slot = slot_cells[d].lock().unwrap();
                    execute_batch(&mut st, shared, d as u32, tn, &mut slot);
                }
                barrier.wait();
            });
        }

        let mut slots: Vec<WorkSlot> = (0..n).map(|_| WorkSlot::default()).collect();
        let mut reset_done = false;
        let warmup_t = warmup.as_nanos();
        while let Some(t) = sched.next_batch_time() {
            let tn = t.as_nanos();
            if !reset_done && tn >= warmup_t {
                for st in &state_cells {
                    st.lock().unwrap().reset_stats();
                }
                reset_done = true;
            }
            for (d, cell) in slot_cells.iter().enumerate() {
                let mut slot = cell.lock().unwrap();
                DomainScheduler::drain_lane_at(&mut sched.lanes_mut()[d], t, &mut slot.drained);
            }
            batch_t.store(tn, Ordering::SeqCst);
            barrier.wait(); // release the workers into the batch
            barrier.wait(); // batch complete
            for (d, cell) in slot_cells.iter().enumerate() {
                let mut slot = cell.lock().unwrap();
                std::mem::swap(&mut *slot, &mut slots[d]);
            }
            commit(sched, &mut slots);
            for (d, cell) in slot_cells.iter().enumerate() {
                let mut slot = cell.lock().unwrap();
                std::mem::swap(&mut *slot, &mut slots[d]);
            }
        }
        if !reset_done {
            for st in &state_cells {
                st.lock().unwrap().reset_stats();
            }
        }
        done.store(true, Ordering::SeqCst);
        barrier.wait();
    });

    states.extend(state_cells.into_iter().map(|c| c.into_inner().unwrap()));
}

/// Replays the batch through the scheduler and clears the slots.
fn commit(sched: &mut DomainScheduler<PEvent>, slots: &mut [WorkSlot]) {
    let batch_seqs: Vec<Vec<u64>> = slots
        .iter_mut()
        .map(|s| std::mem::take(&mut s.seqs))
        .collect();
    let logs: Vec<Vec<EventLog<PEvent>>> = slots
        .iter_mut()
        .map(|s| std::mem::take(&mut s.logs))
        .collect();
    sched.commit_batch(&batch_seqs, logs);
}

/// Executes one domain's slice of a batch: drained events in ascending
/// sequence order, then same-nanosecond local children FIFO to exhaustion,
/// logging every push for the barrier replay.
fn execute_batch(st: &mut DomainState, sh: &Shared, domain: u32, tn: u64, slot: &mut WorkSlot) {
    let now_ns = tn as f64;
    let mut fifo = std::mem::take(&mut slot.fifo);
    for (seq, ev) in slot.drained.drain(..) {
        slot.seqs.push(seq);
        fifo.push_back(ev);
    }
    while let Some(ev) = fifo.pop_front() {
        let mut em = Emitter {
            domain,
            batch_t: tn,
            log: Vec::new(),
            fifo: &mut fifo,
        };
        match ev {
            PEvent::Issue { core } => on_issue(st, sh, &mut em, core, now_ns),
            PEvent::Stage { txn } => on_stage(st, sh, &mut em, txn, now_ns),
            PEvent::Granted { slot } => on_granted(st, sh, &mut em, slot, now_ns),
            PEvent::Complete { txn } => on_complete(st, sh, &mut em, txn, now_ns),
        }
        slot.logs.push(em.log);
    }
    slot.fifo = fifo;
}

// ---------------------------------------------------------------------------
// Event handlers: transliterations of the sequential handlers restricted to
// the eligible configuration space (hardware-default policy, unthrottled
// sequential-pattern core flows, no telemetry attachments). Push order
// within each handler matches the sequential engine exactly — that order is
// what the barrier replay turns back into global sequence numbers.
// ---------------------------------------------------------------------------

fn on_issue(st: &mut DomainState, sh: &Shared, em: &mut Emitter<'_>, core: u32, now_ns: f64) {
    let cs_flow = {
        let cs = &mut st.cores[core as usize];
        cs.attempt_scheduled = false;
        cs.flow
    };
    let Some(fi) = cs_flow else { return };
    let fiu = fi as usize;
    if now_ns >= st.flow_hot[fiu].stop_ns {
        return;
    }

    // Pacing gate: eligible flows are unthrottled, so `next_allowed_ns`
    // only ever lags `now`; the branch is kept for structural parity.
    let next_allowed = st.cores[core as usize].next_allowed_ns;
    if next_allowed > now_ns + 0.5 {
        st.cores[core as usize].attempt_scheduled = true;
        let at = if next_allowed.is_finite() {
            next_allowed
        } else {
            sh.horizon_ns
        };
        let dest = sh.core_domain[core as usize];
        em.schedule_at(at, now_ns, dest, PEvent::Issue { core });
        return;
    }

    // Eligibility excludes temporal writes: direction is fixed per flow.
    let is_write = st.flow_hot[fiu].op == OpKind::WriteNonTemporal;
    {
        let f = &st.flow_hot[fiu];
        let cs = &st.cores[core as usize];
        let core_full = if is_write {
            cs.write_used >= cs.write_cap
        } else {
            cs.read_used >= cs.read_cap
        };
        if core_full {
            st.cores[core as usize].blocked_on_core = true;
            return;
        }
        // For unthrottled flows the per-core caps bound the flow's
        // in-flight count below `budget_max`, so this shard-local check
        // matches the sequential global one: both are always false.
        if f.in_flight >= f.budget_max {
            st.flow_hot[fiu].budget_blocked.push(core);
            return;
        }
    }

    {
        let cs = &mut st.cores[core as usize];
        if is_write {
            cs.write_used += 1;
        } else {
            cs.read_used += 1;
        }
    }
    let plan_idx = {
        let f = &mut st.flow_hot[fiu];
        f.in_flight += 1;
        f.issued += 1;
        let cs = &mut st.cores[core as usize];
        // Eligibility excludes Pattern::Random: no RNG draw here.
        let t = cs.next_target % f.targets as u64;
        cs.next_target += 1;
        f.plan_base + cs.core_pos * f.targets + t as u32
    };
    let txn = Txn {
        flow: fi,
        core,
        plan: plan_idx,
        issue_ns: now_ns,
        waits_ns: 0.0,
        extra_ns: 0.0,
        stage: 0,
        limiter_phase: 0,
        dir_write: is_write,
        live: true,
        span: u32::MAX,
    };

    // Unthrottled (gap 0): the next attempt lands at `now`, exactly as the
    // sequential pacing arithmetic degenerates to.
    st.cores[core as usize].next_allowed_ns = now_ns;
    st.cores[core as usize].attempt_scheduled = true;
    let dest = sh.core_domain[core as usize];
    em.schedule_at(now_ns, now_ns, dest, PEvent::Issue { core });

    let slot = st.alloc_txn(txn);
    advance_limiters(st, sh, em, slot, now_ns);
}

/// Walks the limiter phases; parks in a limiter queue when full. On exit
/// the transaction leaves the slab and starts its stage walk inline.
fn advance_limiters(
    st: &mut DomainState,
    sh: &Shared,
    em: &mut Emitter<'_>,
    slot: u32,
    now_ns: f64,
) {
    if !sh.plan_infos[st.txns[slot as usize].plan as usize].limiters {
        st.txns[slot as usize].limiter_phase = 2;
    }
    loop {
        let (phase, ccx, ccd) = {
            let t = &st.txns[slot as usize];
            let p = &sh.plan_infos[t.plan as usize];
            (t.limiter_phase, p.ccx, p.ccd)
        };
        match phase {
            0 => {
                if st.ccx_limiters[ccx as usize].acquire(slot) {
                    st.txns[slot as usize].limiter_phase = 1;
                } else {
                    return; // parked at CCX
                }
            }
            1 => {
                if let Some(lims) = st.ccd_limiters.as_mut() {
                    if lims[ccd as usize].acquire(slot) {
                        st.txns[slot as usize].limiter_phase = 2;
                    } else {
                        return; // parked at CCD
                    }
                } else {
                    st.txns[slot as usize].limiter_phase = 2;
                }
            }
            _ => {
                let mut txn = st.take_txn(slot);
                txn.live = true;
                txn.waits_ns += now_ns - txn.issue_ns;
                let dest = sh.stage_dest(&txn);
                em.schedule_at(now_ns, now_ns, dest, PEvent::Stage { txn });
                return;
            }
        }
    }
}

fn on_granted(st: &mut DomainState, sh: &Shared, em: &mut Emitter<'_>, slot: u32, now_ns: f64) {
    debug_assert!(st.txns[slot as usize].live);
    st.txns[slot as usize].limiter_phase += 1;
    advance_limiters(st, sh, em, slot, now_ns);
}

fn on_stage(st: &mut DomainState, sh: &Shared, em: &mut Emitter<'_>, mut txn: Txn, now_ns: f64) {
    let dir = if txn.dir_write { Dir::Write } else { Dir::Read };
    let p = sh.plan_infos[txn.plan as usize];
    let s = sh.flat_stages[(p.stage_base + txn.stage as u32) as usize];
    // Device variability draws happen only in the memory domain — the one
    // place the simulation RNG advances — in that domain's execution
    // order, which the replay makes equal to the sequential order.
    let extra = if s.device {
        let model = if p.is_cxl {
            sh.cxl_model
        } else {
            sh.dram_model
        };
        model.extra_service_ns(&mut st.rng)
    } else {
        0.0
    };
    let adm = match s.point {
        StageRef::Link(l) => st.channels[l as usize]
            .as_mut()
            .expect("stage link has a channel")
            .admit(dir, now_ns, s.bytes),
        StageRef::SocketNoc(sk) => st.noc[sk as usize].admit(dir, now_ns, s.bytes),
        StageRef::CxlPort(c) => st.cxl_ports[c as usize].admit(dir, now_ns, s.bytes),
    };
    txn.waits_ns += adm.wait_ns;
    txn.extra_ns += extra;
    if (txn.stage as usize) + 1 < p.n_stages as usize {
        txn.stage += 1;
        let dest = sh.stage_dest(&txn);
        em.schedule_at(adm.depart_ns + extra, now_ns, dest, PEvent::Stage { txn });
    } else {
        let done = (txn.issue_ns + p.unloaded_ns + txn.waits_ns + txn.extra_ns).max(adm.depart_ns);
        let dest = sh.core_domain[txn.core as usize];
        em.schedule_at(done, now_ns, dest, PEvent::Complete { txn });
    }
}

fn on_complete(st: &mut DomainState, sh: &Shared, em: &mut Emitter<'_>, txn: Txn, now_ns: f64) {
    let pi = sh.plan_infos[txn.plan as usize];
    let flow = txn.flow as usize;
    let core = txn.core as usize;

    // Release limiters (CCD first — reverse acquisition order); grants
    // wake parked transactions, which live in this same chiplet's shard.
    if pi.limiters {
        if let Some(lims) = st.ccd_limiters.as_mut() {
            if let Some(next) = lims[pi.ccd as usize].release() {
                em.schedule_at(now_ns, now_ns, em.domain, PEvent::Granted { slot: next });
            }
        }
        if let Some(next) = st.ccx_limiters[pi.ccx as usize].release() {
            em.schedule_at(now_ns, now_ns, em.domain, PEvent::Granted { slot: next });
        }
    }

    {
        let cs = &mut st.cores[core];
        if txn.dir_write {
            cs.write_used -= 1;
        } else {
            cs.read_used -= 1;
        }
    }
    st.flow_hot[flow].in_flight -= 1;

    let lat = pi.unloaded_ns + txn.waits_ns + txn.extra_ns;
    {
        let f = &mut st.flow_hot[flow];
        f.win_lat_sum_ns += lat;
        f.win_lat_n += 1;
    }

    if txn.issue_ns >= sh.warmup_ns && now_ns <= sh.horizon_ns {
        // Eligibility excludes temporal writes, so every completion
        // carries payload.
        let f = &mut st.flow_hot[flow];
        f.completed += 1;
        f.bytes += LINE;
        f.latency.record(SimDuration::from_nanos_f64(lat));
        st.matrix[pi.matrix_src as usize * sh.matrix_cols + pi.matrix_dest as usize] += LINE;
    }

    // Wake the issuing core (its slot freed) and one flow-budget waiter.
    if now_ns < st.flow_hot[flow].stop_ns {
        if st.cores[core].blocked_on_core && !st.cores[core].attempt_scheduled {
            st.cores[core].blocked_on_core = false;
            st.cores[core].attempt_scheduled = true;
            let dest = sh.core_domain[core];
            em.schedule_at(now_ns, now_ns, dest, PEvent::Issue { core: txn.core });
        }
        if let Some(waiter) = st.flow_hot[flow].budget_blocked.pop() {
            if !st.cores[waiter as usize].attempt_scheduled {
                st.cores[waiter as usize].attempt_scheduled = true;
                let dest = sh.core_domain[waiter as usize];
                em.schedule_at(now_ns, now_ns, dest, PEvent::Issue { core: waiter });
            }
        }
    }
}

/// Folds the shards back into the engine: owner domains hand their whole
/// structures back (channels, NoC, CXL ports, cores, RNG); sharded
/// accumulators sum exactly — integer counters, the traffic matrix, and
/// the all-integer latency histograms, merged in domain order.
fn merge_back(
    engine: &mut Engine<'_>,
    mut states: Vec<DomainState>,
    sh: &Shared,
    chan_owner: &[u32],
    iod: usize,
    mem: usize,
) {
    for (fi, hot) in engine.flow_hot.iter_mut().enumerate() {
        for st in &states {
            let s = &st.flow_hot[fi];
            hot.issued += s.issued;
            hot.completed += s.completed;
            hot.bytes += s.bytes;
            hot.in_flight += s.in_flight;
            hot.win_lat_sum_ns += s.win_lat_sum_ns;
            hot.win_lat_n += s.win_lat_n;
            hot.latency.merge(&s.latency);
        }
    }
    for st in &states {
        for (m, s) in engine.matrix.iter_mut().zip(&st.matrix) {
            *m += s;
        }
    }
    for (l, &o) in chan_owner.iter().enumerate() {
        engine.channels[l] = states[o as usize].channels[l].take();
    }
    engine.noc = std::mem::take(&mut states[iod].noc);
    engine.cxl_ports = std::mem::take(&mut states[iod].cxl_ports);
    engine.rng = states[mem].rng.clone();
    for (c, &d) in sh.core_domain.iter().enumerate() {
        if d != u32::MAX {
            engine.cores[c] = states[d as usize].cores[c].clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Engine, EngineConfig};
    use crate::flow::{FlowSpec, Target};
    use chiplet_mem::OpKind;
    use chiplet_sim::{ByteSize, SimTime};
    use chiplet_topology::{CcdId, CoreId, PlatformSpec, Topology};

    /// Runs a flow set at a worker count and returns the serialized
    /// telemetry snapshot — the byte-identity probe. `FORCE_PARALLEL`
    /// makes `workers > 1` spawn real threads even on single-CPU hosts.
    fn run_with_workers(
        topo: &Topology,
        flows: &dyn Fn(&Topology) -> Vec<FlowSpec>,
        cfg: EngineConfig,
        workers: usize,
    ) -> String {
        std::env::set_var("CHIPLET_ENGINE_FORCE_PARALLEL", "1");
        let mut e = Engine::new(topo, cfg.with_workers(workers));
        for f in flows(topo) {
            e.add_flow(f);
        }
        let r = e.run(SimTime::from_micros(10));
        serde_json::to_string(&r.telemetry).expect("telemetry serializes")
    }

    /// Serializes the tests sharing the `PARALLEL_RUNS` coverage counter.
    static COUNTER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn assert_worker_invariant_with(
        topo: &Topology,
        flows: &dyn Fn(&Topology) -> Vec<FlowSpec>,
        expect_parallel: bool,
    ) {
        let _guard = COUNTER_LOCK.lock().unwrap();
        // Default config: DRAM variability on, so the memory-domain RNG
        // ordering is exercised, not just the counters.
        let base = run_with_workers(topo, flows, EngineConfig::default(), 1);
        let before = super::PARALLEL_RUNS.load(std::sync::atomic::Ordering::SeqCst);
        for workers in [2, 4] {
            let par = run_with_workers(topo, flows, EngineConfig::default(), workers);
            assert_eq!(base, par, "workers={workers} diverged from sequential");
        }
        let after = super::PARALLEL_RUNS.load(std::sync::atomic::Ordering::SeqCst);
        let expected = if expect_parallel { 2 } else { 0 };
        assert_eq!(
            after - before,
            expected,
            "unexpected parallel-path coverage"
        );
    }

    fn assert_worker_invariant(topo: &Topology, flows: &dyn Fn(&Topology) -> Vec<FlowSpec>) {
        assert_worker_invariant_with(topo, flows, true);
    }

    #[test]
    fn socket_read_matches_sequential() {
        let topo = Topology::build(&PlatformSpec::epyc_9634());
        assert_worker_invariant(&topo, &|topo| {
            vec![
                FlowSpec::reads("socket", topo.core_ids().collect(), Target::all_dimms(topo))
                    .working_set(ByteSize::from_gib(1))
                    .build(topo),
            ]
        });
    }

    #[test]
    fn mixed_read_write_across_chiplets_matches_sequential() {
        let topo = Topology::build(&PlatformSpec::epyc_7302());
        assert_worker_invariant(&topo, &|topo| {
            let readers: Vec<CoreId> = topo.cores_of_ccd(CcdId(0)).collect();
            let writers: Vec<CoreId> = topo.cores_of_ccd(CcdId(1)).collect();
            vec![
                FlowSpec::reads("readers", readers, Target::all_dimms(topo))
                    .working_set(ByteSize::from_gib(1))
                    .build(topo),
                FlowSpec::reads("writers", writers, Target::all_dimms(topo))
                    .op(OpKind::WriteNonTemporal)
                    .working_set(ByteSize::from_gib(1))
                    .build(topo),
            ]
        });
    }

    #[test]
    fn cxl_flow_matches_sequential() {
        let spec = PlatformSpec::epyc_9634();
        assert!(spec.cxl.is_some(), "9634 platform carries the CXL config");
        let topo = Topology::build(&spec);
        assert_worker_invariant(&topo, &|topo| {
            let ccd0: Vec<CoreId> = topo.cores_of_ccd(CcdId(0)).collect();
            let ccd1: Vec<CoreId> = topo.cores_of_ccd(CcdId(1)).collect();
            vec![
                FlowSpec::reads("cxl", ccd0, Target::Cxl(0))
                    .working_set(ByteSize::from_gib(1))
                    .build(topo),
                FlowSpec::reads("dram", ccd1, Target::all_dimms(topo))
                    .working_set(ByteSize::from_gib(1))
                    .build(topo),
            ]
        });
    }

    #[test]
    fn tracing_config_with_workers_reports_loud_fallback() {
        // The bugfix this pins: tracing made `workers = 4` silently run
        // sequentially. The downgrade must now land in the result, the
        // process-wide log, and (with metrics attached) a volatile counter.
        let topo = Topology::build(&PlatformSpec::epyc_7302());
        let cfg = EngineConfig::default()
            .with_trace_sampling(8)
            .with_workers(4);
        let mut e = Engine::new(&topo, cfg);
        e.add_flow(
            FlowSpec::reads(
                "traced",
                topo.cores_of_ccd(CcdId(0)).collect(),
                Target::all_dimms(&topo),
            )
            .working_set(ByteSize::from_gib(1))
            .build(&topo),
        );
        let r = e.run(SimTime::from_micros(10));
        let fb = r.parallel_fallback.expect("downgrade is recorded");
        assert_eq!(fb.reason, "trace_sampling");
        assert_eq!(fb.requested_workers, 4);
        assert!(
            super::super::take_parallel_fallbacks().contains(&fb),
            "the process-wide log captured the downgrade"
        );
    }

    #[test]
    fn fallback_counter_lands_in_volatile_metrics() {
        let topo = Topology::build(&PlatformSpec::epyc_7302());
        let cfg = EngineConfig::default()
            .with_metrics(chiplet_sim::SimDuration::from_micros(1))
            .with_workers(2);
        let mut e = Engine::new(&topo, cfg);
        e.add_flow(
            FlowSpec::reads(
                "metered",
                topo.cores_of_ccd(CcdId(0)).collect(),
                Target::all_dimms(&topo),
            )
            .working_set(ByteSize::from_gib(1))
            .build(&topo),
        );
        let r = e.run(SimTime::from_micros(10));
        assert_eq!(
            r.parallel_fallback.map(|fb| fb.reason),
            Some("metrics"),
            "metrics attachment downgrades the run"
        );
        let m = r.metrics.expect("metrics were requested");
        assert_eq!(
            m.counter_value("chiplet_engine_fallback", &[("reason", "metrics")]),
            Some(1.0)
        );
        // Volatile: the default (deterministic) dump must not change.
        assert!(!m.to_openmetrics().contains("chiplet_engine_fallback"));
        assert!(m
            .to_openmetrics_with_volatile()
            .contains("chiplet_engine_fallback_total{reason=\"metrics\"}"));
    }

    #[test]
    fn eligible_sequential_run_reports_no_fallback() {
        let topo = Topology::build(&PlatformSpec::epyc_7302());
        let mut e = Engine::new(&topo, EngineConfig::default());
        e.add_flow(
            FlowSpec::reads(
                "plain",
                topo.cores_of_ccd(CcdId(0)).collect(),
                Target::all_dimms(&topo),
            )
            .working_set(ByteSize::from_gib(1))
            .build(&topo),
        );
        let r = e.run(SimTime::from_micros(10));
        assert_eq!(r.parallel_fallback, None, "workers=1 is not a downgrade");
    }

    #[test]
    fn ineligible_config_falls_back_and_still_matches() {
        // A paced (rate-gated) flow is ineligible: `workers = 4` must
        // silently take the sequential loop and produce identical bytes.
        let topo = Topology::build(&PlatformSpec::epyc_7302());
        let flows = |topo: &Topology| {
            vec![FlowSpec::reads(
                "paced",
                topo.cores_of_ccd(CcdId(0)).collect(),
                Target::all_dimms(topo),
            )
            .working_set(ByteSize::from_gib(1))
            .offered(chiplet_sim::Bandwidth::from_gb_per_s(4.0))
            .build(topo)]
        };
        assert_worker_invariant_with(&topo, &flows, false);
    }
}
