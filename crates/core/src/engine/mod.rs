//! The transaction-level chiplet networking engine.
//!
//! The engine composes the topology's capacity points into a closed-loop
//! queueing network and drives it with a deterministic discrete-event loop:
//!
//! * each flow's cores **issue** cacheline transactions, gated by (a) an
//!   optional offered-load pacer with exponential (Poisson) gaps — the
//!   NOP-rate-control analog, (b) per-core MLP budgets (reads) or
//!   write-combining budgets (posted writes), and (c) a per-flow in-flight
//!   budget that scales with offered load (an aggressive sender devotes
//!   proportionally more outstanding-request resources — §3.5's mechanism);
//! * transactions then acquire the CCX (and, on parts that have one, CCD)
//!   **token limiter** (§3.2's queueless traffic-control module, slots
//!   shared between reads and writes);
//! * and walk their [`plan::StagePlan`]: FIFO **bandwidth servers** at the
//!   core port, CCX link, GMI, socket NoC, UMC channel or CXL P-Link, in the
//!   read or write direction;
//! * **completion** releases all budgets and records telemetry.
//!
//! Latency = unloaded route latency + accumulated queueing waits + memory
//! device variability. Nothing in Figures 3–6 is scripted: knees, tails,
//! proportional shares, and interference onsets emerge from this loop.

mod parallel;
pub mod plan;

use std::collections::BTreeMap;

use chiplet_fabric::{Dir, DirectionalChannel, SlotLimiter};
use chiplet_mem::{AccessOutcome, CacheHierarchy, DramServiceModel, Pattern};
use chiplet_sim::stats::{BandwidthTrace, GaugeTrace, LatencyHistogram, SpanCollector};
use chiplet_sim::{
    Bandwidth, ByteSize, DepthHistogram, DetRng, PhaseProfiler, SeriesHandle, SeriesKind,
    SimDuration, SimTime, WheelQueue,
};
use chiplet_topology::{CoreId, DimmId, PlatformKind, Topology};

use crate::flow::{FlowId, FlowSpec, Target};
use crate::telemetry::{
    CapacityPoint, DirStats, FlowTelemetry, LinkTelemetry, MatrixCell, TelemetryReport,
};
use crate::trace::{HopClass, TraceReport};
use crate::traffic::{DenseAllocScratch, ResourceArena, ResourceKey, TrafficPolicy};
use plan::{Stage, StagePlan, StageRef};

const LINE: u64 = 64;

/// Label for the trace-sampling RNG stream derived from the seed.
const TRACE_RNG_LABEL: u64 = 0x0074_7261_6365; // "trace"

/// Completed-span cap: bounds trace memory regardless of run length.
const SPAN_COLLECTOR_CAP: usize = 1 << 20;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// RNG seed; same seed ⇒ bit-identical run.
    pub seed: u64,
    /// Statistics are collected from `warmup` to the run horizon.
    pub warmup: SimDuration,
    /// DRAM service variability; `None` selects by platform (DDR4 for the
    /// 7302, DDR5 for the 9634, deterministic for custom/monolithic).
    pub dram: Option<DramServiceModel>,
    /// CXL device variability; `None` selects the CZ120-class default.
    pub cxl: Option<DramServiceModel>,
    /// Traffic-manager policy.
    pub policy: TrafficPolicy,
    /// In-flight budget headroom for rate-gated flows, × offered BDP.
    /// Larger values let saturated flows queue deeper (a stronger latency
    /// rise at the Figure 3 knee) but also push per-flow budgets into the
    /// hardware-MLP clamp, which flattens Figure 4's demand-proportional
    /// sharing; 1.3 balances the two.
    pub budget_headroom: f64,
    /// Attach the sketch-based profiler (§4 #5): one record per completed
    /// transaction, bounded memory, a [`crate::profiler::ProfileReport`]
    /// on the result.
    pub profile: bool,
    /// Record a per-flow bandwidth time series with this sampling window
    /// (the time-series half of §4 #5's telemetry). Also enables the
    /// per-capacity-point bandwidth and queue-backlog series on
    /// [`LinkTelemetry`].
    pub trace_window: Option<SimDuration>,
    /// Span-level hop tracing: sample 1 in N transactions (`Some(1)` =
    /// every transaction) and record timestamped hop events at every
    /// capacity point they cross. The sampling draw comes from an RNG
    /// stream derived from the seed but independent of the simulation's —
    /// enabling tracing never perturbs results, and the same seed yields
    /// the same sample set. The result carries a
    /// [`crate::trace::TraceReport`].
    pub trace_sampling: Option<u32>,
    /// Attach a [`crate::metrics::MetricsRegistry`] windowing histograms
    /// at this sim-time width: per-link bytes/waits and per-flow
    /// bytes/latency/completions land in it alongside the profiler, and
    /// the result carries the registry for OpenMetrics exposition.
    pub metrics_window: Option<SimDuration>,
    /// Self-profile the engine's own wall time: scoped phase timers around
    /// every event-handler class plus event-queue-depth and
    /// events-per-epoch histograms. The result carries a
    /// [`chiplet_sim::PhaseReport`], and with `metrics_window` set the
    /// phase/queue families land in the registry as VOLATILE series (they
    /// measure host wall-clock, so they are excluded from deterministic
    /// dumps). Off by default: the disabled path reads no clocks.
    pub profile_phases: bool,
    /// Worker threads for the domain-partitioned parallel engine. `1`
    /// (the default) runs the sequential loop; `> 1` runs eligible
    /// configurations on per-chiplet scheduling domains synchronized at
    /// nanosecond batches — byte-identical output for every worker count,
    /// including 1 (see [`parallel`]). Capped to the host's available
    /// parallelism; ineligible configurations silently run sequentially.
    /// The `CHIPLET_ENGINE_WORKERS` environment variable overrides this.
    pub workers: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 42,
            warmup: SimDuration::from_micros(2),
            dram: None,
            cxl: None,
            policy: TrafficPolicy::HardwareDefault,
            budget_headroom: 1.3,
            profile: false,
            trace_window: None,
            trace_sampling: None,
            metrics_window: None,
            profile_phases: false,
            workers: 1,
        }
    }
}

impl EngineConfig {
    /// A config with deterministic (variability-free) memory devices, for
    /// calibration tests.
    pub fn deterministic() -> Self {
        EngineConfig {
            dram: Some(DramServiceModel::deterministic()),
            cxl: Some(DramServiceModel::deterministic()),
            ..Default::default()
        }
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the traffic-manager policy (builder style).
    pub fn with_policy(mut self, policy: TrafficPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables the sketch profiler (builder style).
    pub fn with_profile(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Enables per-flow bandwidth traces (builder style).
    pub fn with_trace(mut self, window: SimDuration) -> Self {
        self.trace_window = Some(window);
        self
    }

    /// Enables span-level hop tracing, sampling 1 in `n` transactions
    /// (builder style). `n` is clamped to at least 1.
    pub fn with_trace_sampling(mut self, n: u32) -> Self {
        self.trace_sampling = Some(n.max(1));
        self
    }

    /// Enables the metrics registry, windowing sketches at `window` of
    /// sim time (builder style).
    pub fn with_metrics(mut self, window: SimDuration) -> Self {
        self.metrics_window = Some(window);
        self
    }

    /// Enables engine self-profiling: phase timers and queue histograms
    /// (builder style).
    pub fn with_phase_profile(mut self) -> Self {
        self.profile_phases = true;
        self
    }

    /// Sets the parallel-engine worker count (builder style); clamped to
    /// at least 1.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Issue {
        core: u32,
    },
    Stage {
        txn: u32,
    },
    Granted {
        txn: u32,
    },
    Complete {
        txn: u32,
    },
    ResetStats,
    Policy,
    /// A flow's demand schedule enters a new piece: re-pace its issuers.
    Demand {
        flow: u32,
    },
}

#[derive(Debug, Clone)]
struct Txn {
    flow: u32,
    core: u32,
    plan: u32,
    issue_ns: f64,
    waits_ns: f64,
    extra_ns: f64,
    stage: u8,
    limiter_phase: u8,
    /// Direction this transaction's data moves (temporal-write flows mix
    /// RFO reads and writebacks).
    dir_write: bool,
    live: bool,
    /// Open span handle when this transaction is trace-sampled
    /// (`u32::MAX` = not sampled).
    span: u32,
}

#[derive(Debug, Clone)]
struct CoreState {
    flow: Option<u32>,
    core_pos: u32,
    read_used: u32,
    write_used: u32,
    read_cap: u32,
    write_cap: u32,
    next_target: u64,
    next_allowed_ns: f64,
    attempt_scheduled: bool,
    blocked_on_core: bool,
    /// Temporal-write flows alternate RFO reads and writebacks.
    next_is_writeback: bool,
}

/// Cold per-flow state: the spec, compiled plans, and everything only the
/// setup, policy, and finish paths touch. The per-event hot loop reads
/// [`FlowHot`] instead.
struct FlowRuntime {
    spec: FlowSpec,
    plans: Vec<StagePlan>,
    outcome: AccessOutcome,
    /// Interned resource footprint for allocator-backed policies: dense
    /// arena index → fraction of the flow's rate crossing that point.
    /// Built once at admission; empty under hardware/BDP policies.
    footprint: Vec<(u32, f64)>,
    /// Lazily resolved metric series handles (flow-labelled families).
    h_completions: Option<SeriesHandle>,
    h_bytes: Option<SeriesHandle>,
    h_latency: Option<SeriesHandle>,
    /// Mean unloaded path latency, ns (the BDP controller's reference).
    mean_unloaded_ns: f64,
    /// Current BDP-adaptive rate, GB/s (None until the controller starts).
    adaptive_rate: Option<f64>,
}

/// Hot per-flow state: one compact struct per flow holding exactly the
/// fields the issue/complete handlers read and write, so the steady-state
/// loop touches one cache line instead of walking [`FlowRuntime`]. Under
/// parallel execution this is the flow's per-domain *shard*: every field
/// is either immutable during the run or an exactly-mergeable accumulator
/// (integer counters, an all-integer histogram, windowed byte sums).
#[derive(Debug, Clone)]
struct FlowHot {
    /// Effective stop time (ns, clamped to the horizon); set in `run`.
    stop_ns: f64,
    /// Mean inter-issue gap per core, ns; 0 = unthrottled.
    gap_mean_ns: f64,
    /// First global plan id of this flow (see [`PlanInfo`]); set in `run`.
    plan_base: u32,
    /// Target elements per issuer (plans per core).
    targets: u32,
    budget_max: u32,
    in_flight: u32,
    op: chiplet_mem::OpKind,
    pattern: Pattern,
    issued: u64,
    completed: u64,
    bytes: u64,
    /// Measurement window since the last BDP control tick.
    win_lat_sum_ns: f64,
    win_lat_n: u64,
    budget_blocked: Vec<u32>,
    latency: LatencyHistogram,
    trace: Option<chiplet_sim::stats::BandwidthTrace>,
}

/// Immutable per-plan hot record, flattened at run start: one entry per
/// (flow × plan) pair, indexed by the global plan id in [`Txn::plan`].
/// Stage walks read this table and [`Engine::flat_stages`] instead of
/// chasing `flows[f].plans[p].stages[s]` through three heap hops.
#[derive(Debug, Clone, Copy)]
struct PlanInfo {
    /// First index into [`Engine::flat_stages`].
    stage_base: u32,
    n_stages: u8,
    is_cxl: bool,
    limiters: bool,
    ccx: u32,
    ccd: u32,
    /// Traffic-matrix row (the CCD, or the NIC's device row).
    matrix_src: u32,
    matrix_dest: u32,
    unloaded_ns: f64,
}

/// One recorded parallel→sequential downgrade: the run asked for more
/// than one engine worker but the engine took the sequential loop anyway.
/// The output is byte-identical either way — the downgrade only costs
/// speed — but it used to happen *silently*, which made `--engine-workers`
/// look like a no-op. It is now recorded here, in a volatile
/// `chiplet_engine_fallback_total{reason=…}` counter when metrics are
/// attached, and in the process-wide log behind
/// [`take_parallel_fallbacks`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelFallback {
    /// The worker count the configuration asked for.
    pub requested_workers: usize,
    /// Why the parallel path was unsound (stable snake_case token:
    /// `policy`, `profiler`, `phase_profiler`, `trace_window`,
    /// `trace_sampling`, `metrics`, `paced_flow`, `nic_dma`,
    /// `temporal_write`, `paced_issue`, `random_pattern`,
    /// `uncapped_stage`, `partition`, or `single_thread_host`).
    pub reason: &'static str,
}

/// Process-wide fallback log: engines are constructed deep inside backends
/// and studies, so CLIs drain this after a run to warn on stderr instead
/// of threading the downgrade through every report type (whose serialized
/// bytes are pinned by goldens). Bounded; oldest entries win.
static FALLBACK_LOG: std::sync::Mutex<Vec<ParallelFallback>> = std::sync::Mutex::new(Vec::new());
const FALLBACK_LOG_CAP: usize = 1024;

/// Drains every parallel→sequential downgrade recorded since the last
/// call (any thread, any engine). The `chiplet-scenario` CLI uses this to
/// print a loud stderr warning when `--engine-workers N` had no effect.
pub fn take_parallel_fallbacks() -> Vec<ParallelFallback> {
    std::mem::take(&mut *FALLBACK_LOG.lock().expect("fallback log poisoned"))
}

std::thread_local! {
    /// Per-thread capture sink for [`capture_parallel_fallbacks`]. `None`
    /// outside a capture scope.
    static FALLBACK_CAPTURE: std::cell::RefCell<Option<Vec<ParallelFallback>>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs `f` with a **thread-local** fallback capture active and returns its
/// result together with every parallel→sequential downgrade recorded *by
/// this thread* during the call. Unlike [`take_parallel_fallbacks`] (a
/// process-wide drain that mixes concurrent runs), this attributes each
/// downgrade to the exact run that caused it — the serving daemon uses it
/// to stamp per-request fallback reasons into its access log and flight
/// recorder. The engine records the downgrade on the thread that calls
/// [`Engine::run`] (before any worker threads spawn), so a capture around
/// the run sees every downgrade of that run and no other's. The
/// process-wide log still receives the entries; capture only observes.
/// Nested captures are not supported — the inner scope wins.
pub fn capture_parallel_fallbacks<T>(f: impl FnOnce() -> T) -> (T, Vec<ParallelFallback>) {
    FALLBACK_CAPTURE.with(|c| *c.borrow_mut() = Some(Vec::new()));
    let out = f();
    let captured = FALLBACK_CAPTURE
        .with(|c| c.borrow_mut().take())
        .unwrap_or_default();
    (out, captured)
}

fn record_parallel_fallback(fb: ParallelFallback) {
    FALLBACK_CAPTURE.with(|c| {
        if let Some(captured) = c.borrow_mut().as_mut() {
            captured.push(fb);
        }
    });
    let mut log = FALLBACK_LOG.lock().expect("fallback log poisoned");
    if log.len() < FALLBACK_LOG_CAP {
        log.push(fb);
    }
}

/// Per-flow and per-link results of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-flow outcomes, in flow-addition order.
    pub flows: Vec<FlowTelemetry>,
    /// The `/proc/chiplet-net` snapshot.
    pub telemetry: TelemetryReport,
    /// The measured window (horizon − warmup).
    pub window: SimDuration,
    /// The sketch profiler's output, when [`EngineConfig::profile`] was set.
    pub profile: Option<crate::profiler::ProfileReport>,
    /// Sampled span traces, when [`EngineConfig::trace_sampling`] was set.
    pub trace: Option<TraceReport>,
    /// The metrics registry, when [`EngineConfig::metrics_window`] was set.
    pub metrics: Option<crate::metrics::MetricsRegistry>,
    /// The engine's own phase-timer report, when
    /// [`EngineConfig::profile_phases`] was set. Wall-clock values —
    /// execution-dependent, never part of deterministic output.
    pub phases: Option<chiplet_sim::PhaseReport>,
    /// Set when more than one engine worker was requested but the run took
    /// the sequential loop anyway (ineligible dynamics, a non-domain-local
    /// partition, or a single-thread host). `None` when the parallel path
    /// ran, or when the run never asked for parallelism.
    pub parallel_fallback: Option<ParallelFallback>,
}

impl RunResult {
    /// Looks a flow up by name.
    pub fn flow(&self, name: &str) -> Option<&FlowTelemetry> {
        self.flows.iter().find(|f| f.name == name)
    }
}

/// The engine. Borrowing the topology keeps runs cheap to set up; one
/// engine executes one run.
pub struct Engine<'t> {
    topo: &'t Topology,
    cfg: EngineConfig,
    rng: DetRng,
    queue: WheelQueue<Event>,
    channels: Vec<Option<DirectionalChannel>>,
    /// Per-socket NoC routing capacity.
    noc: Vec<DirectionalChannel>,
    cxl_ports: Vec<DirectionalChannel>,
    ccx_limiters: Vec<SlotLimiter<u32>>,
    ccd_limiters: Option<Vec<SlotLimiter<u32>>>,
    flows: Vec<FlowRuntime>,
    /// Hot per-flow shards, indexed like `flows`.
    flow_hot: Vec<FlowHot>,
    /// Flattened plan table (one entry per flow × plan), built in `run`.
    plan_infos: Vec<PlanInfo>,
    /// All plans' stages, contiguous; see [`PlanInfo::stage_base`].
    flat_stages: Vec<Stage>,
    cores: Vec<CoreState>,
    txns: Vec<Txn>,
    free_txns: Vec<u32>,
    /// Dense traffic matrix, row-major: `matrix[src * matrix_cols + dest]`.
    /// Rows are compute chiplets then NICs; columns UMCs then CXL devices.
    matrix: Vec<u64>,
    matrix_cols: usize,
    /// Dense resource arena for the traffic-manager allocator: every
    /// capacity point crossed by any admitted flow, interned at admission.
    arena: ResourceArena,
    /// Reusable allocator state; epochs whose active set and demand bits
    /// match the previous solve skip the solver entirely.
    policy: PolicyScratch,
    dram_model: DramServiceModel,
    cxl_model: DramServiceModel,
    horizon_ns: f64,
    warmup_ns: f64,
    cache: CacheHierarchy,
    profiler: Option<crate::profiler::Profiler>,
    /// Span collector for 1-in-N hop tracing (`trace_sampling`).
    spans: Option<SpanCollector>,
    /// Sampling RNG: derived from the seed, independent of `rng`, so
    /// enabling tracing never perturbs simulation results.
    trace_rng: DetRng,
    /// Per-capacity-point bandwidth/backlog series (`trace_window`),
    /// indexed link-id first, then sockets, then CXL ports.
    point_traces: Option<Vec<PointSeries>>,
    /// The metrics registry (`metrics_window`), fed at every admission and
    /// completion; `point_labels` names capacity points in the same
    /// link-then-socket-then-CXL order as `point_traces`.
    metrics: Option<crate::metrics::MetricsRegistry>,
    point_labels: Vec<String>,
    /// Lazily resolved `(bytes, wait)` series handles per capacity point ×
    /// direction (`[read, write]`); empty when metrics are off.
    link_handles: Vec<[Option<(SeriesHandle, SeriesHandle)>; 2]>,
    /// The parallel→sequential downgrade of this run, if any; moved into
    /// [`RunResult::parallel_fallback`] by `finish`.
    fallback: Option<ParallelFallback>,
}

/// Reusable buffers for the traffic-manager recomputation path plus the
/// incremental-epoch memo. Steady-state epochs allocate nothing.
#[derive(Default)]
struct PolicyScratch {
    active: Vec<u32>,
    demands: Vec<f64>,
    rates: Vec<Bandwidth>,
    dense: DenseAllocScratch,
    /// Active set and demand bit patterns of the last solved epoch; when
    /// both match, the equilibrium — and every gap — is unchanged.
    last_active: Vec<u32>,
    last_demand_bits: Vec<u64>,
    valid: bool,
}

/// Windowed time series for one capacity point.
struct PointSeries {
    read: BandwidthTrace,
    write: BandwidthTrace,
    /// Backlog (ns of queued service) observed at each admission.
    depth: GaugeTrace,
}

impl PointSeries {
    fn new(window: SimDuration) -> Self {
        PointSeries {
            read: BandwidthTrace::new(window),
            write: BandwidthTrace::new(window),
            depth: GaugeTrace::new(window),
        }
    }
}

impl<'t> Engine<'t> {
    /// Creates an engine over a topology.
    pub fn new(topo: &'t Topology, cfg: EngineConfig) -> Self {
        let spec = topo.spec();
        let channels = topo
            .links()
            .iter()
            .map(|l| {
                if l.read_cap.is_some() || l.write_cap.is_some() {
                    Some(DirectionalChannel::new(l.read_cap, l.write_cap))
                } else {
                    None
                }
            })
            .collect();
        let noc: Vec<DirectionalChannel> = (0..spec.socket_count)
            .map(|_| DirectionalChannel::new(Some(spec.caps.noc_read), Some(spec.caps.noc_write)))
            .collect();
        let cxl_ports = match &spec.cxl {
            Some(cxl) => (0..topo.ccd_total())
                .map(|_| DirectionalChannel::new(Some(cxl.ccd_read), Some(cxl.ccd_write)))
                .collect(),
            None => Vec::new(),
        };

        // Limiter tokens sized to the *loaded* BDP of the chiplet egress:
        // capacity × (unloaded latency + 3 × the module's max queueing
        // delay). Below saturation the pool is transparent; once the read
        // direction saturates, tokens exhaust and the shared pool
        // backpressures everything behind it — including writes, which is
        // the paper's within-chiplet interference asymmetry (Figure 6).
        let base_ns = spec.dram_latency_ns(chiplet_topology::DimmPosition::Near);
        let ccx_tokens = derive_limiter_tokens(
            base_ns,
            spec.traffic_ctrl.ccx_max_queue_ns,
            spec.caps.ccx_read,
            spec.cores_per_ccx * spec.mlp.core_read_outstanding,
        );
        let ccx_limiters = (0..topo.ccx_total())
            .map(|_| SlotLimiter::new(ccx_tokens))
            .collect();
        let ccd_limiters = spec.traffic_ctrl.ccd_max_queue_ns.map(|q_ns| {
            let tokens = derive_limiter_tokens(
                base_ns,
                q_ns,
                spec.caps.gmi_read,
                spec.cores_per_ccd() * spec.mlp.core_read_outstanding,
            );
            (0..topo.ccd_total())
                .map(|_| SlotLimiter::new(tokens))
                .collect()
        });

        let dram_model = cfg.dram.unwrap_or(match spec.kind {
            PlatformKind::Epyc7302 => DramServiceModel::ddr4(),
            PlatformKind::Epyc9634 => DramServiceModel::ddr5(),
            _ => DramServiceModel::deterministic(),
        });
        let cxl_model = cfg.cxl.unwrap_or(DramServiceModel::cxl());
        let rng = DetRng::seed_from_u64(cfg.seed);
        let cache = CacheHierarchy::from_spec(&spec.cache);
        // The profiler's sketch hashers derive from the run seed, so the
        // same seed yields a byte-identical ProfileReport.
        let profiler = cfg
            .profile
            .then(|| crate::profiler::Profiler::with_seed(cfg.seed));
        let trace_rng = rng.derive(TRACE_RNG_LABEL);
        let spans = cfg
            .trace_sampling
            .map(|_| SpanCollector::new(SPAN_COLLECTOR_CAP));
        let n_points = topo.links().len() + noc.len() + cxl_ports.len();
        let point_traces = cfg
            .trace_window
            .map(|w| (0..n_points).map(|_| PointSeries::new(w)).collect());
        let metrics = cfg.metrics_window.map(|w| {
            let mut m = crate::metrics::MetricsRegistry::with_window(w);
            describe_engine_metrics(&mut m);
            m
        });
        let point_labels = if metrics.is_some() {
            let mut v: Vec<String> = (0..topo.links().len())
                .map(|l| format!("link{l}"))
                .collect();
            v.extend((0..noc.len()).map(|sk| format!("noc{sk}")));
            v.extend((0..cxl_ports.len()).map(|c| format!("cxl{c}")));
            v
        } else {
            Vec::new()
        };
        let link_handles = if metrics.is_some() {
            vec![[None, None]; n_points]
        } else {
            Vec::new()
        };
        // Matrix rows: compute chiplets then NIC DMA engines; columns
        // cover both DIMM indices and `umc_count + device` CXL dests.
        let matrix_rows = (topo.ccd_total() + topo.nic_count()) as usize;
        let matrix_cols = (topo
            .dimm_count()
            .max(spec.mem.umc_count + topo.cxl_device_count())) as usize;

        Engine {
            topo,
            cfg,
            rng,
            queue: WheelQueue::new(),
            channels,
            noc,
            cxl_ports,
            ccx_limiters,
            ccd_limiters,
            flows: Vec::new(),
            flow_hot: Vec::new(),
            plan_infos: Vec::new(),
            flat_stages: Vec::new(),
            // Issuer slots: one per core, plus one per NIC DMA engine
            // (indices ≥ core_count address the NICs).
            cores: vec![
                CoreState {
                    flow: None,
                    core_pos: 0,
                    read_used: 0,
                    write_used: 0,
                    read_cap: 0,
                    write_cap: 0,
                    next_target: 0,
                    next_allowed_ns: 0.0,
                    attempt_scheduled: false,
                    blocked_on_core: false,
                    next_is_writeback: false,
                };
                (topo.core_count() + topo.nic_count()) as usize
            ],
            txns: Vec::new(),
            free_txns: Vec::new(),
            matrix: vec![0; matrix_rows * matrix_cols],
            matrix_cols,
            arena: ResourceArena::new(),
            policy: PolicyScratch::default(),
            dram_model,
            cxl_model,
            horizon_ns: 0.0,
            warmup_ns: 0.0,
            cache,
            profiler,
            spans,
            trace_rng,
            point_traces,
            metrics,
            point_labels,
            link_handles,
            fallback: None,
        }
    }

    /// Registers a flow. Each core may carry at most one flow.
    ///
    /// # Panics
    ///
    /// Panics if a core is claimed twice.
    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        let id = FlowId(self.flows.len() as u32);
        let topo = self.topo;
        let pspec = topo.spec();

        let outcome = AccessOutcome::resolve(&self.cache, spec.op, spec.working_set);

        // Compile plans: per issuer × target element.
        let (plans, targets): (Vec<StagePlan>, u32) = match (&spec.target, spec.nic) {
            (Target::Dimms(ds), Some(nic)) => {
                let plans = ds
                    .iter()
                    .map(|&d| StagePlan::nic_to_dimm(topo, nic, d))
                    .collect();
                (plans, ds.len() as u32)
            }
            (Target::Dimms(ds), None) => {
                let mut plans = Vec::with_capacity(spec.cores.len() * ds.len());
                for &c in &spec.cores {
                    for &d in ds {
                        plans.push(StagePlan::to_dimm(topo, c, d));
                    }
                }
                (plans, ds.len() as u32)
            }
            (Target::Cxl(dev), None) => {
                let plans = spec
                    .cores
                    .iter()
                    .map(|&c| StagePlan::to_cxl(topo, c, *dev))
                    .collect();
                (plans, 1)
            }
            (Target::Cxl(_), Some(_)) => unreachable!("FlowBuilder rejects NIC→CXL"),
        };
        let mean_unloaded_ns =
            plans.iter().map(|p| p.unloaded_ns).sum::<f64>() / plans.len().max(1) as f64;
        // (mean_unloaded_ns feeds the in-flight budget below.)

        // Per-core slot budgets by operation and destination class.
        let is_cxl = spec.target.is_cxl();
        let read_cap = if is_cxl {
            pspec.mlp.cxl_core_read_outstanding
        } else {
            pspec.mlp.core_read_outstanding
        };
        let write_cap = if is_cxl {
            let cxl = pspec.cxl.as_ref().expect("cxl target on cxl platform");
            let lat = pspec.cxl_latency_ns().expect("cxl latency");
            ((cxl.core_write.as_gb_per_s() * lat / LINE as f64).ceil() as u32).max(1)
        } else {
            pspec.mlp.core_write_outstanding
        };
        let mlp = Pattern::effective_mlp(spec.pattern, read_cap);

        for (pos, &c) in spec.cores.iter().enumerate() {
            let cs = &mut self.cores[c.index()];
            assert!(
                cs.flow.is_none(),
                "core {c} already belongs to another flow"
            );
            cs.flow = Some(id.0);
            cs.core_pos = pos as u32;
            cs.read_cap = if spec.op.is_write() { read_cap } else { mlp };
            cs.write_cap = write_cap;
        }
        if let Some(nic) = spec.nic {
            let outstanding = topo
                .spec()
                .nic
                .as_ref()
                .expect("NIC flow on NIC platform")
                .outstanding;
            let issuer = topo.core_count() as usize + nic as usize;
            let cs = &mut self.cores[issuer];
            assert!(cs.flow.is_none(), "NIC {nic} already belongs to a flow");
            cs.flow = Some(id.0);
            cs.core_pos = 0;
            cs.read_cap = outstanding;
            cs.write_cap = outstanding;
        }

        let hw_budget = if spec.nic.is_some() {
            topo.spec().nic.as_ref().map(|n| n.outstanding).unwrap_or(1)
        } else {
            spec.cores.len() as u32 * if spec.op.is_write() { write_cap } else { mlp }
        };
        let budget_max = match spec.peak_demand() {
            Some(bw) => {
                let bdp_lines =
                    (bw.as_gb_per_s() * mean_unloaded_ns * self.cfg.budget_headroom) / LINE as f64;
                (bdp_lines.ceil() as u32).clamp(2, hw_budget.max(2))
            }
            None => hw_budget.max(1),
        };
        let gap_mean_ns = match &spec.demand {
            None => gap_from_rate(spec.offered_per_core()),
            Some(_) => demand_gap(spec.demand_per_issuer_at(spec.start)),
        };

        // Allocator-backed policies: intern the flow's resource footprint
        // into the dense arena once, here, instead of re-deriving it from
        // plans × stages at every reallocation epoch. Interleaving spreads
        // the flow evenly over its plans, so a point crossed by k of the
        // flow's n plans carries k/n of its rate.
        let footprint = match self.cfg.policy {
            TrafficPolicy::MaxMinFair
            | TrafficPolicy::WeightedFair { .. }
            | TrafficPolicy::RateLimit { .. } => {
                let dir = if spec.op.is_write() {
                    Dir::Write
                } else {
                    Dir::Read
                };
                let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
                for p in &plans {
                    for s in &p.stages {
                        if let Some(cap) = self.capacity_of(s.point, dir) {
                            let idx = self.arena.set_capacity(resource_key(s.point, dir), cap);
                            *counts.entry(idx).or_insert(0) += 1;
                        }
                    }
                }
                let n_plans = plans.len().max(1) as f64;
                counts
                    .into_iter()
                    .map(|(idx, c)| (idx, c as f64 / n_plans))
                    .collect()
            }
            _ => Vec::new(),
        };

        self.flow_hot.push(FlowHot {
            stop_ns: f64::INFINITY,
            gap_mean_ns,
            plan_base: 0,
            targets,
            budget_max,
            in_flight: 0,
            op: spec.op,
            pattern: spec.pattern,
            issued: 0,
            completed: 0,
            bytes: 0,
            win_lat_sum_ns: 0.0,
            win_lat_n: 0,
            budget_blocked: Vec::new(),
            latency: LatencyHistogram::new(),
            trace: self
                .cfg
                .trace_window
                .map(chiplet_sim::stats::BandwidthTrace::new),
        });
        self.flows.push(FlowRuntime {
            spec,
            plans,
            outcome,
            footprint,
            h_completions: None,
            h_bytes: None,
            h_latency: None,
            mean_unloaded_ns,
            adaptive_rate: None,
        });
        id
    }

    /// Runs the simulation to `horizon` and returns results for the
    /// measured window `[warmup, horizon]`.
    ///
    /// # Panics
    ///
    /// Panics when the horizon does not exceed the warmup.
    pub fn run(mut self, horizon: SimTime) -> RunResult {
        assert!(
            horizon.as_nanos() > self.cfg.warmup.as_nanos(),
            "horizon must exceed warmup"
        );
        self.horizon_ns = horizon.as_nanos() as f64;
        self.warmup_ns = self.cfg.warmup.as_nanos() as f64;

        // Flatten the per-flow plan lists into the global hot tables: the
        // event handlers index `plan_infos`/`flat_stages` by `Txn::plan`
        // alone, never walking `flows[f].plans[p].stages[s]`.
        self.plan_infos.clear();
        self.flat_stages.clear();
        let ccd_total = self.topo.ccd_total();
        for fi in 0..self.flows.len() {
            self.flow_hot[fi].plan_base = self.plan_infos.len() as u32;
            self.flow_hot[fi].stop_ns = self.flows[fi].spec.stop_or(horizon).as_nanos() as f64;
            let nic = self.flows[fi].spec.nic;
            for p in &self.flows[fi].plans {
                self.plan_infos.push(PlanInfo {
                    stage_base: self.flat_stages.len() as u32,
                    n_stages: p.stages.len() as u8,
                    is_cxl: p.is_cxl,
                    limiters: p.limiters,
                    ccx: p.ccx,
                    ccd: p.ccd,
                    matrix_src: if p.ccd == u32::MAX {
                        // Device rows sit after the compute chiplets.
                        ccd_total + nic.unwrap_or(0)
                    } else {
                        p.ccd
                    },
                    matrix_dest: p.matrix_dest,
                    unloaded_ns: p.unloaded_ns,
                });
                self.flat_stages.extend_from_slice(&p.stages);
            }
        }

        // Domain-partitioned parallel path: taken only when requested
        // (`workers > 1`), the configuration's dynamics are provably
        // domain-local, and either real hardware parallelism exists or the
        // batch machinery was explicitly forced (determinism tests). The
        // fallback — and every other configuration — is the sequential
        // loop below; both produce byte-identical results. A requested-
        // but-downgraded run is recorded LOUDLY: in the result, in a
        // volatile counter when metrics are attached, and in the
        // process-wide log CLIs drain for stderr warnings.
        let workers = parallel::requested_workers(&self.cfg);
        if workers > 1 {
            let downgrade = match self.parallel_ineligible_reason() {
                Some(reason) => Some(reason),
                None => {
                    let avail = std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1);
                    // Forcing skips the hardware clamp too, so single-CPU
                    // hosts exercise the threaded barrier protocol in tests.
                    let threads = if parallel::force_parallel() {
                        workers
                    } else {
                        workers.min(avail)
                    };
                    if threads <= 1 {
                        Some("single_thread_host")
                    } else if parallel::run_parallel(&mut self, horizon, threads) {
                        let prof = PhaseProfiler::disabled();
                        return self.finish(
                            horizon,
                            &prof,
                            &DepthHistogram::new(),
                            &DepthHistogram::new(),
                        );
                    } else {
                        // The topology's stage routing is not domain-local
                        // (e.g. the monolithic baseline's uncapped egress).
                        Some("partition")
                    }
                }
            };
            if let Some(reason) = downgrade {
                let fb = ParallelFallback {
                    requested_workers: workers,
                    reason,
                };
                self.fallback = Some(fb);
                record_parallel_fallback(fb);
                if let Some(m) = self.metrics.as_mut() {
                    // Volatile: fallback depends on the host and requested
                    // worker count, never on simulated dynamics, so it must
                    // stay out of the deterministic default dumps.
                    m.describe_volatile(
                        "chiplet_engine_fallback",
                        crate::metrics::MetricKind::Counter,
                        "Runs that requested parallel engine workers but fell \
                         back to the sequential loop, by reason.",
                    );
                    m.counter_add("chiplet_engine_fallback", &[("reason", reason)], 1.0);
                }
            }
        }

        self.queue.push(
            SimTime::from_nanos(self.cfg.warmup.as_nanos()),
            Event::ResetStats,
        );

        // BDP-adaptive control: periodic ticks across the whole run.
        if let TrafficPolicy::BdpAdaptive { interval_ns, .. } = self.cfg.policy {
            let mut t = interval_ns.max(100);
            while t < horizon.as_nanos() {
                self.queue.push(SimTime::from_nanos(t), Event::Policy);
                t += interval_ns.max(100);
            }
        }

        // Traffic-manager recomputation points: every distinct flow
        // start/stop boundary, plus every demand-schedule piece boundary.
        if self.cfg.policy != TrafficPolicy::HardwareDefault {
            let mut boundaries: Vec<u64> = self
                .flows
                .iter()
                .flat_map(|f| [f.spec.start.as_nanos(), f.spec.stop_or(horizon).as_nanos()])
                .filter(|&t| t < horizon.as_nanos())
                .collect();
            for f in &self.flows {
                if let Some(sched) = &f.spec.demand {
                    let stop = f.spec.stop_or(horizon).as_nanos();
                    boundaries.extend(
                        sched
                            .pieces()
                            .iter()
                            .map(|(from, _)| from.as_nanos())
                            .filter(|&t| t > f.spec.start.as_nanos() && t < stop),
                    );
                }
            }
            boundaries.sort_unstable();
            boundaries.dedup();
            for t in boundaries {
                self.queue.push(SimTime::from_nanos(t), Event::Policy);
            }
        }

        // Demand-schedule piece boundaries: each one re-paces the flow's
        // issuers (after any same-instant policy recomputation). Split
        // borrows (flows shared, queue exclusive) keep this clone-free.
        let flows = &self.flows;
        let queue = &mut self.queue;
        for (fi, f) in flows.iter().enumerate() {
            let Some(sched) = f.spec.demand.as_ref() else {
                continue;
            };
            let stop = f.spec.stop_or(horizon);
            let mut t = f.spec.start;
            while let Some(next) = sched.next_change_after(t) {
                if next >= stop {
                    break;
                }
                queue.push(next, Event::Demand { flow: fi as u32 });
                t = next;
            }
        }

        // Kick off issue loops (analytic cache-resident flows excluded).
        for fi in 0..self.flows.len() {
            // DMA flows always hit the fabric regardless of working set.
            let fabric =
                self.flows[fi].outcome.is_fabric_bound() || self.flows[fi].spec.nic.is_some();
            if fabric {
                let start = self.flows[fi].spec.start.min(horizon);
                let issuers: Vec<u32> = if let Some(nic) = self.flows[fi].spec.nic {
                    vec![self.topo.core_count() + nic]
                } else {
                    self.flows[fi].spec.cores.iter().map(|c| c.0).collect()
                };
                for issuer in issuers {
                    self.cores[issuer as usize].attempt_scheduled = true;
                    self.queue.push(start, Event::Issue { core: issuer });
                }
            }
        }

        // Self-profiling (`profile_phases`): phase timers around every
        // handler class plus an event-queue-depth histogram (sampled every
        // 1024 pops) and an events-per-epoch histogram (an epoch is the
        // stretch between policy recomputations). Disabled, `start()`
        // returns `None` without reading the clock.
        let mut prof = if self.cfg.profile_phases {
            PhaseProfiler::enabled()
        } else {
            PhaseProfiler::disabled()
        };
        let ph_issue = prof.register("engine/issue");
        let ph_stage = prof.register("engine/stage");
        let ph_granted = prof.register("engine/granted");
        let ph_complete = prof.register("engine/complete");
        let ph_reset = prof.register("engine/reset-stats");
        let ph_policy = prof.register("engine/policy");
        let ph_demand = prof.register("engine/demand");
        let mut queue_depth = DepthHistogram::new();
        let mut epoch_events = DepthHistogram::new();
        let mut in_epoch: u64 = 0;
        let mut pops: u64 = 0;
        // One clock read per event: `lap` charges everything since the
        // previous lap (pop + dispatch + handler) to the handled phase.
        let mut mark = prof.start();
        while let Some(ev) = self.queue.pop() {
            let now_ns = ev.at.as_nanos() as f64;
            if self.cfg.profile_phases {
                pops += 1;
                in_epoch += 1;
                if pops & 1023 == 0 {
                    queue_depth.record(self.queue.len() as u64);
                }
            }
            match ev.payload {
                Event::Issue { core } => {
                    self.on_issue(core, now_ns);
                    prof.lap(ph_issue, &mut mark);
                }
                Event::Stage { txn } => {
                    self.on_stage(txn, now_ns);
                    prof.lap(ph_stage, &mut mark);
                }
                Event::Granted { txn } => {
                    self.on_granted(txn, now_ns);
                    prof.lap(ph_granted, &mut mark);
                }
                Event::Complete { txn } => {
                    self.on_complete(txn, now_ns);
                    prof.lap(ph_complete, &mut mark);
                }
                Event::ResetStats => {
                    self.reset_stats();
                    prof.lap(ph_reset, &mut mark);
                }
                Event::Policy => {
                    self.recompute_policy(now_ns, horizon);
                    prof.lap(ph_policy, &mut mark);
                    if self.cfg.profile_phases {
                        epoch_events.record(in_epoch);
                        in_epoch = 0;
                    }
                }
                Event::Demand { flow } => {
                    self.on_demand(flow, now_ns);
                    prof.lap(ph_demand, &mut mark);
                }
            }
        }
        if self.cfg.profile_phases && in_epoch > 0 {
            epoch_events.record(in_epoch);
        }

        self.finish(horizon, &prof, &queue_depth, &epoch_events)
    }

    fn reset_stats(&mut self) {
        for ch in self.channels.iter_mut().flatten() {
            ch.reset_stats();
        }
        for ch in &mut self.noc {
            ch.reset_stats();
        }
        for ch in &mut self.cxl_ports {
            ch.reset_stats();
        }
    }

    fn schedule_at(&mut self, ns: f64, now_ns: f64, ev: Event) {
        let at = ns.max(now_ns).ceil() as u64;
        self.queue.push(SimTime::from_nanos(at), ev);
    }

    fn on_issue(&mut self, core: u32, now_ns: f64) {
        let cs_flow = {
            let cs = &mut self.cores[core as usize];
            cs.attempt_scheduled = false;
            cs.flow
        };
        let Some(fi) = cs_flow else { return };
        if now_ns >= self.flow_hot[fi as usize].stop_ns {
            return;
        }

        // Pacing gate. A paused flow (zero-demand schedule piece) parks at
        // the horizon; a Demand event re-kicks it earlier.
        let next_allowed = self.cores[core as usize].next_allowed_ns;
        if next_allowed > now_ns + 0.5 {
            self.cores[core as usize].attempt_scheduled = true;
            let at = if next_allowed.is_finite() {
                next_allowed
            } else {
                self.horizon_ns
            };
            self.schedule_at(at, now_ns, Event::Issue { core });
            return;
        }

        // Per-transaction direction: reads and NT writes are uniform;
        // temporal (cached) writes alternate an RFO read with a writeback —
        // each store moves the line twice across the fabric (§3.1's reason
        // for measuring with non-temporal writes).
        let op = self.flow_hot[fi as usize].op;
        let is_write = match op {
            chiplet_mem::OpKind::Read => false,
            chiplet_mem::OpKind::WriteNonTemporal => true,
            chiplet_mem::OpKind::WriteTemporal => self.cores[core as usize].next_is_writeback,
        };
        {
            let f = &self.flow_hot[fi as usize];
            let cs = &self.cores[core as usize];
            let core_full = if is_write {
                cs.write_used >= cs.write_cap
            } else {
                cs.read_used >= cs.read_cap
            };
            if core_full {
                self.cores[core as usize].blocked_on_core = true;
                return;
            }
            if f.in_flight >= f.budget_max {
                self.flow_hot[fi as usize].budget_blocked.push(core);
                return;
            }
        }

        // Acquire and create the transaction.
        {
            let cs = &mut self.cores[core as usize];
            if is_write {
                cs.write_used += 1;
            } else {
                cs.read_used += 1;
            }
        }
        let (plan_idx, gap) = {
            let f = &mut self.flow_hot[fi as usize];
            f.in_flight += 1;
            f.issued += 1;
            let cs = &mut self.cores[core as usize];
            let t = match f.pattern {
                Pattern::Random => self.rng.next_below(f.targets as u64),
                _ => {
                    let t = cs.next_target % f.targets as u64;
                    cs.next_target += 1;
                    t
                }
            };
            (
                f.plan_base + cs.core_pos * f.targets + t as u32,
                f.gap_mean_ns,
            )
        };

        if op == chiplet_mem::OpKind::WriteTemporal {
            let cs = &mut self.cores[core as usize];
            cs.next_is_writeback = !cs.next_is_writeback;
        }
        let txn = self.alloc_txn(Txn {
            flow: fi,
            core,
            plan: plan_idx,
            issue_ns: now_ns,
            waits_ns: 0.0,
            extra_ns: 0.0,
            stage: 0,
            limiter_phase: 0,
            dir_write: is_write,
            live: true,
            span: u32::MAX,
        });

        // Trace-sampling decision: one draw per issue from the derived
        // stream, in event order — deterministic for a given seed.
        if let Some(n) = self.cfg.trace_sampling {
            let sampled = n <= 1 || self.trace_rng.next_below(n as u64) == 0;
            if sampled {
                if let Some(h) = self
                    .spans
                    .as_mut()
                    .expect("collector exists when sampling is on")
                    .start(fi, core, now_ns)
                {
                    self.txns[txn as usize].span = h;
                }
            }
        }

        // Pacing for the next issue. The gap advances the *fractional*
        // schedule, not the rounded event time: sub-ns gaps (a DMA engine
        // at tens of GB/s) would otherwise accumulate ~0.5 ns of ceil bias
        // per transaction and undershoot the configured rate. A stale
        // schedule (after a long slot stall) catches up at most 1 ns.
        let next = if gap.is_infinite() {
            // The flow paused mid-issue; park until re-kicked.
            f64::INFINITY
        } else if gap > 0.0 {
            let base = self.cores[core as usize].next_allowed_ns.max(now_ns - 1.0);
            base + self.rng.exponential(gap)
        } else {
            now_ns
        };
        self.cores[core as usize].next_allowed_ns = next;
        self.cores[core as usize].attempt_scheduled = true;
        let at = if next.is_finite() {
            next
        } else {
            self.horizon_ns
        };
        self.schedule_at(at, now_ns, Event::Issue { core });

        self.advance_limiters(txn, now_ns);
    }

    /// Walks the limiter phases; parks in a limiter queue when full.
    /// Device DMA plans skip the chiplet limiters entirely.
    fn advance_limiters(&mut self, txn: u32, now_ns: f64) {
        {
            let t = &self.txns[txn as usize];
            if !self.plan_infos[t.plan as usize].limiters {
                self.txns[txn as usize].limiter_phase = 2;
            }
        }
        loop {
            let (phase, ccx, ccd) = {
                let t = &self.txns[txn as usize];
                let p = &self.plan_infos[t.plan as usize];
                (t.limiter_phase, p.ccx, p.ccd)
            };
            match phase {
                0 => {
                    if self.ccx_limiters[ccx as usize].acquire(txn) {
                        self.txns[txn as usize].limiter_phase = 1;
                    } else {
                        return; // parked at CCX
                    }
                }
                1 => {
                    if let Some(lims) = self.ccd_limiters.as_mut() {
                        if lims[ccd as usize].acquire(txn) {
                            self.txns[txn as usize].limiter_phase = 2;
                        } else {
                            return; // parked at CCD
                        }
                    } else {
                        self.txns[txn as usize].limiter_phase = 2;
                    }
                }
                _ => {
                    // Both limiters held: limiter queueing is part of the
                    // transaction's wait, then the stage walk begins.
                    let (span, issue_ns) = {
                        let t = &mut self.txns[txn as usize];
                        t.waits_ns += now_ns - t.issue_ns;
                        (t.span, t.issue_ns)
                    };
                    if span != u32::MAX {
                        self.spans.as_mut().expect("span open ⇒ collector").hop(
                            span,
                            HopClass::TrafficCtrl.code(),
                            issue_ns,
                            now_ns,
                            now_ns,
                        );
                    }
                    self.schedule_at(now_ns, now_ns, Event::Stage { txn });
                    return;
                }
            }
        }
    }

    fn on_granted(&mut self, txn: u32, now_ns: f64) {
        // A limiter handed its slot to this parked transaction.
        let t = &mut self.txns[txn as usize];
        debug_assert!(t.live);
        t.limiter_phase += 1;
        self.advance_limiters(txn, now_ns);
    }

    fn on_stage(&mut self, txn: u32, now_ns: f64) {
        // One read of the txn record up front; one write-back at the end.
        let (plan_idx, stage_idx, is_write, span, issue_ns, waits_ns, extra_ns) = {
            let t = &self.txns[txn as usize];
            (
                t.plan,
                t.stage,
                t.dir_write,
                t.span,
                t.issue_ns,
                t.waits_ns,
                t.extra_ns,
            )
        };
        let dir = if is_write { Dir::Write } else { Dir::Read };
        let (point, bytes, device, n_stages, is_cxl, unloaded_ns) = {
            let p = &self.plan_infos[plan_idx as usize];
            let s = self.flat_stages[(p.stage_base + stage_idx as u32) as usize];
            (
                s.point,
                s.bytes,
                s.device,
                p.n_stages as usize,
                p.is_cxl,
                p.unloaded_ns,
            )
        };
        // Device variability (bank conflicts, refresh, CXL media) delays
        // the *transaction* but does not serialize the channel: banks and
        // media overlap independent accesses, so successors are not held
        // behind a slow one beyond ordinary serialization.
        let extra = if device {
            let model = if is_cxl {
                self.cxl_model
            } else {
                self.dram_model
            };
            model.extra_service_ns(&mut self.rng)
        } else {
            0.0
        };
        let adm = match point {
            StageRef::Link(l) => self.channels[l as usize]
                .as_mut()
                .expect("stage link has a channel")
                .admit(dir, now_ns, bytes),
            StageRef::SocketNoc(sk) => self.noc[sk as usize].admit(dir, now_ns, bytes),
            StageRef::CxlPort(c) => self.cxl_ports[c as usize].admit(dir, now_ns, bytes),
        };
        let waits_ns = waits_ns + adm.wait_ns;
        let extra_ns = extra_ns + extra;
        // Per-point time series: bytes admitted plus the backlog this
        // admission left behind (wait + service, ns of queued work).
        if let Some(series) = self.point_traces.as_mut() {
            let idx = match point {
                StageRef::Link(l) => l as usize,
                StageRef::SocketNoc(sk) => self.channels.len() + sk as usize,
                StageRef::CxlPort(c) => self.channels.len() + self.noc.len() + c as usize,
            };
            let s = &mut series[idx];
            let at = SimTime::from_nanos(now_ns as u64);
            match dir {
                Dir::Read => s.read.record(at, ByteSize::from_bytes(bytes)),
                Dir::Write => s.write.record(at, ByteSize::from_bytes(bytes)),
            }
            s.depth.record(at, adm.wait_ns + adm.service_ns);
        }
        if let Some(m) = self.metrics.as_mut() {
            let idx = match point {
                StageRef::Link(l) => l as usize,
                StageRef::SocketNoc(sk) => self.channels.len() + sk as usize,
                StageRef::CxlPort(c) => self.channels.len() + self.noc.len() + c as usize,
            };
            // Resolve the point's series handles at first admission (so
            // the registry sees the same series set and creation order as
            // the string path), then record through the dense slots.
            let di = usize::from(is_write);
            let (h_bytes, h_wait) = match self.link_handles[idx][di] {
                Some(h) => h,
                None => {
                    let labels = [
                        ("link_id", self.point_labels[idx].as_str()),
                        ("dir", if is_write { "write" } else { "read" }),
                    ];
                    let h = (
                        m.series_handle(SeriesKind::Counter, "chiplet_link_bytes", &labels),
                        m.series_handle(SeriesKind::Histogram, "chiplet_link_wait_ns", &labels),
                    );
                    self.link_handles[idx][di] = Some(h);
                    h
                }
            };
            let at = SimTime::from_nanos(now_ns as u64);
            m.counter_add_at_handle(h_bytes, at, bytes as f64);
            m.observe_handle(h_wait, at, adm.wait_ns);
        }
        // Hop record: the wait is queueing behind earlier admissions; the
        // latency-contributing service here is the device variability
        // (serialization is part of the unloaded propagation segment).
        if span != u32::MAX {
            // Pack the concrete capacity point into the label so critpath
            // can blame individual links, not just classes.
            let (class, point_idx) = match point {
                StageRef::Link(l) => (
                    HopClass::from_link_kind(self.topo.links()[l as usize].kind),
                    l,
                ),
                StageRef::SocketNoc(sk) => (HopClass::SocketNoc, self.channels.len() as u32 + sk),
                StageRef::CxlPort(c) => (
                    HopClass::CxlPort,
                    (self.channels.len() + self.noc.len()) as u32 + c,
                ),
            };
            let label = crate::trace::encode_hop_label(class, Some(point_idx));
            self.spans.as_mut().expect("span open ⇒ collector").hop(
                span,
                label,
                now_ns,
                now_ns + adm.wait_ns,
                now_ns + adm.wait_ns + extra,
            );
        }
        {
            let t = &mut self.txns[txn as usize];
            t.waits_ns = waits_ns;
            t.extra_ns = extra_ns;
        }
        if (stage_idx as usize) + 1 < n_stages {
            self.txns[txn as usize].stage += 1;
            self.schedule_at(adm.depart_ns + extra, now_ns, Event::Stage { txn });
        } else {
            let done = (issue_ns + unloaded_ns + waits_ns + extra_ns).max(adm.depart_ns);
            self.schedule_at(done, now_ns, Event::Complete { txn });
        }
    }

    fn on_complete(&mut self, txn: u32, now_ns: f64) {
        let (flow, core, plan_idx) = {
            let t = &self.txns[txn as usize];
            (t.flow, t.core, t.plan)
        };
        let pi = self.plan_infos[plan_idx as usize];
        let (ccx, ccd, has_limiters) = (pi.ccx, pi.ccd, pi.limiters);
        let is_write = self.txns[txn as usize].dir_write;
        let op = self.flow_hot[flow as usize].op;

        // Release limiters (CCD first — reverse acquisition order); grants
        // wake parked transactions. DMA plans never held them.
        if has_limiters {
            if let Some(lims) = self.ccd_limiters.as_mut() {
                if let Some(next) = lims[ccd as usize].release() {
                    self.schedule_at(now_ns, now_ns, Event::Granted { txn: next });
                }
            }
            if let Some(next) = self.ccx_limiters[ccx as usize].release() {
                self.schedule_at(now_ns, now_ns, Event::Granted { txn: next });
            }
        }

        // Release core and flow budgets.
        {
            let cs = &mut self.cores[core as usize];
            if is_write {
                cs.write_used -= 1;
            } else {
                cs.read_used -= 1;
            }
        }
        self.flow_hot[flow as usize].in_flight -= 1;

        // Controller window: every completion feeds the BDP controller.
        let lat = {
            let t = &self.txns[txn as usize];
            pi.unloaded_ns + t.waits_ns + t.extra_ns
        };
        {
            let f = &mut self.flow_hot[flow as usize];
            f.win_lat_sum_ns += lat;
            f.win_lat_n += 1;
        }

        // Record, inside the measured window only.
        {
            let t = &self.txns[txn as usize];
            if t.issue_ns >= self.warmup_ns && now_ns <= self.horizon_ns {
                // Temporal-write flows: only the writeback carries the
                // application's payload; the RFO read is coherence
                // overhead (it still loads the fabric above).
                let counts_payload = op != chiplet_mem::OpKind::WriteTemporal || t.dir_write;
                let f = &mut self.flow_hot[flow as usize];
                f.completed += 1;
                if counts_payload {
                    f.bytes += LINE;
                    if let Some(trace) = f.trace.as_mut() {
                        trace.record(
                            SimTime::from_nanos(now_ns as u64),
                            ByteSize::from_bytes(LINE),
                        );
                    }
                }
                f.latency.record(SimDuration::from_nanos_f64(lat));
                let matrix_src = pi.matrix_src;
                let matrix_dest = pi.matrix_dest;
                self.matrix[matrix_src as usize * self.matrix_cols + matrix_dest as usize] += LINE;
                if let Some(p) = self.profiler.as_mut() {
                    p.observe(FlowId(flow), matrix_src, matrix_dest, LINE, lat);
                }
                if let Some(m) = self.metrics.as_mut() {
                    let f = &mut self.flows[flow as usize];
                    let name = f.spec.name.as_str();
                    let at = SimTime::from_nanos(now_ns as u64);
                    let h = *f.h_completions.get_or_insert_with(|| {
                        m.series_handle(
                            SeriesKind::Counter,
                            "chiplet_flow_completions",
                            &[("flow", name)],
                        )
                    });
                    m.counter_add_at_handle(h, at, 1.0);
                    if counts_payload {
                        let h = *f.h_bytes.get_or_insert_with(|| {
                            m.series_handle(
                                SeriesKind::Counter,
                                "chiplet_flow_bytes",
                                &[("flow", name)],
                            )
                        });
                        m.counter_add_at_handle(h, at, LINE as f64);
                    }
                    let h = *f.h_latency.get_or_insert_with(|| {
                        m.series_handle(
                            SeriesKind::Histogram,
                            "chiplet_flow_latency_ns",
                            &[("flow", name)],
                        )
                    });
                    m.observe_handle(h, at, lat);
                }
            }
        }
        // Seal the span (all sampled transactions, windowed or not): the
        // residual propagation hop carries the unloaded route latency, so
        // the hops tile the charged end-to-end latency exactly.
        {
            let t = &self.txns[txn as usize];
            if t.span != u32::MAX {
                let span = t.span;
                let unloaded_ns = pi.unloaded_ns;
                let lat = unloaded_ns + t.waits_ns + t.extra_ns;
                let spans = self.spans.as_mut().expect("span open ⇒ collector");
                spans.hop(
                    span,
                    HopClass::Propagation.code(),
                    now_ns - unloaded_ns,
                    now_ns - unloaded_ns,
                    now_ns,
                );
                spans.finish(span, now_ns, lat);
            }
        }
        self.free_txn(txn);

        // Wake the issuing core (its slot freed) and one flow-budget waiter.
        if now_ns < self.flow_hot[flow as usize].stop_ns {
            if self.cores[core as usize].blocked_on_core
                && !self.cores[core as usize].attempt_scheduled
            {
                self.cores[core as usize].blocked_on_core = false;
                self.cores[core as usize].attempt_scheduled = true;
                self.schedule_at(now_ns, now_ns, Event::Issue { core });
            }
            if let Some(waiter) = self.flow_hot[flow as usize].budget_blocked.pop() {
                if !self.cores[waiter as usize].attempt_scheduled {
                    self.cores[waiter as usize].attempt_scheduled = true;
                    self.schedule_at(now_ns, now_ns, Event::Issue { core: waiter });
                }
            }
        }
    }

    fn recompute_policy(&mut self, now_ns: f64, horizon: SimTime) {
        // Flows active at `now`, in a buffer reused across epochs.
        let mut active = std::mem::take(&mut self.policy.active);
        active.clear();
        active.extend((0..self.flows.len() as u32).filter(|&i| {
            let f = &self.flows[i as usize];
            (f.outcome.is_fabric_bound() || f.spec.nic.is_some())
                && (f.spec.start.as_nanos() as f64) <= now_ns
                && now_ns < f.spec.stop_or(horizon).as_nanos() as f64
        }));
        if active.is_empty() {
            self.policy.active = active;
            return;
        }

        // BDP-adaptive control is a closed loop over measured latency; it
        // never consults demands or capacities, so handle it before any
        // allocator work.
        if let TrafficPolicy::BdpAdaptive { latency_factor, .. } = self.cfg.policy {
            // AIMD on each active flow's rate against its latency target.
            for &i in &active {
                let f = &mut self.flows[i as usize];
                let h = &mut self.flow_hot[i as usize];
                let measured = if h.win_lat_n > 0 {
                    h.win_lat_sum_ns / h.win_lat_n as f64
                } else {
                    f.mean_unloaded_ns
                };
                h.win_lat_sum_ns = 0.0;
                h.win_lat_n = 0;
                let target = latency_factor * f.mean_unloaded_ns;
                let demand_gb = f
                    .spec
                    .demand_at(SimTime::from_nanos(now_ns as u64))
                    .map_or(f64::INFINITY, |b| b.as_gb_per_s());
                // Start from the hardware-budget-implied rate.
                let current = f.adaptive_rate.unwrap_or_else(|| {
                    (h.budget_max as f64 * LINE as f64 / f.mean_unloaded_ns).min(1000.0)
                });
                let next = if measured > target {
                    (current * 0.85).max(0.25)
                } else {
                    (current * 1.05 + 0.1).min(demand_gb).min(1000.0)
                };
                f.adaptive_rate = Some(next);
                let per_issuer = next / f.spec.issuer_count() as f64;
                h.gap_mean_ns = if per_issuer > 0.0 {
                    gap_from_rate(Some(Bandwidth::from_gb_per_s(per_issuer)))
                } else {
                    f64::INFINITY
                };
            }
            self.policy.active = active;
            return;
        }

        // Demand vector in active order; footprints and capacities were
        // interned at admission, so this is the only per-epoch derivation.
        let mut demands = std::mem::take(&mut self.policy.demands);
        demands.clear();
        demands.extend(active.iter().map(|&i| {
            self.flows[i as usize]
                .spec
                .demand_at(SimTime::from_nanos(now_ns as u64))
                .map_or(f64::INFINITY, |b| b.as_bytes_per_s())
        }));

        // Incremental epoch: same active set, bit-identical demands ⇒ the
        // equilibrium — and every gap it implies — is unchanged; skip the
        // solve. Gaps are only written here for allocator-backed policies,
        // so the memo can never go stale between epochs.
        let p = &mut self.policy;
        if p.valid
            && p.last_active == active
            && p.last_demand_bits.len() == demands.len()
            && p.last_demand_bits
                .iter()
                .zip(&demands)
                .all(|(&b, d)| b == d.to_bits())
        {
            p.active = active;
            p.demands = demands;
            return;
        }
        p.last_active.clear();
        p.last_active.extend_from_slice(&active);
        p.last_demand_bits.clear();
        p.last_demand_bits
            .extend(demands.iter().map(|d| d.to_bits()));
        p.valid = true;

        let mut rates = std::mem::take(&mut self.policy.rates);
        let mut dense = std::mem::take(&mut self.policy.dense);
        let solved = {
            let footprints: Vec<&[(u32, f64)]> = active
                .iter()
                .map(|&i| self.flows[i as usize].footprint.as_slice())
                .collect();
            self.cfg.policy.allocate_dense(
                &demands,
                &footprints,
                self.arena.capacities(),
                &mut dense,
                &mut rates,
            )
        };
        if solved {
            for (k, &i) in active.iter().enumerate() {
                let f = &mut self.flows[i as usize];
                let issuers = f.spec.issuer_count() as f64;
                let per_issuer = Bandwidth::from_bytes_per_s(rates[k].as_bytes_per_s() / issuers);
                // A zero allocation (zero-demand schedule piece) pauses the
                // flow rather than unthrottling it.
                self.flow_hot[i as usize].gap_mean_ns = if per_issuer.is_positive() {
                    gap_from_rate(Some(per_issuer))
                } else {
                    f64::INFINITY
                };
            }
        }
        let p = &mut self.policy;
        p.active = active;
        p.demands = demands;
        p.rates = rates;
        p.dense = dense;
    }

    /// A flow's demand schedule entered a new piece: under the hardware
    /// default the engine re-paces directly (a Policy event at the same
    /// instant already handled managed policies), then every issuer is
    /// re-kicked so rate increases take effect immediately.
    fn on_demand(&mut self, flow: u32, now_ns: f64) {
        let fi = flow as usize;
        if now_ns >= self.flow_hot[fi].stop_ns {
            return;
        }
        if self.cfg.policy == TrafficPolicy::HardwareDefault {
            let now = SimTime::from_nanos(now_ns as u64);
            self.flow_hot[fi].gap_mean_ns =
                demand_gap(self.flows[fi].spec.demand_per_issuer_at(now));
        }
        let paused = self.flow_hot[fi].gap_mean_ns.is_infinite();
        let issuers: Vec<u32> = if let Some(nic) = self.flows[fi].spec.nic {
            vec![self.topo.core_count() + nic]
        } else {
            self.flows[fi].spec.cores.iter().map(|c| c.0).collect()
        };
        for issuer in issuers {
            if paused {
                self.cores[issuer as usize].next_allowed_ns = f64::INFINITY;
                continue;
            }
            let rekick = {
                let cs = &mut self.cores[issuer as usize];
                // An issuer parked at the horizon (zero-demand piece) has a
                // pending event far in the future; give it one at `now`.
                let was_parked = cs.next_allowed_ns.is_infinite();
                cs.next_allowed_ns = cs.next_allowed_ns.min(now_ns);
                let rekick = was_parked || !cs.attempt_scheduled;
                cs.attempt_scheduled = cs.attempt_scheduled || rekick;
                rekick
            };
            if rekick {
                self.schedule_at(now_ns, now_ns, Event::Issue { core: issuer });
            }
        }
    }

    fn capacity_of(&self, point: StageRef, dir: Dir) -> Option<f64> {
        let ch = match point {
            StageRef::Link(l) => self.channels[l as usize].as_ref()?,
            StageRef::SocketNoc(sk) => &self.noc[sk as usize],
            StageRef::CxlPort(c) => &self.cxl_ports[c as usize],
        };
        ch.server(dir).map(|s| s.capacity().as_bytes_per_s())
    }

    fn alloc_txn(&mut self, txn: Txn) -> u32 {
        match self.free_txns.pop() {
            Some(id) => {
                self.txns[id as usize] = txn;
                id
            }
            None => {
                self.txns.push(txn);
                (self.txns.len() - 1) as u32
            }
        }
    }

    fn free_txn(&mut self, id: u32) {
        self.txns[id as usize].live = false;
        self.free_txns.push(id);
    }

    fn finish(
        self,
        horizon: SimTime,
        prof: &PhaseProfiler,
        queue_depth: &DepthHistogram,
        epoch_events: &DepthHistogram,
    ) -> RunResult {
        let window = horizon - SimTime::from_nanos(self.cfg.warmup.as_nanos());
        let window_ns = window.as_nanos() as f64;
        let secs = window.as_secs_f64();

        let flows: Vec<FlowTelemetry> = self
            .flows
            .iter()
            .zip(&self.flow_hot)
            .enumerate()
            .map(|(i, (f, hot))| {
                // Cache-resident core flows are accounted analytically; DMA
                // flows always run on the fabric.
                if let (AccessOutcome::CacheHit { latency_ns, .. }, None) = (f.outcome, f.spec.nic)
                {
                    // Cache-resident: accounted analytically. One line per
                    // hit latency per core, or the offered rate if lower.
                    let per_core = Bandwidth::from_gb_per_s(LINE as f64 / latency_ns);
                    let hw = Bandwidth::from_gb_per_s(
                        per_core.as_gb_per_s() * f.spec.cores.len() as f64,
                    );
                    let achieved = f.spec.offered.map_or(hw, |o| o.min(hw));
                    let mut latency = LatencyHistogram::new();
                    latency.record(SimDuration::from_nanos_f64(latency_ns));
                    return FlowTelemetry {
                        id: FlowId(i as u32),
                        name: f.spec.name.clone(),
                        issued: 0,
                        completed: 0,
                        bytes: (achieved.as_bytes_per_s() * secs) as u64,
                        achieved,
                        latency,
                        analytic: true,
                        analytic_latency_ns: Some(latency_ns),
                        trace: Vec::new(),
                    };
                }
                FlowTelemetry {
                    id: FlowId(i as u32),
                    name: f.spec.name.clone(),
                    issued: hot.issued,
                    completed: hot.completed,
                    bytes: hot.bytes,
                    achieved: Bandwidth::from_bytes_per_s(hot.bytes as f64 / secs),
                    latency: hot.latency.clone(),
                    analytic: false,
                    analytic_latency_ns: None,
                    trace: hot
                        .trace
                        .clone()
                        .map(|t| t.finish(horizon))
                        .unwrap_or_default(),
                }
            })
            .collect();

        // Per-point series, finished at the horizon; indexed links first,
        // then sockets, then CXL ports (matching the recording side).
        type FinishedSeries = (
            Vec<chiplet_sim::stats::TracePoint>,
            Vec<chiplet_sim::stats::TracePoint>,
            Vec<chiplet_sim::stats::GaugePoint>,
        );
        let mut series: Option<Vec<FinishedSeries>> = self.point_traces.map(|traces| {
            traces
                .into_iter()
                .map(|s| {
                    (
                        s.read.finish(horizon),
                        s.write.finish(horizon),
                        s.depth.finish(horizon),
                    )
                })
                .collect()
        });
        let mut attach = |lt: &mut LinkTelemetry, idx: usize| {
            if let Some(series) = series.as_mut() {
                let (r, w, d) = std::mem::take(&mut series[idx]);
                lt.read_trace = r;
                lt.write_trace = w;
                lt.depth_trace = d;
            }
        };

        let n_links = self.channels.len();
        let n_socks = self.noc.len();
        let mut links = Vec::new();
        for (i, ch) in self.channels.iter().enumerate() {
            let Some(ch) = ch else { continue };
            let kind = self.topo.links()[i].kind;
            let mut lt = link_telemetry(
                CapacityPoint::Link {
                    link: i as u32,
                    kind,
                },
                ch,
                window_ns,
            );
            attach(&mut lt, i);
            links.push(lt);
        }
        for (sk, ch) in self.noc.iter().enumerate() {
            let mut lt = link_telemetry(
                CapacityPoint::SocketNoc { socket: sk as u32 },
                ch,
                window_ns,
            );
            attach(&mut lt, n_links + sk);
            links.push(lt);
        }
        for (c, ch) in self.cxl_ports.iter().enumerate() {
            let mut lt = link_telemetry(CapacityPoint::CxlPort { ccd: c as u32 }, ch, window_ns);
            attach(&mut lt, n_links + n_socks + c);
            links.push(lt);
        }

        // Row-major iteration yields cells already sorted by (ccd, dest);
        // zero cells are skipped to match the sparse accumulation of old.
        let matrix: Vec<MatrixCell> = self
            .matrix
            .iter()
            .enumerate()
            .filter(|&(_, &bytes)| bytes > 0)
            .map(|(i, &bytes)| MatrixCell {
                ccd: (i / self.matrix_cols) as u32,
                dest: (i % self.matrix_cols) as u32,
                bytes,
            })
            .collect();

        let profile = self
            .profiler
            .as_ref()
            .map(crate::profiler::Profiler::report);
        let trace = self.spans.map(|c| {
            let (spans, dropped) = c.into_parts();
            TraceReport::from_spans(self.cfg.trace_sampling.unwrap_or(1), spans, dropped)
        });
        let phases = prof.report();
        let mut metrics = self.metrics;
        if let Some(m) = metrics.as_mut() {
            for f in &flows {
                m.gauge_set(
                    "chiplet_flow_achieved_gb_s",
                    &[("flow", f.name.as_str())],
                    f.achieved.as_gb_per_s(),
                );
            }
            for lt in &links {
                let label = match lt.point {
                    CapacityPoint::Link { link, .. } => format!("link{link}"),
                    CapacityPoint::SocketNoc { socket } => format!("noc{socket}"),
                    CapacityPoint::CxlPort { ccd } => format!("cxl{ccd}"),
                };
                for (dir, stats) in [("read", &lt.read), ("write", &lt.write)] {
                    if stats.admissions > 0 {
                        m.gauge_set(
                            "chiplet_link_utilization",
                            &[("link_id", label.as_str()), ("dir", dir)],
                            stats.utilization,
                        );
                    }
                }
            }
            if let Some(p) = self.profiler.as_ref() {
                m.counter_add(
                    "chiplet_profiler_evicted_flows",
                    &[],
                    p.evicted_flows() as f64,
                );
                m.counter_add("chiplet_profiler_records", &[], p.records() as f64);
            }
            if self.cfg.profile_phases {
                phases.emit(m);
                queue_depth.emit(m, "chiplet_engine_queue_depth");
                epoch_events.emit(m, "chiplet_engine_epoch_events");
            }
        }
        RunResult {
            profile,
            trace,
            metrics,
            parallel_fallback: self.fallback,
            phases: self.cfg.profile_phases.then_some(phases),
            telemetry: TelemetryReport {
                platform: self.topo.spec().name.clone(),
                window,
                links,
                flows: flows.clone(),
                matrix,
            },
            flows,
            window,
        }
    }
}

/// Limiter tokens: the loaded BDP of the chiplet egress,
/// `capacity × (base latency + 3 × max queue delay) / line`. A platform
/// without the module (`max_queue_ns == 0`) gets a transparent pool far
/// above any reachable in-flight count.
fn derive_limiter_tokens(
    base_latency_ns: f64,
    max_queue_ns: f64,
    cap: Bandwidth,
    hw_demand_slots: u32,
) -> u32 {
    if max_queue_ns <= 0.0 {
        return hw_demand_slots.max(1) * 4;
    }
    let loaded_ns = base_latency_ns + 3.0 * max_queue_ns;
    ((cap.as_gb_per_s() * loaded_ns / LINE as f64).ceil() as u32).max(1)
}

/// Mean inter-issue gap (ns) for a per-core offered rate; 0 = unthrottled.
fn gap_from_rate(rate: Option<Bandwidth>) -> f64 {
    match rate {
        Some(bw) if bw.is_positive() => LINE as f64 / bw.bytes_per_ns(),
        _ => 0.0,
    }
}

/// Inter-issue gap for a demand-schedule piece: `None` = unthrottled (gap
/// 0), a positive demand paces, and a zero demand pauses the flow
/// (infinite gap) until the next piece.
fn demand_gap(rate: Option<Bandwidth>) -> f64 {
    match rate {
        None => 0.0,
        Some(bw) if bw.is_positive() => gap_from_rate(Some(bw)),
        Some(_) => f64::INFINITY,
    }
}

fn link_telemetry(point: CapacityPoint, ch: &DirectionalChannel, window_ns: f64) -> LinkTelemetry {
    let dir_stats = |dir: Dir| -> DirStats {
        match ch.server(dir) {
            Some(s) => DirStats {
                bytes: s.bytes_served(),
                admissions: s.admitted(),
                utilization: s.utilization(window_ns),
                mean_wait_ns: s.mean_wait_ns(),
                max_wait_ns: s.max_wait_ns(),
            },
            None => DirStats::default(),
        }
    };
    LinkTelemetry {
        point,
        read: dir_stats(Dir::Read),
        write: dir_stats(Dir::Write),
        read_trace: Vec::new(),
        write_trace: Vec::new(),
        depth_trace: Vec::new(),
    }
}

/// Declares the event engine's metric families (names, kinds, help text)
/// so every dump carries the schema even for families that stay sparse.
fn describe_engine_metrics(m: &mut crate::metrics::MetricsRegistry) {
    use crate::metrics::MetricKind;
    m.describe(
        "chiplet_link_bytes",
        MetricKind::Counter,
        "Bytes admitted at a capacity point, by direction.",
    );
    m.describe(
        "chiplet_link_wait_ns",
        MetricKind::Histogram,
        "Queueing wait per admission at a capacity point, ns.",
    );
    m.describe(
        "chiplet_flow_bytes",
        MetricKind::Counter,
        "Payload bytes completed per flow inside the measured window.",
    );
    m.describe(
        "chiplet_flow_completions",
        MetricKind::Counter,
        "Transactions completed per flow inside the measured window.",
    );
    m.describe(
        "chiplet_flow_latency_ns",
        MetricKind::Histogram,
        "End-to-end transaction latency per flow, ns.",
    );
    m.describe(
        "chiplet_flow_achieved_gb_s",
        MetricKind::Gauge,
        "Achieved flow bandwidth over the measured window, GB/s.",
    );
    m.describe(
        "chiplet_link_utilization",
        MetricKind::Gauge,
        "Capacity-point utilization over the measured window, by direction.",
    );
    m.describe(
        "chiplet_profiler_evicted_flows",
        MetricKind::Counter,
        "Flows evicted from the profiler's bounded per-flow sketch map.",
    );
    m.describe(
        "chiplet_profiler_records",
        MetricKind::Counter,
        "Transaction records absorbed by the sketch profiler.",
    );
    // Self-profiling families (`EngineConfig::profile_phases`). Phase
    // timers are wall-clock and the queue histograms only exist on
    // profiled runs, so all of them are volatile: excluded from default
    // (deterministic) OpenMetrics dumps.
    m.describe_volatile(
        "sim_phase_seconds",
        MetricKind::Counter,
        "Wall seconds spent per engine phase (self-profiling).",
    );
    m.describe_volatile(
        "sim_phase_calls",
        MetricKind::Counter,
        "Handler invocations per engine phase (self-profiling).",
    );
    m.describe_volatile(
        "sim_phase_wall_seconds",
        MetricKind::Gauge,
        "Wall seconds the phase profiler was alive (self-profiling).",
    );
    m.describe_volatile(
        "chiplet_engine_queue_depth_bucket",
        MetricKind::Counter,
        "Event-queue depth, power-of-two buckets by lower bound (sampled every 1024 pops).",
    );
    m.describe_volatile(
        "chiplet_engine_queue_depth_max",
        MetricKind::Gauge,
        "Largest sampled event-queue depth.",
    );
    m.describe_volatile(
        "chiplet_engine_queue_depth_count",
        MetricKind::Gauge,
        "Event-queue depth samples taken.",
    );
    m.describe_volatile(
        "chiplet_engine_epoch_events_bucket",
        MetricKind::Counter,
        "Events handled per policy epoch, power-of-two buckets by lower bound.",
    );
    m.describe_volatile(
        "chiplet_engine_epoch_events_max",
        MetricKind::Gauge,
        "Largest events-per-epoch count.",
    );
    m.describe_volatile(
        "chiplet_engine_epoch_events_count",
        MetricKind::Gauge,
        "Policy epochs observed.",
    );
}

/// Convenience: pointer-chase latency from a core to a DIMM (the Table 2
/// methodology) without standing up flows by hand. Returns mean ns.
pub fn pointer_chase_latency_ns(
    topo: &Topology,
    core: CoreId,
    dimm: DimmId,
    working_set: ByteSize,
    cfg: EngineConfig,
) -> f64 {
    let mut engine = Engine::new(topo, cfg);
    engine.add_flow(
        FlowSpec::pointer_chase("chase", core, Target::dimm(dimm))
            .working_set(working_set)
            .build(topo),
    );
    let result = engine.run(SimTime::from_micros(30));
    result.flows[0].mean_latency_ns()
}

fn resource_key(point: StageRef, dir: Dir) -> ResourceKey {
    let d = match dir {
        Dir::Read => 0u64,
        Dir::Write => 1u64,
    };
    match point {
        StageRef::Link(l) => (l as u64) | (d << 40),
        StageRef::SocketNoc(sk) => (1 << 41) | (sk as u64) | (d << 40),
        StageRef::CxlPort(c) => (1 << 42) | (c as u64) | (d << 40),
    }
}

#[cfg(test)]
mod tests;
