//! The global software traffic manager.
//!
//! Implication #4: hardware partitioning is sender-driven and
//! traffic-oblivious; the paper proposes materializing the flow abstraction
//! "in a global software-based traffic manager" so allocation policy is
//! programmable. [`TrafficPolicy`] is that manager's policy knob, and
//! [`max_min_allocate`] / [`weighted_allocate`] are its allocators:
//! progressive-filling water-level algorithms over the flows' shared
//! capacity points.
//!
//! The engine enforces an allocation by pacing each flow at its allocated
//! rate at the *source* (token-bucket gating of issue), exactly how a
//! software manager would have to do it on real hardware today.

use std::collections::HashMap;

use chiplet_sim::Bandwidth;
use serde::{Deserialize, Serialize};

/// An opaque capacity-point key used by the allocator (the engine passes
/// its internal stage identities).
pub type ResourceKey = u64;

/// A flow's view for allocation: its demand and the capacity points it
/// crosses in the relevant direction, each with the *fraction* of the
/// flow's traffic that crosses it (interleaved traffic spreads over UMC
/// channels and core ports, so a flow at rate R loads each of T channels
/// with only R/T).
#[derive(Debug, Clone)]
pub struct FlowDemand {
    /// Requested rate; `f64::INFINITY` for unthrottled flows.
    pub demand: f64,
    /// Weight for weighted fairness (1.0 = plain max-min).
    pub weight: f64,
    /// Capacity points crossed: `(key, fraction)` with fraction in (0, 1].
    pub resources: Vec<(ResourceKey, f64)>,
}

/// The manager's allocation policy.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum TrafficPolicy {
    /// No software control: hardware sender-driven partitioning (the
    /// paper's status quo).
    #[default]
    HardwareDefault,
    /// Max-min fairness across flows sharing each capacity point.
    MaxMinFair,
    /// Weighted max-min with per-flow weights (indexed by flow order).
    WeightedFair {
        /// Per-flow weights; missing entries default to 1.0.
        weights: Vec<f64>,
    },
    /// Static per-flow rate caps, GB/s (indexed by flow order; missing
    /// entries mean uncapped).
    RateLimit {
        /// Per-flow caps, GB/s.
        caps_gb_s: Vec<f64>,
    },
    /// BDP-adaptive control (Implication #3): the engine monitors each
    /// flow's runtime latency and applies AIMD rate adjustments to hold it
    /// near `latency_factor ×` the flow's unloaded path latency — keeping
    /// the in-flight window near the true BDP instead of deep in the queue.
    BdpAdaptive {
        /// Target latency as a multiple of the unloaded path latency
        /// (e.g. 1.15 = allow 15% queueing).
        latency_factor: f64,
        /// Control interval, ns (how often rates adjust).
        interval_ns: u64,
    },
}

/// A dense interner for [`ResourceKey`]s: each distinct key gets a `u32`
/// index into a flat capacity table, built once per scenario so the
/// per-epoch allocators index `Vec<f64>` instead of hashing keys.
///
/// Uncapped points carry `f64::INFINITY` capacity — arithmetic on an
/// infinite entry (debits, headroom ratios, exhaustion checks) behaves
/// exactly like the old `HashMap` paths that skipped absent keys, so the
/// dense solvers are bit-identical to the map-based ones.
#[derive(Debug, Clone, Default)]
pub struct ResourceArena {
    index: HashMap<ResourceKey, u32>,
    keys: Vec<ResourceKey>,
    capacities: Vec<f64>,
}

impl ResourceArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// The dense index for `key`, interning it (uncapped) on first sight.
    pub fn intern(&mut self, key: ResourceKey) -> u32 {
        match self.index.get(&key) {
            Some(&i) => i,
            None => {
                let i = u32::try_from(self.keys.len()).expect("resource arena overflow");
                self.index.insert(key, i);
                self.keys.push(key);
                self.capacities.push(f64::INFINITY);
                i
            }
        }
    }

    /// Interns `key` and pins its capacity.
    pub fn set_capacity(&mut self, key: ResourceKey, cap: f64) -> u32 {
        let i = self.intern(key);
        self.capacities[i as usize] = cap;
        i
    }

    /// The dense index of `key`, if interned.
    pub fn get(&self, key: ResourceKey) -> Option<u32> {
        self.index.get(&key).copied()
    }

    /// The key behind a dense index.
    pub fn key(&self, idx: u32) -> ResourceKey {
        self.keys[idx as usize]
    }

    /// The flat capacity table, indexed by dense index.
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// Number of interned keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Reusable buffers for [`weighted_allocate_dense`]; steady-state epochs
/// allocate nothing once these have grown to the instance size.
#[derive(Debug, Clone, Default)]
pub struct DenseAllocScratch {
    frozen: Vec<bool>,
    remaining: Vec<f64>,
    load: Vec<f64>,
    touched: Vec<u32>,
    weights: Vec<f64>,
    rates: Vec<f64>,
}

/// Progressive-filling weighted max-min over dense-indexed resources — the
/// allocation core behind [`weighted_allocate`].
///
/// * `demands[i]` / `weights[i]` — flow `i`'s offered rate and weight;
/// * `footprints[i]` — flow `i`'s capacity points as
///   `(dense index, fraction)` pairs indexing `capacities`;
/// * `capacities` — the flat table (`f64::INFINITY` = uncapped);
/// * `out` — receives per-flow rates (cleared first).
///
/// Rates are bit-identical to the `HashMap`-keyed path: the water-level
/// delta is a min-reduction (order-independent and exact) and every
/// accumulation runs in flow order over per-slot values.
pub fn weighted_allocate_dense(
    demands: &[f64],
    weights: &[f64],
    footprints: &[&[(u32, f64)]],
    capacities: &[f64],
    scratch: &mut DenseAllocScratch,
    out: &mut Vec<f64>,
) {
    let n = demands.len();
    assert_eq!(n, weights.len());
    assert_eq!(n, footprints.len());
    let rate = out;
    rate.clear();
    rate.resize(n, 0.0);
    let DenseAllocScratch {
        frozen,
        remaining,
        load,
        touched,
        ..
    } = scratch;
    frozen.clear();
    // Flows with zero demand are trivially frozen.
    frozen.extend(demands.iter().map(|&d| d <= 0.0));
    remaining.clear();
    remaining.extend_from_slice(capacities);
    load.clear();
    load.resize(capacities.len(), 0.0);

    for _round in 0..=n {
        // Active weighted load per resource (weight × traffic fraction).
        // `touched` lists the slots written this round (duplicates are
        // harmless: min-reduction and re-zeroing are idempotent).
        for &r in touched.iter() {
            load[r as usize] = 0.0;
        }
        touched.clear();
        for i in 0..n {
            if frozen[i] {
                continue;
            }
            for &(r, frac) in footprints[i] {
                load[r as usize] += weights[i] * frac;
                touched.push(r);
            }
        }
        if touched.is_empty() {
            break;
        }

        // The water level can rise until the first of:
        //   (a) some active flow reaches its demand,
        //   (b) some resource exhausts its remaining capacity.
        let mut delta = f64::INFINITY;
        for i in 0..n {
            if !frozen[i] && demands[i].is_finite() {
                delta = delta.min((demands[i] - rate[i]) / weights[i]);
            }
        }
        for &r in touched.iter() {
            let w = load[r as usize];
            if w > 0.0 {
                delta = delta.min(remaining[r as usize] / w);
            }
        }
        if !delta.is_finite() {
            // All remaining flows are unthrottled and cross no finite
            // resource: they are unconstrained; leave at +inf conceptually,
            // represented by a huge rate.
            for i in 0..n {
                if !frozen[i] {
                    rate[i] = demands[i].min(f64::MAX / 4.0);
                    frozen[i] = true;
                }
            }
            break;
        }
        let delta = delta.max(0.0);

        // Raise and debit.
        for i in 0..n {
            if frozen[i] {
                continue;
            }
            rate[i] += delta * weights[i];
            for &(r, frac) in footprints[i] {
                remaining[r as usize] -= delta * weights[i] * frac;
            }
        }

        // Freeze flows that met demand or sit on an exhausted resource.
        for i in 0..n {
            if frozen[i] {
                continue;
            }
            let met = demands[i].is_finite() && rate[i] >= demands[i] - 1e-9;
            let stuck = footprints[i]
                .iter()
                .any(|&(r, _)| remaining[r as usize] <= 1e-9);
            if met || stuck {
                frozen[i] = true;
            }
        }
        if frozen.iter().all(|&f| f) {
            break;
        }
    }
}

/// Progressive-filling max-min allocation.
///
/// Raises every unfrozen flow's rate at equal speed (scaled by weight)
/// until a capacity point saturates; flows crossing it freeze at their
/// current level; repeats until all flows are frozen or satisfied.
/// Returns per-flow rates in the same order as `flows`.
///
/// Capacities and demands are in bytes/s (any consistent unit works).
/// This is the interning wrapper over [`weighted_allocate_dense`]: it
/// builds a throwaway [`ResourceArena`] per call, so hot paths should
/// intern once and call the dense entry point directly.
pub fn weighted_allocate(flows: &[FlowDemand], capacities: &HashMap<ResourceKey, f64>) -> Vec<f64> {
    let mut arena = ResourceArena::new();
    let footprints: Vec<Vec<(u32, f64)>> = flows
        .iter()
        .map(|f| {
            f.resources
                .iter()
                .map(|&(r, frac)| (arena.intern(r), frac))
                .collect()
        })
        .collect();
    for (&key, &cap) in capacities {
        arena.set_capacity(key, cap);
    }
    let demands: Vec<f64> = flows.iter().map(|f| f.demand).collect();
    let weights: Vec<f64> = flows.iter().map(|f| f.weight).collect();
    let footprint_refs: Vec<&[(u32, f64)]> = footprints.iter().map(Vec::as_slice).collect();
    let mut out = Vec::new();
    weighted_allocate_dense(
        &demands,
        &weights,
        &footprint_refs,
        arena.capacities(),
        &mut DenseAllocScratch::default(),
        &mut out,
    );
    out
}

/// Plain max-min (all weights 1).
pub fn max_min_allocate(flows: &[FlowDemand], capacities: &HashMap<ResourceKey, f64>) -> Vec<f64> {
    weighted_allocate(flows, capacities)
}

impl TrafficPolicy {
    /// Computes per-flow enforced rates, or `None` when the policy leaves
    /// the hardware in charge. `flows` must carry weight 1.0; weighted and
    /// rate-limit policies override per their parameters.
    pub fn allocate(
        &self,
        flows: &[FlowDemand],
        capacities: &HashMap<ResourceKey, f64>,
    ) -> Option<Vec<Bandwidth>> {
        match self {
            TrafficPolicy::HardwareDefault => None,
            TrafficPolicy::MaxMinFair => {
                let rates = max_min_allocate(flows, capacities);
                Some(rates.into_iter().map(Bandwidth::from_bytes_per_s).collect())
            }
            TrafficPolicy::WeightedFair { weights } => {
                let weighted: Vec<FlowDemand> = flows
                    .iter()
                    .enumerate()
                    .map(|(i, f)| FlowDemand {
                        weight: weights.get(i).copied().unwrap_or(1.0).max(1e-9),
                        ..f.clone()
                    })
                    .collect();
                let rates = weighted_allocate(&weighted, capacities);
                Some(rates.into_iter().map(Bandwidth::from_bytes_per_s).collect())
            }
            // BdpAdaptive is a closed-loop controller: the engine drives it
            // from runtime measurements, not from this one-shot allocator.
            TrafficPolicy::BdpAdaptive { .. } => None,
            TrafficPolicy::RateLimit { caps_gb_s } => Some(
                flows
                    .iter()
                    .enumerate()
                    .map(|(i, f)| {
                        let cap = caps_gb_s.get(i).copied().unwrap_or(f64::INFINITY) * 1e9;
                        Bandwidth::from_bytes_per_s(f.demand.min(cap).min(f64::MAX / 4.0))
                    })
                    .collect(),
            ),
        }
    }

    /// The dense-path equivalent of [`TrafficPolicy::allocate`]: demands
    /// and pre-interned footprints instead of [`FlowDemand`]s, a flat
    /// capacity table instead of a map, reusable `scratch`, rates written
    /// into `out`. Returns `false` (leaving `out` untouched) when the
    /// policy leaves the hardware in charge. Rates are bit-identical to
    /// the map-based path.
    pub fn allocate_dense(
        &self,
        demands: &[f64],
        footprints: &[&[(u32, f64)]],
        capacities: &[f64],
        scratch: &mut DenseAllocScratch,
        out: &mut Vec<Bandwidth>,
    ) -> bool {
        let solve = |scratch: &mut DenseAllocScratch,
                     out: &mut Vec<Bandwidth>,
                     fill: &dyn Fn(usize) -> f64| {
            let mut weights = std::mem::take(&mut scratch.weights);
            weights.clear();
            weights.extend((0..demands.len()).map(fill));
            let mut rates = std::mem::take(&mut scratch.rates);
            weighted_allocate_dense(
                demands, &weights, footprints, capacities, scratch, &mut rates,
            );
            out.clear();
            out.extend(rates.iter().copied().map(Bandwidth::from_bytes_per_s));
            scratch.weights = weights;
            scratch.rates = rates;
        };
        match self {
            TrafficPolicy::HardwareDefault | TrafficPolicy::BdpAdaptive { .. } => false,
            TrafficPolicy::MaxMinFair => {
                solve(scratch, out, &|_| 1.0);
                true
            }
            TrafficPolicy::WeightedFair { weights } => {
                solve(scratch, out, &|i| {
                    weights.get(i).copied().unwrap_or(1.0).max(1e-9)
                });
                true
            }
            TrafficPolicy::RateLimit { caps_gb_s } => {
                out.clear();
                out.extend(demands.iter().enumerate().map(|(i, &d)| {
                    let cap = caps_gb_s.get(i).copied().unwrap_or(f64::INFINITY) * 1e9;
                    Bandwidth::from_bytes_per_s(d.min(cap).min(f64::MAX / 4.0))
                }));
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps(pairs: &[(u64, f64)]) -> HashMap<ResourceKey, f64> {
        pairs.iter().copied().collect()
    }

    fn fd(demand: f64, resources: &[u64]) -> FlowDemand {
        FlowDemand {
            demand,
            weight: 1.0,
            resources: resources.iter().map(|&r| (r, 1.0)).collect(),
        }
    }

    #[test]
    fn single_bottleneck_splits_evenly() {
        let flows = [fd(f64::INFINITY, &[1]), fd(f64::INFINITY, &[1])];
        let rates = max_min_allocate(&flows, &caps(&[(1, 30.0)]));
        assert!((rates[0] - 15.0).abs() < 1e-9);
        assert!((rates[1] - 15.0).abs() < 1e-9);
    }

    #[test]
    fn small_demand_gets_demand_rest_to_big() {
        // The defining max-min property (vs the hardware's proportional
        // sharing): the small flow is satisfied in full.
        let flows = [fd(5.0, &[1]), fd(f64::INFINITY, &[1])];
        let rates = max_min_allocate(&flows, &caps(&[(1, 30.0)]));
        assert!((rates[0] - 5.0).abs() < 1e-9);
        assert!((rates[1] - 25.0).abs() < 1e-9);
    }

    #[test]
    fn under_subscription_everyone_satisfied() {
        let flows = [fd(8.0, &[1]), fd(10.0, &[1])];
        let rates = max_min_allocate(&flows, &caps(&[(1, 30.0)]));
        assert!((rates[0] - 8.0).abs() < 1e-9);
        assert!((rates[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn multi_resource_bottleneck_chain() {
        // Flow A crosses r1 (cap 10) and r2 (cap 30); flow B crosses r2
        // only. A is limited to 10 by r1; B takes 20 on r2.
        let flows = [fd(f64::INFINITY, &[1, 2]), fd(f64::INFINITY, &[2])];
        let rates = max_min_allocate(&flows, &caps(&[(1, 10.0), (2, 30.0)]));
        assert!((rates[0] - 10.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - 20.0).abs() < 1e-9, "{rates:?}");
    }

    #[test]
    fn weights_bias_the_split() {
        let flows = [
            FlowDemand {
                demand: f64::INFINITY,
                weight: 2.0,
                resources: vec![(1, 1.0)],
            },
            FlowDemand {
                demand: f64::INFINITY,
                weight: 1.0,
                resources: vec![(1, 1.0)],
            },
        ];
        let rates = weighted_allocate(&flows, &caps(&[(1, 30.0)]));
        assert!((rates[0] - 20.0).abs() < 1e-9);
        assert!((rates[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_demand_gets_zero() {
        let flows = [fd(0.0, &[1]), fd(f64::INFINITY, &[1])];
        let rates = max_min_allocate(&flows, &caps(&[(1, 30.0)]));
        assert_eq!(rates[0], 0.0);
        assert!((rates[1] - 30.0).abs() < 1e-9);
    }

    #[test]
    fn unconstrained_flow_gets_demand() {
        // Crosses only resources with no configured cap.
        let flows = [fd(12.0, &[99])];
        let rates = max_min_allocate(&flows, &caps(&[(1, 30.0)]));
        assert!((rates[0] - 12.0).abs() < 1e-9);
    }

    #[test]
    fn policy_hardware_default_is_none() {
        let flows = [fd(1.0, &[1])];
        assert!(TrafficPolicy::HardwareDefault
            .allocate(&flows, &caps(&[(1, 10.0)]))
            .is_none());
    }

    #[test]
    fn policy_rate_limit_caps() {
        let flows = [fd(f64::INFINITY, &[1]), fd(3e9, &[1])];
        let rates = TrafficPolicy::RateLimit {
            caps_gb_s: vec![5.0],
        }
        .allocate(&flows, &caps(&[]))
        .unwrap();
        assert!((rates[0].as_gb_per_s() - 5.0).abs() < 1e-9);
        assert!((rates[1].as_gb_per_s() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn allocation_is_feasible_and_work_conserving() {
        // Random-ish topology: verify Σ allocations on each resource ≤ cap,
        // and no flow could be raised without breaking feasibility.
        let flows = [
            fd(f64::INFINITY, &[1, 2]),
            fd(f64::INFINITY, &[2, 3]),
            fd(4.0, &[3]),
            fd(f64::INFINITY, &[1]),
        ];
        let capacities = caps(&[(1, 20.0), (2, 15.0), (3, 12.0)]);
        let rates = max_min_allocate(&flows, &capacities);
        // Feasibility.
        for (r, cap) in &capacities {
            let sum: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.resources.iter().any(|&(k, _)| k == *r))
                .map(|(_, rate)| rate)
                .sum();
            assert!(sum <= cap + 1e-6, "resource {r}: {sum} > {cap}");
        }
        // Work conservation: every unsatisfied flow sits on a saturated
        // resource.
        for (f, rate) in flows.iter().zip(&rates) {
            if *rate < f.demand - 1e-6 {
                let on_saturated = f.resources.iter().any(|&(r, _)| {
                    let Some(cap) = capacities.get(&r) else {
                        return false;
                    };
                    let sum: f64 = flows
                        .iter()
                        .zip(&rates)
                        .filter(|(g, _)| g.resources.iter().any(|&(k, _)| k == r))
                        .map(|(_, x)| x)
                        .sum();
                    sum >= cap - 1e-6
                });
                assert!(on_saturated, "flow under demand but no saturated resource");
            }
        }
    }
}
