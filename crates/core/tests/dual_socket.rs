//! Dual-socket engine behavior: remote latency, xGMI bandwidth ceiling,
//! and cross-socket contention.

use chiplet_mem::OpKind;
use chiplet_net::engine::{pointer_chase_latency_ns, Engine, EngineConfig};
use chiplet_net::flow::{FlowSpec, Target};
use chiplet_sim::{ByteSize, SimTime};
use chiplet_topology::{CcdId, CoreId, DimmId, PlatformSpec, Topology};

fn dual() -> Topology {
    Topology::build(&PlatformSpec::dual_epyc_7302())
}

#[test]
fn remote_chase_latency() {
    let topo = dual();
    // Local near: 124 ns; remote: ~203+ ns.
    let local = pointer_chase_latency_ns(
        &topo,
        CoreId(0),
        DimmId(0),
        ByteSize::from_gib(1),
        EngineConfig::deterministic(),
    );
    let remote = pointer_chase_latency_ns(
        &topo,
        CoreId(0),
        DimmId(8),
        ByteSize::from_gib(1),
        EngineConfig::deterministic(),
    );
    assert!((local - 124.0).abs() < 6.0, "local {local}");
    assert!((203.0..=235.0).contains(&remote), "remote {remote}");
}

#[test]
fn xgmi_caps_cross_socket_bandwidth() {
    let topo = dual();
    // Every core of socket 0 reads from socket 1's DIMMs: the 42 GB/s xGMI
    // read capacity binds (locally the same cores reach ~106 GB/s).
    let remote_dimms: Vec<DimmId> = (8..16).map(DimmId).collect();
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    engine.add_flow(
        FlowSpec::reads(
            "cross",
            (0..16).map(CoreId).collect(),
            Target::Dimms(remote_dimms),
        )
        .working_set(ByteSize::from_gib(1))
        .build(&topo),
    );
    let bw = engine.run(SimTime::from_micros(40)).flows[0]
        .achieved
        .as_gb_per_s();
    assert!(
        (36.0..=43.0).contains(&bw),
        "cross-socket read bandwidth {bw} should bind at the 42 GB/s xGMI"
    );
}

#[test]
fn both_sockets_stream_locally_at_full_rate() {
    // No false sharing: two sockets running local workloads each achieve the
    // single-socket CPU-wide rate.
    let topo = dual();
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    engine.add_flow(
        FlowSpec::reads(
            "s0",
            (0..16).map(CoreId).collect(),
            Target::Dimms((0..8).map(DimmId).collect()),
        )
        .build(&topo),
    );
    engine.add_flow(
        FlowSpec::reads(
            "s1",
            (16..32).map(CoreId).collect(),
            Target::Dimms((8..16).map(DimmId).collect()),
        )
        .build(&topo),
    );
    let r = engine.run(SimTime::from_micros(40));
    for name in ["s0", "s1"] {
        let bw = r.flow(name).unwrap().achieved.as_gb_per_s();
        assert!(
            (96.0..=112.0).contains(&bw),
            "{name}: {bw} GB/s should match the single-socket 106.7"
        );
    }
}

#[test]
fn local_traffic_unaffected_by_remote_streaming() {
    // A socket-1 chiplet streams across the xGMI; socket-0 local flows keep
    // their bandwidth (separate NoCs, separate GMI links).
    let topo = dual();
    let run = |with_remote: bool| {
        let mut engine = Engine::new(&topo, EngineConfig::deterministic());
        engine.add_flow(
            FlowSpec::reads(
                "local",
                topo.cores_of_ccd(CcdId(0)).collect(),
                Target::Dimms((0..4).map(DimmId).collect()),
            )
            .build(&topo),
        );
        if with_remote {
            engine.add_flow(
                FlowSpec::reads(
                    "remote",
                    topo.cores_of_ccd(CcdId(4)).collect(),
                    Target::Dimms((4..8).map(DimmId).collect()),
                )
                .build(&topo),
            );
        }
        engine.run(SimTime::from_micros(40)).flows[0]
            .achieved
            .as_gb_per_s()
    };
    let alone = run(false);
    let contended = run(true);
    // The remote flow hits different UMCs (4..8) — the local flow keeps
    // nearly all its bandwidth.
    assert!(
        contended > alone * 0.9,
        "local {contended} vs alone {alone}"
    );
}

#[test]
fn remote_writes_follow_the_write_direction_cap() {
    let topo = dual();
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    engine.add_flow(
        FlowSpec::writes(
            "wr",
            (0..16).map(CoreId).collect(),
            Target::Dimms((8..16).map(DimmId).collect()),
        )
        .op(OpKind::WriteNonTemporal)
        .build(&topo),
    );
    let bw = engine.run(SimTime::from_micros(40)).flows[0]
        .achieved
        .as_gb_per_s();
    assert!(
        (28.0..=36.0).contains(&bw),
        "cross-socket write {bw} should bind near the 35 GB/s xGMI write cap"
    );
}
