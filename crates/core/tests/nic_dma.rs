//! NIC DMA flows (§4 #3's fused intra-/inter-host stack): a terabit-class
//! device streaming into and out of memory through the chiplet network.

use chiplet_net::engine::{Engine, EngineConfig};
use chiplet_net::flow::{FlowSpec, Target};
use chiplet_sim::{Bandwidth, ByteSize, SimTime};
use chiplet_topology::{CcdId, DimmId, NicSpec, PlatformSpec, Topology};

fn topo_with_nic() -> Topology {
    Topology::build(&PlatformSpec::epyc_9634().with_nic(NicSpec::gbe400()))
}

#[test]
fn nic_is_absent_unless_attached() {
    let plain = Topology::build(&PlatformSpec::epyc_9634());
    assert_eq!(plain.nic_count(), 0);
    assert_eq!(topo_with_nic().nic_count(), 1);
}

#[test]
fn rx_dma_reaches_line_rate() {
    // 400 GbE RX: the NIC pushes 50 GB/s into memory — more than any
    // single compute chiplet can write (23.6 GB/s GMI), the paper's §4 #3
    // observation.
    let topo = topo_with_nic();
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    engine.add_flow(FlowSpec::nic_dma_write("rx", 0, Target::all_dimms(&topo)).build(&topo));
    let r = engine.run(SimTime::from_micros(40));
    let bw = r.flows[0].achieved.as_gb_per_s();
    assert!(
        (46.0..=51.0).contains(&bw),
        "RX DMA {bw} should reach the 50 GB/s line rate"
    );
    let gmi_write = topo.spec().caps.gmi_write.as_gb_per_s();
    assert!(bw > gmi_write, "the NIC outruns a compute chiplet's writes");
}

#[test]
fn tx_dma_reads_at_line_rate() {
    let topo = topo_with_nic();
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    engine.add_flow(FlowSpec::nic_dma_read("tx", 0, Target::all_dimms(&topo)).build(&topo));
    let r = engine.run(SimTime::from_micros(40));
    let bw = r.flows[0].achieved.as_gb_per_s();
    assert!((46.0..=51.0).contains(&bw), "TX DMA {bw}");
}

#[test]
fn dma_contends_with_core_traffic_at_shared_umcs() {
    // RX DMA into two DIMMs while a chiplet writes the same DIMMs: both
    // squeeze at the shared UMC write capacity (2 × 28.3 GB/s).
    let topo = topo_with_nic();
    let shared: Vec<DimmId> = vec![DimmId(0), DimmId(1)];
    let run = |with_dma: bool| {
        let mut engine = Engine::new(&topo, EngineConfig::deterministic());
        engine.add_flow(
            FlowSpec::writes(
                "cores",
                topo.cores_of_ccd(CcdId(0)).collect(),
                Target::Dimms(shared.clone()),
            )
            .build(&topo),
        );
        if with_dma {
            engine.add_flow(
                FlowSpec::nic_dma_write("rx", 0, Target::Dimms(shared.clone())).build(&topo),
            );
        }
        engine.run(SimTime::from_micros(40)).flows[0]
            .achieved
            .as_gb_per_s()
    };
    let alone = run(false);
    let contended = run(true);
    assert!(
        contended < alone * 0.85,
        "DMA should squeeze core writes at the shared UMCs: {alone} -> {contended}"
    );
}

#[test]
fn dma_unaffected_by_chiplet_limiters() {
    // A saturating core read stream on CCD0 does not throttle the NIC
    // (the DMA engine sits past the chiplet limiters and targets
    // different UMCs).
    let topo = topo_with_nic();
    let nic_dimms: Vec<DimmId> = vec![DimmId(6), DimmId(7)];
    let run = |with_cores: bool| {
        let mut engine = Engine::new(&topo, EngineConfig::deterministic());
        engine.add_flow(
            FlowSpec::nic_dma_write("rx", 0, Target::Dimms(nic_dimms.clone())).build(&topo),
        );
        if with_cores {
            engine.add_flow(
                FlowSpec::reads(
                    "cores",
                    topo.cores_of_ccd(CcdId(0)).collect(),
                    Target::Dimms(vec![DimmId(0), DimmId(1)]),
                )
                .build(&topo),
            );
        }
        engine.run(SimTime::from_micros(40)).flows[0]
            .achieved
            .as_gb_per_s()
    };
    let alone = run(false);
    let with_cores = run(true);
    assert!(
        with_cores > alone * 0.92,
        "disjoint UMCs should isolate the DMA: {alone} -> {with_cores}"
    );
}

#[test]
fn dma_rate_limiting_works() {
    // The traffic manager can pace the NIC like any flow.
    let topo = topo_with_nic();
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    engine.add_flow(
        FlowSpec::nic_dma_write("rx", 0, Target::all_dimms(&topo))
            .offered(Bandwidth::from_gb_per_s(10.0))
            .build(&topo),
    );
    let bw = engine.run(SimTime::from_micros(40)).flows[0]
        .achieved
        .as_gb_per_s();
    assert!((9.0..=10.5).contains(&bw), "paced DMA {bw}");
}

#[test]
fn dma_appears_in_the_traffic_matrix_as_a_device_row() {
    let topo = topo_with_nic();
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    engine.add_flow(FlowSpec::nic_dma_write("rx", 0, Target::all_dimms(&topo)).build(&topo));
    let r = engine.run(SimTime::from_micros(20));
    let device_row = topo.ccd_total();
    assert!(
        r.telemetry.matrix.iter().all(|c| c.ccd == device_row),
        "DMA traffic should use the device matrix row"
    );
    assert!(r.telemetry.matrix.len() == topo.dimm_count() as usize);
}

#[test]
fn small_dma_working_set_still_hits_fabric() {
    // Device DMA bypasses the cache model entirely: even a tiny buffer
    // produces fabric traffic (no analytic shortcut).
    let topo = topo_with_nic();
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    engine.add_flow(
        FlowSpec::nic_dma_write("rx", 0, Target::all_dimms(&topo))
            .working_set(ByteSize::from_kib(4))
            .build(&topo),
    );
    let r = engine.run(SimTime::from_micros(20));
    assert!(!r.flows[0].analytic);
    assert!(r.flows[0].completed > 0);
}

#[test]
#[should_panic(expected = "NIC 0 not present")]
fn nic_flow_requires_nic_platform() {
    let topo = Topology::build(&PlatformSpec::epyc_9634());
    let _ = FlowSpec::nic_dma_write("rx", 0, Target::all_dimms(&topo)).build(&topo);
}
