//! The BDP-adaptive traffic controller (Implication #3): holding flows at
//! their bandwidth-delay product instead of deep in the queues.

use chiplet_net::engine::{Engine, EngineConfig};
use chiplet_net::flow::{FlowSpec, Target};
use chiplet_net::traffic::TrafficPolicy;
use chiplet_sim::{ByteSize, SimTime};
use chiplet_topology::{CcdId, PlatformSpec, Topology};

fn run(policy: TrafficPolicy) -> (f64, f64, f64) {
    let topo = Topology::build(&PlatformSpec::epyc_7302());
    let mut cfg = EngineConfig::deterministic();
    cfg.policy = policy;
    let mut engine = Engine::new(&topo, cfg);
    engine.add_flow(
        FlowSpec::reads(
            "f",
            topo.cores_of_ccd(CcdId(0)).collect(),
            Target::all_dimms(&topo),
        )
        .working_set(ByteSize::from_gib(1))
        .build(&topo),
    );
    let r = engine.run(SimTime::from_micros(120));
    let f = &r.flows[0];
    (
        f.achieved.as_gb_per_s(),
        f.mean_latency_ns(),
        f.p999_latency_ns(),
    )
}

#[test]
fn adaptive_trades_little_bandwidth_for_much_latency() {
    let (bw_hw, lat_hw, p999_hw) = run(TrafficPolicy::HardwareDefault);
    let (bw_ad, lat_ad, p999_ad) = run(TrafficPolicy::BdpAdaptive {
        latency_factor: 1.10,
        interval_ns: 2_000,
    });
    // Hardware default: full MLP pressure queues deep (~252 ns sojourn).
    assert!(lat_hw > 220.0, "hardware latency {lat_hw}");
    // The controller holds latency near 1.1× the ~136 ns unloaded mean...
    assert!(
        lat_ad < lat_hw * 0.75,
        "adaptive latency {lat_ad} vs hardware {lat_hw}"
    );
    assert!(lat_ad < 190.0, "adaptive latency {lat_ad}");
    // ...while keeping most of the bandwidth.
    assert!(
        bw_ad > bw_hw * 0.80,
        "adaptive bandwidth {bw_ad} vs hardware {bw_hw}"
    );
    // Tails shrink too.
    assert!(p999_ad <= p999_hw, "tails: {p999_ad} vs {p999_hw}");
}

#[test]
fn tighter_latency_targets_give_lower_latency() {
    let (_, lat_loose, _) = run(TrafficPolicy::BdpAdaptive {
        latency_factor: 1.5,
        interval_ns: 2_000,
    });
    let (_, lat_tight, _) = run(TrafficPolicy::BdpAdaptive {
        latency_factor: 1.05,
        interval_ns: 2_000,
    });
    assert!(
        lat_tight < lat_loose,
        "tight {lat_tight} should undercut loose {lat_loose}"
    );
}

#[test]
fn adaptive_respects_an_offered_demand_ceiling() {
    let topo = Topology::build(&PlatformSpec::epyc_7302());
    let mut cfg = EngineConfig::deterministic();
    cfg.policy = TrafficPolicy::BdpAdaptive {
        latency_factor: 2.0, // permissive: the demand, not latency, binds
        interval_ns: 2_000,
    };
    let mut engine = Engine::new(&topo, cfg);
    engine.add_flow(
        FlowSpec::reads(
            "f",
            topo.cores_of_ccd(CcdId(0)).collect(),
            Target::all_dimms(&topo),
        )
        .offered(chiplet_sim::Bandwidth::from_gb_per_s(10.0))
        .build(&topo),
    );
    let r = engine.run(SimTime::from_micros(120));
    let bw = r.flows[0].achieved.as_gb_per_s();
    assert!((8.5..=10.5).contains(&bw), "demand-capped adaptive {bw}");
}

#[test]
fn two_adaptive_flows_share_and_stay_low_latency() {
    let topo = Topology::build(&PlatformSpec::epyc_7302());
    let mut cfg = EngineConfig::deterministic();
    cfg.policy = TrafficPolicy::BdpAdaptive {
        latency_factor: 1.15,
        interval_ns: 2_000,
    };
    let mut engine = Engine::new(&topo, cfg);
    let cores: Vec<_> = topo.cores_of_ccd(CcdId(0)).collect();
    let (a, b) = cores.split_at(2);
    engine.add_flow(FlowSpec::reads("a", a.to_vec(), Target::all_dimms(&topo)).build(&topo));
    engine.add_flow(FlowSpec::reads("b", b.to_vec(), Target::all_dimms(&topo)).build(&topo));
    let r = engine.run(SimTime::from_micros(150));
    let (fa, fb) = (&r.flows[0], &r.flows[1]);
    let total = fa.achieved.as_gb_per_s() + fb.achieved.as_gb_per_s();
    assert!(total > 24.0, "total {total} under-uses the 32.5 GMI");
    for f in [fa, fb] {
        assert!(
            f.mean_latency_ns() < 200.0,
            "{}: latency {} too high under adaptive control",
            f.name,
            f.mean_latency_ns()
        );
    }
}
