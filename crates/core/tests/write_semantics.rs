//! Temporal (write-allocate) vs non-temporal store semantics: the reason
//! the paper's utility measures writes with non-temporal stores (§3.1).

use chiplet_mem::OpKind;
use chiplet_net::engine::{Engine, EngineConfig};
use chiplet_net::flow::{FlowSpec, Target};
use chiplet_sim::{ByteSize, SimTime};
use chiplet_topology::{CcdId, PlatformSpec, Topology};

fn write_bw(op: OpKind, ws: ByteSize) -> (f64, bool) {
    let topo = Topology::build(&PlatformSpec::epyc_7302());
    let mut engine = Engine::new(&topo, EngineConfig::deterministic());
    engine.add_flow(
        FlowSpec::writes(
            "w",
            topo.cores_of_ccd(CcdId(0)).collect(),
            Target::all_dimms(&topo),
        )
        .op(op)
        .working_set(ws)
        .build(&topo),
    );
    let r = engine.run(SimTime::from_micros(60));
    (r.flows[0].achieved.as_gb_per_s(), r.flows[0].analytic)
}

#[test]
fn cached_temporal_writes_stay_in_cache() {
    // A cache-resident working set never touches the fabric.
    let (bw, analytic) = write_bw(OpKind::WriteTemporal, ByteSize::from_mib(4));
    assert!(analytic);
    assert!(bw > 0.0);
}

#[test]
fn streaming_temporal_writes_pay_the_rfo_tax() {
    // Memory-sized working set: every store reads the line first (RFO) and
    // writes it back — the payload rate lands well below the NT-store rate.
    let ws = ByteSize::from_gib(1);
    let (nt, _) = write_bw(OpKind::WriteNonTemporal, ws);
    let (temporal, analytic) = write_bw(OpKind::WriteTemporal, ws);
    assert!(!analytic);
    assert!(
        temporal < nt * 0.85,
        "temporal {temporal} should trail NT {nt} (RFO overhead)"
    );
    assert!(
        temporal > 3.0,
        "temporal writes still make progress: {temporal}"
    );
}

#[test]
fn rfo_loads_both_link_directions() {
    // The same store stream drives read-direction traffic (RFOs) that a
    // pure NT stream never produces.
    let topo = Topology::build(&PlatformSpec::epyc_7302());
    let run = |op: OpKind| {
        let mut engine = Engine::new(&topo, EngineConfig::deterministic());
        engine.add_flow(
            FlowSpec::writes(
                "w",
                topo.cores_of_ccd(CcdId(0)).collect(),
                Target::all_dimms(&topo),
            )
            .op(op)
            .working_set(ByteSize::from_gib(1))
            .build(&topo),
        );
        let r = engine.run(SimTime::from_micros(40));
        let gmi = r
            .telemetry
            .links
            .iter()
            .find(|l| {
                matches!(
                    l.point,
                    chiplet_net::telemetry::CapacityPoint::Link {
                        kind: chiplet_topology::LinkKind::Gmi,
                        ..
                    }
                ) && l.read.bytes + l.write.bytes > 0
            })
            .expect("the used GMI link");
        (gmi.read.bytes, gmi.write.bytes)
    };
    let (nt_read, nt_write) = run(OpKind::WriteNonTemporal);
    let (t_read, t_write) = run(OpKind::WriteTemporal);
    assert_eq!(nt_read, 0, "NT stores never read");
    assert!(nt_write > 0);
    assert!(t_read > 0, "temporal stores must RFO");
    assert!(t_write > 0);
    // Roughly one RFO per writeback.
    let ratio = t_read as f64 / t_write as f64;
    assert!((0.7..=1.4).contains(&ratio), "RFO:WB ratio {ratio}");
}
