//! Property-based tests over randomized engine configurations: physical
//! invariants that must hold for *any* flow mix.

use chiplet_mem::OpKind;
use chiplet_net::engine::{Engine, EngineConfig, RunResult};
use chiplet_net::flow::{FlowSpec, Target};
use chiplet_sim::{Bandwidth, ByteSize, SimTime};
use chiplet_topology::{CcdId, DimmId, PlatformSpec, Topology};
use proptest::prelude::*;

/// A randomized flow description over one CCD (so flows never fight for
/// cores) with an optional offered rate.
#[derive(Debug, Clone)]
struct RandFlow {
    ccd: u32,
    cores_used: u32,
    write: bool,
    offered_gb: Option<f64>,
    dimm_lo: u32,
    dimm_hi: u32,
}

fn arb_flow(max_ccd: u32, cores_per_ccd: u32, dimms: u32) -> impl Strategy<Value = RandFlow> {
    (
        0..max_ccd,
        1..=cores_per_ccd,
        prop::bool::ANY,
        prop::option::of(1.0f64..30.0),
        0..dimms,
        0..dimms,
    )
        .prop_map(move |(ccd, cores_used, write, offered_gb, a, b)| RandFlow {
            ccd,
            cores_used,
            write,
            offered_gb,
            dimm_lo: a.min(b),
            dimm_hi: a.max(b),
        })
}

fn run_flows(flows: &[RandFlow], seed: u64) -> (RunResult, Topology) {
    let topo = Topology::build(&PlatformSpec::epyc_7302());
    let mut cfg = EngineConfig::deterministic();
    cfg.seed = seed;
    let mut engine = Engine::new(&topo, cfg);
    let mut used_ccd = std::collections::HashSet::new();
    for (i, f) in flows.iter().enumerate() {
        if !used_ccd.insert(f.ccd) {
            continue; // one flow per CCD keeps cores exclusive
        }
        let cores: Vec<_> = topo
            .cores_of_ccd(CcdId(f.ccd))
            .take(f.cores_used as usize)
            .collect();
        let dimms: Vec<DimmId> = (f.dimm_lo..=f.dimm_hi).map(DimmId).collect();
        let mut b = FlowSpec::reads(&format!("f{i}"), cores, Target::Dimms(dimms))
            .op(if f.write {
                OpKind::WriteNonTemporal
            } else {
                OpKind::Read
            })
            .working_set(ByteSize::from_gib(1));
        if let Some(gb) = f.offered_gb {
            b = b.offered(Bandwidth::from_gb_per_s(gb));
        }
        engine.add_flow(b.build(&topo));
    }
    (engine.run(SimTime::from_micros(15)), topo)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No flow exceeds its offered demand (beyond sampling noise), and no
    /// flow exceeds the GMI capacity of its single chiplet.
    #[test]
    fn achieved_respects_demand_and_physics(
        flows in proptest::collection::vec(arb_flow(4, 4, 8), 1..4),
        seed in 0u64..1000,
    ) {
        let (r, topo) = run_flows(&flows, seed);
        let spec = topo.spec();
        for f in &r.flows {
            let gb = f.achieved.as_gb_per_s();
            // Physical ceiling: one chiplet's GMI direction capacity.
            let cap = spec.caps.gmi_read.as_gb_per_s().max(spec.caps.gmi_write.as_gb_per_s());
            prop_assert!(gb <= cap * 1.03, "{}: {gb} above GMI {cap}", f.name);
        }
        // Demands: match flows to results by construction order is fragile
        // with skipped duplicates, so check the global property instead:
        // total achieved ≤ Σ caps.
        let total: f64 = r.flows.iter().map(|f| f.achieved.as_gb_per_s()).sum();
        prop_assert!(total <= spec.caps.noc_read.as_gb_per_s()
            + spec.caps.noc_write.as_gb_per_s() + 1.0);
    }

    /// Latency never drops below the unloaded near-DIMM path, and every
    /// completion is accounted (completed ≤ issued).
    #[test]
    fn latency_floor_and_conservation(
        flows in proptest::collection::vec(arb_flow(4, 4, 8), 1..4),
        seed in 0u64..1000,
    ) {
        let (r, topo) = run_flows(&flows, seed);
        let floor = topo.spec().dram_latency_ns(chiplet_topology::DimmPosition::Near);
        for f in &r.flows {
            prop_assert!(f.completed <= f.issued, "{}: {} > {}", f.name, f.completed, f.issued);
            if let Some(min) = f.latency.min() {
                prop_assert!(
                    min.as_nanos() as f64 >= floor - 1.0,
                    "{}: min latency {} below unloaded floor {floor}",
                    f.name,
                    min.as_nanos()
                );
            }
        }
    }

    /// Bit-identical determinism for arbitrary flow mixes.
    #[test]
    fn random_config_is_deterministic(
        flows in proptest::collection::vec(arb_flow(4, 4, 8), 1..4),
        seed in 0u64..1000,
    ) {
        let (a, _) = run_flows(&flows, seed);
        let (b, _) = run_flows(&flows, seed);
        prop_assert_eq!(a.telemetry.to_json(), b.telemetry.to_json());
    }

    /// Telemetry link bytes are consistent with flow payloads: the GMI
    /// links carry at least the payload bytes completed (plus in-flight
    /// remainder, hence ≥ with tolerance).
    #[test]
    fn telemetry_accounts_flow_bytes(
        flows in proptest::collection::vec(arb_flow(4, 4, 8), 1..3),
        seed in 0u64..1000,
    ) {
        let (r, _) = run_flows(&flows, seed);
        let payload: u64 = r.flows.iter().map(|f| f.bytes).sum();
        let gmi_bytes: u64 = r
            .telemetry
            .links
            .iter()
            .filter(|l| matches!(
                l.point,
                chiplet_net::telemetry::CapacityPoint::Link {
                    kind: chiplet_topology::LinkKind::Gmi,
                    ..
                }
            ))
            .map(|l| l.read.bytes + l.write.bytes)
            .sum();
        // Link counters include warmup-excluded and in-flight lines, so
        // they can only exceed the recorded payload.
        prop_assert!(
            gmi_bytes + 64_000 >= payload,
            "GMI carried {gmi_bytes} for {payload} payload"
        );
    }
}
