//! Resolved routes.
//!
//! A [`RoutePath`] is the deterministic hop sequence a transaction follows
//! from source to destination (the paper's L3 transaction layer routes data
//! "deterministically from the source to the destination"). It caches the
//! unloaded latency sum and the switch-hop count, which the engines and the
//! Table 2 bench consume.

use serde::{Deserialize, Serialize};

use crate::graph::Topology;
use crate::ids::{LinkId, NodeId};

/// One step of a route: the node arrived at, and the link used to get there
/// (`None` for the first hop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hop {
    /// Node arrived at.
    pub node: NodeId,
    /// Link traversed to arrive, `None` at the route's origin.
    pub via: Option<LinkId>,
}

/// A resolved route with cached aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutePath {
    /// Hop sequence, origin first.
    pub hops: Vec<Hop>,
    /// Sum of node service latencies and link propagation latencies, ns.
    pub latency_ns: f64,
    /// Number of NoC switches traversed.
    pub switch_hops: u32,
}

impl RoutePath {
    /// A route from a node to itself.
    pub(crate) fn trivial(node: NodeId, node_latency_ns: f64) -> Self {
        RoutePath {
            hops: vec![Hop { node, via: None }],
            latency_ns: node_latency_ns,
            switch_hops: 0,
        }
    }

    /// Builds a route from a hop sequence, computing aggregates from the
    /// topology's node and link latencies.
    pub(crate) fn from_hops(hops: Vec<Hop>, topo: &Topology) -> Self {
        let mut latency_ns = 0.0;
        let mut switch_hops = 0;
        for hop in &hops {
            let node = topo.node(hop.node);
            latency_ns += node.latency_ns;
            if node.kind.is_switch() {
                switch_hops += 1;
            }
            if let Some(link) = hop.via {
                latency_ns += topo.link(link).latency_ns;
            }
        }
        RoutePath {
            hops,
            latency_ns,
            switch_hops,
        }
    }

    /// The route's origin node.
    pub fn source(&self) -> NodeId {
        self.hops.first().expect("route is never empty").node
    }

    /// The route's destination node.
    pub fn destination(&self) -> NodeId {
        self.hops.last().expect("route is never empty").node
    }

    /// Node ids along the route, origin first.
    pub fn node_sequence(&self) -> Vec<NodeId> {
        self.hops.iter().map(|h| h.node).collect()
    }

    /// Link ids along the route, in traversal order.
    pub fn link_sequence(&self) -> Vec<LinkId> {
        self.hops.iter().filter_map(|h| h.via).collect()
    }

    /// Number of links traversed.
    pub fn link_count(&self) -> usize {
        self.hops.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{CoreId, DimmId};
    use crate::spec::PlatformSpec;

    #[test]
    fn endpoints_and_sequences() {
        let t = Topology::build(&PlatformSpec::epyc_7302());
        let p = t.route_core_to_dimm(CoreId(0), DimmId(0));
        assert_eq!(p.source(), t.core_node(CoreId(0)));
        assert_eq!(p.destination(), t.dimm_node(DimmId(0)));
        assert_eq!(p.link_sequence().len(), p.link_count());
        assert_eq!(p.node_sequence().len(), p.link_count() + 1);
    }

    #[test]
    fn links_connect_consecutive_nodes() {
        let t = Topology::build(&PlatformSpec::epyc_9634());
        let p = t.route_core_to_dimm(CoreId(10), DimmId(5));
        for w in p.hops.windows(2) {
            let link = t.link(w[1].via.expect("non-first hop has link"));
            let (a, b) = (w[0].node, w[1].node);
            assert!(
                (link.a == a && link.b == b) || (link.a == b && link.b == a),
                "link does not join consecutive hops"
            );
        }
    }

    #[test]
    fn latency_is_positive_for_memory_routes() {
        let t = Topology::build(&PlatformSpec::epyc_7302());
        let p = t.route_core_to_dimm(CoreId(0), DimmId(0));
        assert!(p.latency_ns >= 100.0);
    }
}
