//! DIMM positions and NUMA configuration.
//!
//! The I/O die is organized in quadrants (Figure 1 of the paper). A DIMM's
//! position *relative to the requesting compute chiplet* determines how many
//! NoC switch hops the request traverses (Table 2 distinguishes near /
//! vertical / horizontal / diagonal). The NPS (node-per-socket) BIOS setting
//! controls which UMCs a memory region interleaves across, which is how the
//! paper steers requests to DIMMs at chosen positions.

use core::fmt;

use serde::{Deserialize, Serialize};

/// A quadrant of the I/O die, addressed by (column, row) with columns 0..cols
/// and rows 0..rows of the platform's quadrant grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Quadrant {
    /// Horizontal coordinate (grows across the die's long axis).
    pub col: u8,
    /// Vertical coordinate.
    pub row: u8,
}

impl Quadrant {
    /// Creates a quadrant coordinate.
    pub const fn new(col: u8, row: u8) -> Self {
        Quadrant { col, row }
    }

    /// Position of `target` relative to `self`.
    pub fn position_of(self, target: Quadrant) -> DimmPosition {
        let dx = self.col != target.col;
        let dy = self.row != target.row;
        match (dx, dy) {
            (false, false) => DimmPosition::Near,
            (false, true) => DimmPosition::Vertical,
            (true, false) => DimmPosition::Horizontal,
            (true, true) => DimmPosition::Diagonal,
        }
    }
}

impl fmt::Display for Quadrant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q({},{})", self.col, self.row)
    }
}

/// The position of a DIMM relative to a requesting compute chiplet,
/// as classified in Table 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DimmPosition {
    /// Same quadrant as the requester's GMI attach point.
    Near,
    /// Same column, different row: one extra vertical NoC hop.
    Vertical,
    /// Different column, same row: the die's long axis, two extra hops.
    Horizontal,
    /// Different column and row.
    Diagonal,
    /// On the other socket: the request additionally crosses the
    /// inter-socket xGMI fabric (dual-socket platforms only).
    Remote,
}

impl DimmPosition {
    /// The four intra-socket positions, in the order Table 2 lists them.
    pub const ALL: [DimmPosition; 4] = [
        DimmPosition::Near,
        DimmPosition::Vertical,
        DimmPosition::Horizontal,
        DimmPosition::Diagonal,
    ];

    /// All positions including the dual-socket remote case.
    pub const ALL_WITH_REMOTE: [DimmPosition; 5] = [
        DimmPosition::Near,
        DimmPosition::Vertical,
        DimmPosition::Horizontal,
        DimmPosition::Diagonal,
        DimmPosition::Remote,
    ];

    /// Extra NoC switch hops relative to [`DimmPosition::Near`].
    ///
    /// The horizontal crossing spans the die's long axis and costs two hops.
    /// On platforms whose I/O die provisions a diagonal express path (the
    /// paper observes diagonal ≈ horizontal latency on the EPYC 9634), the
    /// diagonal also costs two; otherwise it is the full XY route of three.
    pub fn extra_hops(self, diagonal_express: bool) -> u32 {
        match self {
            DimmPosition::Near => 0,
            DimmPosition::Vertical => 1,
            DimmPosition::Horizontal => 2,
            DimmPosition::Diagonal => {
                if diagonal_express {
                    2
                } else {
                    3
                }
            }
            // Remote latency is not a hop-count affair; the spec's
            // remote_dram_latency_ns computes it with the xGMI crossing.
            DimmPosition::Remote => panic!("Remote position has no intra-socket hop count"),
        }
    }
}

impl fmt::Display for DimmPosition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DimmPosition::Near => "near",
            DimmPosition::Vertical => "vertical",
            DimmPosition::Horizontal => "horizontal",
            DimmPosition::Diagonal => "diagonal",
            DimmPosition::Remote => "remote",
        };
        f.write_str(s)
    }
}

/// Node-per-socket (NPS) configuration: how many NUMA nodes the socket is
/// split into, controlling memory interleave scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NpsMode {
    /// One NUMA node: interleave across every UMC on the socket.
    Nps1,
    /// Two NUMA nodes: interleave across the UMCs of a die half.
    Nps2,
    /// Four NUMA nodes: interleave within the local quadrant only.
    Nps4,
}

impl NpsMode {
    /// True when `target` is within the interleave scope of a requester in
    /// `home`, given a quadrant grid of `cols` columns.
    ///
    /// NPS2 splits the socket along the long axis into left and right halves;
    /// NPS4 restricts to the home quadrant itself.
    pub fn in_scope(self, home: Quadrant, target: Quadrant, cols: u8) -> bool {
        match self {
            NpsMode::Nps1 => true,
            NpsMode::Nps2 => {
                let half = cols.div_ceil(2);
                (home.col < half) == (target.col < half)
            }
            NpsMode::Nps4 => home == target,
        }
    }
}

impl fmt::Display for NpsMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NpsMode::Nps1 => "NPS1",
            NpsMode::Nps2 => "NPS2",
            NpsMode::Nps4 => "NPS4",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_positions() {
        let home = Quadrant::new(0, 0);
        assert_eq!(home.position_of(Quadrant::new(0, 0)), DimmPosition::Near);
        assert_eq!(
            home.position_of(Quadrant::new(0, 1)),
            DimmPosition::Vertical
        );
        assert_eq!(
            home.position_of(Quadrant::new(1, 0)),
            DimmPosition::Horizontal
        );
        assert_eq!(
            home.position_of(Quadrant::new(1, 1)),
            DimmPosition::Diagonal
        );
    }

    #[test]
    fn position_is_symmetric() {
        let a = Quadrant::new(0, 1);
        let b = Quadrant::new(1, 0);
        assert_eq!(a.position_of(b), b.position_of(a));
    }

    #[test]
    fn extra_hops_ordering() {
        // Without express: strictly increasing near < vert < horiz < diag.
        let hops: Vec<u32> = DimmPosition::ALL
            .iter()
            .map(|p| p.extra_hops(false))
            .collect();
        assert_eq!(hops, vec![0, 1, 2, 3]);
        // With express routing the diagonal matches the horizontal.
        assert_eq!(
            DimmPosition::Diagonal.extra_hops(true),
            DimmPosition::Horizontal.extra_hops(true)
        );
    }

    #[test]
    fn nps_scopes() {
        let home = Quadrant::new(0, 0);
        let same = Quadrant::new(0, 0);
        let vert = Quadrant::new(0, 1);
        let horiz = Quadrant::new(1, 0);
        let diag = Quadrant::new(1, 1);
        for q in [same, vert, horiz, diag] {
            assert!(NpsMode::Nps1.in_scope(home, q, 2));
        }
        assert!(NpsMode::Nps2.in_scope(home, vert, 2));
        assert!(!NpsMode::Nps2.in_scope(home, horiz, 2));
        assert!(!NpsMode::Nps2.in_scope(home, diag, 2));
        assert!(NpsMode::Nps4.in_scope(home, same, 2));
        assert!(!NpsMode::Nps4.in_scope(home, vert, 2));
    }

    #[test]
    fn display_strings() {
        assert_eq!(DimmPosition::Near.to_string(), "near");
        assert_eq!(NpsMode::Nps4.to_string(), "NPS4");
        assert_eq!(Quadrant::new(1, 0).to_string(), "q(1,0)");
    }
}
