//! Typed identifiers.
//!
//! Indices into the topology's node and link tables, plus semantic IDs for
//! the architectural units workloads address (cores, CCDs, UMCs, DIMMs).
//! Newtypes keep a `CoreId` from ever being used where a `UmcId` is meant.

use core::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// A node in the topology graph.
    NodeId,
    "node"
);
id_type!(
    /// A directed link in the topology graph.
    LinkId,
    "link"
);
id_type!(
    /// A CPU core, numbered across the whole socket.
    CoreId,
    "core"
);
id_type!(
    /// A compute chiplet (Core Complex Die), numbered across the socket.
    CcdId,
    "ccd"
);
id_type!(
    /// A unified memory controller on the I/O die.
    UmcId,
    "umc"
);
id_type!(
    /// An off-chip DIMM, one per UMC channel in this model.
    DimmId,
    "dimm"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(CoreId(3).to_string(), "core3");
        assert_eq!(UmcId(11).to_string(), "umc11");
        assert_eq!(NodeId(0).to_string(), "node0");
    }

    #[test]
    fn index_round_trip() {
        let id = CcdId::from(7u32);
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(CoreId(1) < CoreId(2));
        assert_eq!(DimmId(4), DimmId(4));
    }
}
