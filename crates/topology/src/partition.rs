//! Domain partition of the SoC graph for conservative-lookahead parallel
//! simulation.
//!
//! The graph is cut at the physical chiplet boundaries the paper's
//! measurements expose: each compute chiplet (CCD) is one domain, the I/O
//! die's switching fabric is one, and the memory side (coherent stations,
//! UMCs, DIMMs and CXL devices) is one. Every link whose endpoints fall in
//! different domains is a *cut* link; the minimum per-hop latency across a
//! cut is the conservative lookahead window for that boundary — an event
//! crossing the cut can never take effect on the far side sooner than that
//! many nanoseconds after it was sent, so domains may safely simulate that
//! far ahead of each other between synchronizations.

use crate::graph::{LinkSpec, NodeKind, Topology};
use crate::ids::{LinkId, NodeId};

/// The discrete-event time quantum, ns. Event timestamps are integer
/// nanoseconds and every capacity point's service time is strictly
/// positive, so a transaction takes at least one quantum to cross *any*
/// link — even one whose calibrated per-hop latency is lumped into a
/// neighboring segment (and therefore reads as zero here). Cut lookaheads
/// are floored at this value.
pub const EVENT_QUANTUM_NS: f64 = 1.0;

/// One scheduling domain of the partitioned SoC graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Domain {
    /// One compute chiplet: its cores, L3 slices, traffic controller and
    /// GMI port (plus the GMI link itself, charged to the chiplet side).
    Ccd(u32),
    /// The I/O die(s): CCMs, the NoC switch grid, I/O hubs, root
    /// complexes and NICs. Dual-socket platforms share one I/O domain —
    /// the xGMI fabric is interior to it.
    Iod,
    /// The memory side: coherent stations, UMCs, DIMMs and CXL devices.
    Memory,
}

impl Domain {
    /// Dense index: CCDs first, then I/O, then memory.
    pub fn index(self, ccd_total: u32) -> usize {
        match self {
            Domain::Ccd(c) => c as usize,
            Domain::Iod => ccd_total as usize,
            Domain::Memory => ccd_total as usize + 1,
        }
    }
}

/// A boundary between two domains: the links crossing it and the
/// conservative lookahead the cut supports.
#[derive(Debug, Clone)]
pub struct Cut {
    /// The two domains, ordered (`a < b`).
    pub a: Domain,
    /// See `a`.
    pub b: Domain,
    /// Links with one endpoint in each domain.
    pub links: Vec<LinkId>,
    /// Minimum per-hop latency among the cut's links, ns: no event can
    /// cross this boundary and take effect sooner.
    pub lookahead_ns: f64,
}

/// The result of partitioning a topology: node and link placement, the
/// set of cuts, and the global lookahead bound.
#[derive(Debug, Clone)]
pub struct Partition {
    ccd_total: u32,
    node_domain: Vec<Domain>,
    link_owner: Vec<Domain>,
    cuts: Vec<Cut>,
    lookahead_ns: f64,
}

impl Partition {
    /// Number of domains: one per CCD, plus I/O, plus memory.
    pub fn domain_count(&self) -> usize {
        self.ccd_total as usize + 2
    }

    /// Total compute chiplets (the `Ccd` domain indices are `0..this`).
    pub fn ccd_total(&self) -> u32 {
        self.ccd_total
    }

    /// The domain a node belongs to.
    pub fn node_domain(&self, node: NodeId) -> Domain {
        self.node_domain[node.index()]
    }

    /// The domain that *simulates* a link's capacity point. Interior
    /// links belong to their endpoints' common domain; cut links are
    /// charged to the more specific side (CCD over memory over I/O), which
    /// is the side whose traffic exclusively uses them — a GMI link only
    /// ever carries its own chiplet's transactions.
    pub fn link_owner(&self, link: LinkId) -> Domain {
        self.link_owner[link.index()]
    }

    /// Every domain boundary, sorted by `(a, b)`.
    pub fn cuts(&self) -> &[Cut] {
        &self.cuts
    }

    /// The global conservative lookahead: the smallest cut lookahead, ns.
    pub fn lookahead_ns(&self) -> f64 {
        self.lookahead_ns
    }

    /// Looks up the cut between two domains, if they share a boundary.
    pub fn cut_between(&self, a: Domain, b: Domain) -> Option<&Cut> {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.cuts.iter().find(|c| c.a == a && c.b == b)
    }
}

fn domain_of_kind(kind: &NodeKind) -> Domain {
    match kind {
        NodeKind::Core { ccd, .. }
        | NodeKind::L3Slice { ccd, .. }
        | NodeKind::TrafficCtrl { ccd }
        | NodeKind::GmiPort { ccd } => Domain::Ccd(ccd.0),
        NodeKind::Ccm { .. }
        | NodeKind::NocSwitch { .. }
        | NodeKind::IoHub
        | NodeKind::RootComplex
        | NodeKind::Nic { .. } => Domain::Iod,
        NodeKind::CoherentStation { .. }
        | NodeKind::Umc { .. }
        | NodeKind::Dimm { .. }
        | NodeKind::CxlDevice { .. } => Domain::Memory,
    }
}

/// Cut links are owned by the more specific endpoint: a chiplet's GMI
/// link carries only that chiplet's traffic, and the memory-side ingress
/// links carry only memory traffic, so charging them there keeps every
/// capacity point single-domain.
fn specificity(d: Domain) -> u8 {
    match d {
        Domain::Ccd(_) => 2,
        Domain::Memory => 1,
        Domain::Iod => 0,
    }
}

impl Topology {
    /// Partitions the SoC graph at chiplet / I/O-die / memory boundaries
    /// and derives each cut's conservative lookahead window.
    pub fn partition(&self) -> Partition {
        let ccd_total = self.ccd_total();
        let node_domain: Vec<Domain> = self
            .nodes()
            .iter()
            .map(|n| domain_of_kind(&n.kind))
            .collect();

        let mut link_owner = Vec::with_capacity(self.links().len());
        let mut cuts: Vec<Cut> = Vec::new();
        for l in self.links() {
            let (da, db) = (node_domain[l.a.index()], node_domain[l.b.index()]);
            if da == db {
                link_owner.push(da);
                continue;
            }
            link_owner.push(if specificity(da) >= specificity(db) {
                da
            } else {
                db
            });
            let (a, b) = if da <= db { (da, db) } else { (db, da) };
            match cuts.iter_mut().find(|c| c.a == a && c.b == b) {
                Some(cut) => {
                    cut.links.push(l.id);
                    cut.lookahead_ns = cut.lookahead_ns.min(link_latency(l));
                }
                None => cuts.push(Cut {
                    a,
                    b,
                    links: vec![l.id],
                    lookahead_ns: link_latency(l),
                }),
            }
        }
        cuts.sort_by_key(|x| (x.a, x.b));
        let lookahead_ns = cuts
            .iter()
            .map(|c| c.lookahead_ns)
            .fold(f64::INFINITY, f64::min);

        Partition {
            ccd_total,
            node_domain,
            link_owner,
            cuts,
            lookahead_ns,
        }
    }
}

/// A link's crossing delay: its calibrated per-hop latency, floored at
/// the event quantum (latencies lumped into a neighboring segment read
/// as zero here, but crossing still costs at least one event step).
fn link_latency(l: &LinkSpec) -> f64 {
    l.latency_ns.max(EVENT_QUANTUM_NS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PlatformSpec;

    fn check_invariants(topo: &Topology) {
        let p = topo.partition();
        // Every node placed; CCD domains only contain their own chiplet.
        for n in topo.nodes() {
            let d = p.node_domain(n.id);
            if let NodeKind::Core { ccd, .. } = n.kind {
                assert_eq!(d, Domain::Ccd(ccd.0));
            }
            assert!(d.index(p.ccd_total()) < p.domain_count());
        }
        // Link owners are always one of the two endpoint domains.
        for l in topo.links() {
            let owner = p.link_owner(l.id);
            let (da, db) = (p.node_domain(l.a), p.node_domain(l.b));
            assert!(owner == da || owner == db, "owner must touch the link");
        }
        // Each cut's lookahead is conservative: no cut link is faster.
        for cut in p.cuts() {
            assert!(cut.lookahead_ns > 0.0, "zero lookahead stalls the clock");
            for &lid in &cut.links {
                let l = &topo.links()[lid.index()];
                let (da, db) = (p.node_domain(l.a), p.node_domain(l.b));
                assert_ne!(da, db, "cut link must cross domains");
                assert!(link_latency(l) >= cut.lookahead_ns);
            }
        }
        // The global bound is the min over cuts.
        let min = p
            .cuts()
            .iter()
            .map(|c| c.lookahead_ns)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(p.lookahead_ns(), min);
    }

    #[test]
    fn partitions_every_calibrated_platform() {
        for spec in [
            PlatformSpec::epyc_7302(),
            PlatformSpec::epyc_9634(),
            PlatformSpec::dual_epyc_7302(),
            PlatformSpec::monolithic_baseline(),
        ] {
            let topo = Topology::build(&spec);
            check_invariants(&topo);
        }
    }

    proptest::proptest! {
        /// Randomized platforms: the partition's recorded lookahead is
        /// always conservative — no link crosses a cut faster than the
        /// cut's window, and the global window is the min over cuts.
        #[test]
        fn lookahead_is_conservative_on_random_topologies(
            base in 0usize..4,
            ccd_count in 1u32..=12,
            ccx_per_ccd in 1u32..=2,
            cores_per_ccx in 1u32..=8,
            drop_cxl in proptest::bool::ANY,
        ) {
            let mut spec = match base {
                0 => PlatformSpec::epyc_7302(),
                1 => PlatformSpec::epyc_9634(),
                2 => PlatformSpec::dual_epyc_7302(),
                _ => PlatformSpec::monolithic_baseline(),
            };
            spec.ccd_count = ccd_count;
            spec.ccx_per_ccd = ccx_per_ccd;
            spec.cores_per_ccx = cores_per_ccx;
            if drop_cxl {
                spec.cxl = None;
            }
            let topo = Topology::build(&spec);
            check_invariants(&topo);
            let p = topo.partition();
            // "Actual min cross-cut latency": scan the raw graph
            // independently of the Cut records.
            let actual = topo
                .links()
                .iter()
                .filter(|l| p.node_domain(l.a) != p.node_domain(l.b))
                .map(link_latency)
                .fold(f64::INFINITY, f64::min);
            proptest::prop_assert!(actual >= p.lookahead_ns());
        }
    }

    #[test]
    fn gmi_links_are_ccd_owned_cuts() {
        let topo = Topology::build(&PlatformSpec::epyc_9634());
        let p = topo.partition();
        for l in topo.links() {
            if l.kind == crate::graph::LinkKind::Gmi {
                assert!(matches!(p.link_owner(l.id), Domain::Ccd(_)));
            }
        }
        // Every CCD shares a boundary with the I/O die.
        for c in 0..topo.ccd_total() {
            assert!(p.cut_between(Domain::Ccd(c), Domain::Iod).is_some());
        }
        assert!(p.cut_between(Domain::Iod, Domain::Memory).is_some());
        assert!(p.lookahead_ns() > 0.0);
    }
}
